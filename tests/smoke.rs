//! Workspace smoke test: the README/ROADMAP quick-start invariant.
//!
//! The quick-start contract in `crates/core/src/lib.rs` promises that the
//! hardware-only `OP` baseline and the hybrid `VC` configuration simulate
//! the *same* dynamic instruction stream — differing only in steering — so
//! both must commit exactly the same number of micro-ops on the same trace
//! point. This is the one-liner a new contributor can run to confirm the
//! whole pipeline (workloads → compiler → trace → simulator) is wired up.

use virtclust::core::{run_point, Configuration};
use virtclust::uarch::MachineConfig;
use virtclust::workloads::spec2000_points;

#[test]
fn quickstart_contract_op_and_vc_commit_identical_uop_counts() {
    let points = spec2000_points();
    let point = &points[0]; // gzip-1, as in the quick-start doc
    let machine = MachineConfig::paper_2cluster();
    let budget = 5_000;

    let op = run_point(point, &Configuration::Op, &machine, budget);
    let vc = run_point(point, &Configuration::Vc { num_vcs: 2 }, &machine, budget);

    assert_eq!(
        op.committed_uops, vc.committed_uops,
        "OP and VC must replay the same trace: OP committed {} vs VC {}",
        op.committed_uops, vc.committed_uops
    );
    assert_eq!(op.committed_uops, budget, "the whole budget must commit");
    // And the streams really were simulated, not short-circuited.
    assert!(op.cycles > 0 && vc.cycles > 0);
}
