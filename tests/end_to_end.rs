//! Integration tests spanning every crate: workload generation → compiler
//! passes → trace expansion → cycle-level simulation → metrics. These
//! assert the *qualitative shape* of the paper's results on a mini-suite,
//! which is what the reproduction must preserve at any budget.

use virtclust::core::{run_matrix, run_point, Configuration};
use virtclust::uarch::MachineConfig;
use virtclust::workloads::spec2000_points;

const BUDGET: u64 = 12_000;

fn point(name: &str) -> virtclust::workloads::TracePoint {
    spec2000_points()
        .into_iter()
        .find(|p| p.name == name)
        .expect("suite point")
}

#[test]
fn every_configuration_commits_exactly_the_budget() {
    let machine = MachineConfig::paper_2cluster();
    let p = point("eon-1");
    for config in Configuration::table3() {
        let stats = run_point(&p, &config, &machine, BUDGET);
        assert_eq!(
            stats.committed_uops,
            BUDGET,
            "{} lost or duplicated micro-ops",
            config.name(2)
        );
        assert_eq!(stats.copies_generated, stats.copies_delivered);
    }
}

#[test]
fn one_cluster_is_the_worst_policy_on_wide_ilp_code() {
    let machine = MachineConfig::paper_2cluster();
    let p = point("galgel");
    let op = run_point(&p, &Configuration::Op, &machine, BUDGET);
    let one = run_point(&p, &Configuration::OneCluster, &machine, BUDGET);
    let vc = run_point(&p, &Configuration::Vc { num_vcs: 2 }, &machine, BUDGET);
    assert!(
        one.cycles > op.cycles,
        "wide FP code must suffer on one cluster: {} vs {}",
        one.cycles,
        op.cycles
    );
    assert!(one.cycles > vc.cycles, "VC must beat one-cluster on galgel");
    assert_eq!(one.copies_generated, 0, "one cluster never communicates");
}

#[test]
fn hybrid_vc_stays_close_to_hardware_only_op() {
    // The paper's headline: VC within a few percent of OP. Allow a loose
    // 12% bound at this tiny budget (the full harness shows ~2%).
    let machine = MachineConfig::paper_2cluster();
    for name in ["gzip-1", "crafty", "galgel"] {
        let p = point(name);
        let op = run_point(&p, &Configuration::Op, &machine, BUDGET);
        let vc = run_point(&p, &Configuration::Vc { num_vcs: 2 }, &machine, BUDGET);
        let slowdown = vc.cycles as f64 / op.cycles as f64 - 1.0;
        assert!(
            slowdown < 0.12,
            "{name}: VC slowdown vs OP = {:.1}%",
            100.0 * slowdown
        );
    }
}

#[test]
fn vc_beats_the_software_only_schemes_on_average() {
    let machine = MachineConfig::paper_2cluster();
    let points: Vec<_> = spec2000_points()
        .into_iter()
        .filter(|p| {
            ["gzip-1", "crafty", "eon-1", "galgel", "swim", "vortex-1"].contains(&p.name.as_str())
        })
        .collect();
    let configs = vec![
        Configuration::Ob,
        Configuration::Rhop,
        Configuration::Vc { num_vcs: 2 },
    ];
    let matrix = run_matrix(&machine, &configs, &points, BUDGET, 0);
    let total = |ci: usize| -> u64 { (0..points.len()).map(|pi| matrix.cell(pi, ci).cycles).sum() };
    let (ob, rhop, vc) = (total(0), total(1), total(2));
    assert!(vc < ob, "VC ({vc}) must beat OB ({ob}) in aggregate");
    assert!(vc < rhop, "VC ({vc}) must beat RHOP ({rhop}) in aggregate");
}

#[test]
fn vc_2_to_4_beats_vc_4_to_4() {
    // Sec. 5.4: partitioning into 2 VCs on the 4-cluster machine wins, and
    // VC(4->4) pays more copies.
    let machine = MachineConfig::paper_4cluster();
    let points: Vec<_> = spec2000_points()
        .into_iter()
        .filter(|p| ["gzip-1", "crafty", "galgel", "eon-1"].contains(&p.name.as_str()))
        .collect();
    let configs = vec![
        Configuration::Vc { num_vcs: 4 },
        Configuration::Vc { num_vcs: 2 },
    ];
    let matrix = run_matrix(&machine, &configs, &points, BUDGET, 0);
    let cycles4: u64 = (0..points.len()).map(|pi| matrix.cell(pi, 0).cycles).sum();
    let cycles2: u64 = (0..points.len()).map(|pi| matrix.cell(pi, 1).cycles).sum();
    let copies4: u64 = (0..points.len())
        .map(|pi| matrix.cell(pi, 0).copies_generated)
        .sum();
    let copies2: u64 = (0..points.len())
        .map(|pi| matrix.cell(pi, 1).copies_generated)
        .sum();
    // At this tiny budget the cycle gap is within noise; the copy gap (the
    // paper's ~28% mechanism) must already be visible, and VC(2->4) must
    // not lose materially.
    assert!(
        cycles2 as f64 <= cycles4 as f64 * 1.03,
        "VC(2->4)={cycles2} must not lose materially to VC(4->4)={cycles4}"
    );
    assert!(
        copies4 > copies2,
        "VC(4->4) must generate more copies ({copies4} vs {copies2})"
    );
}

#[test]
fn sequential_op_beats_parallel_op() {
    let machine = MachineConfig::paper_2cluster();
    let points: Vec<_> = spec2000_points()
        .into_iter()
        .filter(|p| ["crafty", "eon-1", "vortex-1"].contains(&p.name.as_str()))
        .collect();
    let configs = vec![Configuration::Op, Configuration::OpParallel];
    let matrix = run_matrix(&machine, &configs, &points, BUDGET, 0);
    let seq: u64 = (0..points.len()).map(|pi| matrix.cell(pi, 0).cycles).sum();
    let par: u64 = (0..points.len()).map(|pi| matrix.cell(pi, 1).cycles).sum();
    let seq_copies: u64 = (0..points.len())
        .map(|pi| matrix.cell(pi, 0).copies_generated)
        .sum();
    let par_copies: u64 = (0..points.len())
        .map(|pi| matrix.cell(pi, 1).copies_generated)
        .sum();
    assert!(par_copies > seq_copies, "stale locations must cost copies");
    assert!(par >= seq, "parallel steering must not beat sequential");
}

#[test]
fn whole_pipeline_is_deterministic() {
    let machine = MachineConfig::paper_2cluster();
    let p = point("mesa");
    let a = run_point(&p, &Configuration::Vc { num_vcs: 2 }, &machine, BUDGET);
    let b = run_point(&p, &Configuration::Vc { num_vcs: 2 }, &machine, BUDGET);
    assert_eq!(a, b);
}

#[test]
fn four_cluster_machine_runs_the_full_table3() {
    let machine = MachineConfig::paper_4cluster();
    let p = point("swim");
    for config in Configuration::table3() {
        let stats = run_point(&p, &config, &machine, 6_000);
        assert_eq!(stats.committed_uops, 6_000, "{}", config.name(4));
        assert_eq!(stats.clusters.len(), 4);
    }
}

#[test]
fn memory_bound_point_behaves_memory_bound() {
    let machine = MachineConfig::paper_2cluster();
    let p = point("mcf");
    let op = run_point(&p, &Configuration::Op, &machine, BUDGET);
    assert!(op.ipc() < 0.5, "mcf must be slow (ipc={})", op.ipc());
    assert!(op.l1_hit_rate() < 0.8, "mcf must miss often");
    // And clustering must matter far less than on wide-ILP code (at this
    // short, cache-cold budget some residual gap remains; the full-length
    // harness shows ~0%).
    let one = run_point(&p, &Configuration::OneCluster, &machine, BUDGET);
    let slowdown = one.cycles as f64 / op.cycles as f64 - 1.0;
    assert!(
        slowdown < 0.35,
        "one-cluster cheap on mcf, got {:.1}%",
        100.0 * slowdown
    );
}
