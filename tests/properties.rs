//! Property-based tests (proptest) over randomly generated regions and
//! traces: structural invariants of the analyses, validity of every
//! partitioner's output, and conservation laws of the simulator under
//! arbitrary (even adversarial) steering.

use proptest::prelude::*;
use virtclust::compiler::{
    identify_chains, GreedyPlacer, PlacerConfig, RhopConfig, RhopPartitioner,
};
use virtclust::core::Configuration;
use virtclust::ddg::{Criticality, Ddg};
use virtclust::sim::{
    simulate, LoadCheck, Lsq, Machine, RunLimits, SimSession, SteerDecision, SteerView,
    SteeringPolicy,
};
use virtclust::trace::{Codec, TraceReader, TraceWriter};
use virtclust::uarch::{
    ArchReg, DynUop, LatencyModel, MachineConfig, OpClass, Program, Region, SliceTrace, StaticInst,
    SteerHint, TraceSource, VecTrace,
};

/// Strategy: a random static instruction over a small register window.
fn inst_strategy() -> impl Strategy<Value = StaticInst> {
    let reg = (0u8..8).prop_map(ArchReg::int);
    let freg = (0u8..8).prop_map(ArchReg::flt);
    prop_oneof![
        // Integer compute
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| StaticInst::new(
            OpClass::IntAlu,
            &[a, b],
            Some(d)
        )),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| StaticInst::new(
            OpClass::IntMul,
            &[a, b],
            Some(d)
        )),
        // FP compute
        (freg.clone(), freg.clone(), freg.clone()).prop_map(|(d, a, b)| StaticInst::new(
            OpClass::FpAdd,
            &[a, b],
            Some(d)
        )),
        // Memory
        (reg.clone(), reg.clone()).prop_map(|(d, a)| StaticInst::new(OpClass::Load, &[a], Some(d))),
        (reg.clone(), reg.clone()).prop_map(|(a, v)| StaticInst::new(
            OpClass::Store,
            &[a, v],
            None
        )),
        // Branch
        reg.clone()
            .prop_map(|c| StaticInst::new(OpClass::Branch, &[c], None)),
    ]
}

/// Strategy: a random steering annotation (the static side the trace
/// format must round-trip along with the dynamic facts).
fn hint_strategy() -> impl Strategy<Value = SteerHint> {
    prop_oneof![
        (0u8..1).prop_map(|_| SteerHint::None),
        (0u8..4).prop_map(|cluster| SteerHint::Static { cluster }),
        (0u8..8).prop_map(|bits| SteerHint::Vc {
            vc: bits >> 1,
            leader: bits & 1 == 1,
        }),
    ]
}

fn region_strategy(max_len: usize) -> impl Strategy<Value = Region> {
    prop::collection::vec(inst_strategy(), 1..max_len).prop_map(|insts| {
        let mut r = Region::new(0, "prop");
        for i in insts {
            r.push(i);
        }
        r
    })
}

/// A policy that steers by an arbitrary (but deterministic) hash of the
/// sequence number — the adversarial case for the copy machinery.
struct HashSteer {
    clusters: u8,
}
impl SteeringPolicy for HashSteer {
    fn name(&self) -> String {
        "hash-steer".into()
    }
    fn steer(&mut self, uop: &DynUop, _view: &SteerView<'_>) -> SteerDecision {
        let h = uop.seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        SteerDecision::Cluster((h % u64::from(self.clusters)) as u8)
    }
}

fn expand(region: &Region, iters: usize) -> Vec<DynUop> {
    let mut uops = Vec::new();
    let mut seq = 0;
    for it in 0..iters {
        seq = virtclust::uarch::trace::expand_region(
            region,
            seq,
            &mut uops,
            |s, _| 0x1000 + (s % 128) * 8,
            |s, _| !(s + it as u64).is_multiple_of(3),
        );
    }
    uops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn criticality_invariants_hold(region in region_strategy(40)) {
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        ddg.check_invariants().unwrap();
        let crit = Criticality::compute(&ddg);
        for i in 0..ddg.n() as u32 {
            // criticality = depth + height, bounded by the critical path.
            prop_assert_eq!(
                crit.criticality[i as usize],
                crit.depth[i as usize] + crit.height[i as usize]
            );
            prop_assert!(crit.criticality[i as usize] <= crit.cp_length);
            // Edges can only increase depth downstream.
            for &s in ddg.succs(i) {
                prop_assert!(
                    crit.depth[s as usize]
                        >= crit.depth[i as usize] + u64::from(ddg.latency(i))
                );
            }
            // height >= own latency.
            prop_assert!(crit.height[i as usize] >= u64::from(ddg.latency(i)));
        }
    }

    #[test]
    fn placers_emit_valid_partitions(region in region_strategy(40), k in 1u32..5) {
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        let crit = Criticality::compute(&ddg);
        let greedy = GreedyPlacer::new(PlacerConfig::new(k)).place(&ddg, &crit);
        prop_assert!(greedy.is_valid());
        prop_assert_eq!(greedy.n(), ddg.n());
        let rhop = RhopPartitioner::new(RhopConfig::new(k)).partition(&ddg, &crit);
        prop_assert!(rhop.is_valid());
        prop_assert_eq!(rhop.n(), ddg.n());
    }

    #[test]
    fn chains_partition_each_vc(region in region_strategy(40), k in 1u32..4) {
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        let crit = Criticality::compute(&ddg);
        let parts = GreedyPlacer::new(PlacerConfig::new(k)).place(&ddg, &crit);
        let chains = identify_chains(&ddg, &parts, None);
        let mut seen = vec![false; ddg.n()];
        for c in &chains {
            prop_assert!(!c.members.is_empty());
            prop_assert_eq!(c.leader(), c.members[0]);
            for &m in &c.members {
                prop_assert!(!seen[m as usize], "node in two chains");
                seen[m as usize] = true;
                prop_assert_eq!(parts.part(m), c.vc);
            }
            // Members ascend in program order.
            prop_assert!(c.members.windows(2).all(|w| w[0] < w[1]));
        }
        prop_assert!(seen.iter().all(|&s| s), "every node belongs to a chain");
    }

    #[test]
    fn simulator_conserves_uops_under_adversarial_steering(
        region in region_strategy(24),
        clusters in 1usize..5,
        iters in 1usize..6,
    ) {
        let uops = expand(&region, iters);
        let total = uops.len() as u64;
        let mut trace = VecTrace::new(uops);
        let cfg = MachineConfig::default().with_clusters(clusters);
        let mut policy = HashSteer { clusters: clusters as u8 };
        let stats = simulate(&cfg, &mut trace, &mut policy, &RunLimits::unlimited());
        prop_assert_eq!(stats.committed_uops, total, "lost micro-ops");
        prop_assert_eq!(stats.copies_generated, stats.copies_delivered);
        prop_assert!(stats.cycles > 0 || total == 0);
        let dispatched: u64 = stats.clusters.iter().map(|c| c.dispatched).sum();
        prop_assert_eq!(dispatched, total);
    }

    #[test]
    fn reused_session_is_bit_identical_to_fresh_machines(
        region in region_strategy(24),
        iters in 1usize..5,
        cluster_seq in prop::collection::vec(1usize..5, 2..5),
    ) {
        // One SimSession serves a random sequence of runs with mixed
        // cluster counts (2-/4-/3-cluster machines interleaved) and a
        // rewound trace; every run must be bit-identical to a fresh
        // `Machine::new` run of the same cell. This is the session-reuse
        // contract the batch engine is built on.
        let uops = expand(&region, iters);
        let mut session = SimSession::new(&MachineConfig::default());
        let mut reused_trace = SliceTrace::new(&uops);
        for &clusters in &cluster_seq {
            let cfg = MachineConfig::default().with_clusters(clusters);
            let fresh = {
                let mut trace = SliceTrace::new(&uops);
                let mut policy = HashSteer { clusters: clusters as u8 };
                simulate(&cfg, &mut trace, &mut policy, &RunLimits::unlimited())
            };
            let reused = {
                reused_trace.rewind().expect("slice traces rewind");
                let mut policy = HashSteer { clusters: clusters as u8 };
                session.simulate(&cfg, &mut reused_trace, &mut policy, &RunLimits::unlimited())
            };
            prop_assert_eq!(fresh, reused, "{} clusters", clusters);
        }
    }

    #[test]
    fn simulation_is_deterministic(region in region_strategy(24), clusters in 1usize..4) {
        let uops = expand(&region, 3);
        let run = || {
            let mut trace = VecTrace::new(uops.clone());
            let cfg = MachineConfig::default().with_clusters(clusters);
            let mut policy = HashSteer { clusters: clusters as u8 };
            simulate(&cfg, &mut trace, &mut policy, &RunLimits::unlimited())
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn trace_codecs_roundtrip_the_dynamic_stream_exactly(
        region in region_strategy(32),
        hints in prop::collection::vec(hint_strategy(), 32..33),
        iters in 1usize..6,
    ) {
        // Random annotations on the static side: hints live in the program
        // section and must round-trip along with the dynamic facts.
        let mut region = region;
        for (inst, hint) in region.insts.iter_mut().zip(hints) {
            inst.hint = hint;
        }
        let mut program = Program::new("prop");
        program.add_region(region);
        let uops = expand(&program.regions[0], iters);
        for codec in [Codec::Text, Codec::Binary] {
            let mut buf = Vec::new();
            let mut w = TraceWriter::new(&mut buf, &program, codec, Some(uops.len() as u64))
                .expect("writer");
            for u in &uops {
                w.write_uop(u).expect("write");
            }
            w.finish().expect("finish");
            let mut reader = TraceReader::new(std::io::Cursor::new(&buf)).expect("reader");
            prop_assert_eq!(reader.program(), &program, "{:?}", codec);
            let back = reader.read_all().expect("read");
            prop_assert_eq!(&back, &uops, "{:?}", codec);
        }
    }

    #[test]
    fn edge_cut_is_zero_iff_parts_agree_on_every_edge(
        region in region_strategy(32),
        k in 2u32..4,
    ) {
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        let crit = Criticality::compute(&ddg);
        let parts = GreedyPlacer::new(PlacerConfig::new(k)).place(&ddg, &crit);
        let cut = parts.edge_cut(&ddg);
        let disagree = ddg
            .edges()
            .iter()
            .filter(|e| parts.part(e.from) != parts.part(e.to))
            .count();
        prop_assert_eq!(cut, disagree);
    }
}

/// One randomly scripted operation against a [`Lsq`] (applied only when
/// valid for the current queue state).
#[derive(Debug, Clone, Copy)]
struct LsqScript {
    is_store: bool,
    /// Index into the aliasing line set (includes pairs of distinct lines
    /// that collide onto one index bucket).
    line: u8,
    offset: u8,
    addr_known: bool,
    data_ready: bool,
    freed: bool,
}

fn lsq_script_strategy() -> impl Strategy<Value = Vec<LsqScript>> {
    prop::collection::vec(
        (0u8..2, 0u8..6, 0u8..4, 0u8..8).prop_map(|(is_store, line, offset, flags)| LsqScript {
            is_store: is_store == 1,
            line,
            offset,
            addr_known: flags & 1 != 0,
            data_ready: flags & 2 != 0,
            freed: flags & 4 != 0,
        }),
        1..48,
    )
}

/// Map the small line index to real line numbers, deliberately including
/// pairs that collide modulo the LSQ index's bucket count (64): lines 0/64
/// and 1/65 share a bucket but must never cross-match.
fn lsq_addr(line: u8, offset: u8) -> u64 {
    let line_no: u64 = [0, 1, 2, 64, 65, 128][line as usize];
    line_no * 64 + u64::from(offset) * 8
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Differential property for the tentpole LSQ index: drive random
    // same-line/aliasing op scripts through the indexed `Lsq` and compare
    // EVERY load check against the linear-scan reference implementation,
    // through address arrival, data-ready transitions, frees and squashes.
    // Runs the comparison explicitly, so it has teeth in release builds
    // too (debug builds additionally assert the same equivalence inside
    // every `check_load`).
    #[test]
    fn indexed_lsq_is_bit_identical_to_scan(script in lsq_script_strategy()) {
        let mut lsq = Lsq::new(script.len().max(1));
        // Allocate in program order; sprinkle seq gaps like real dispatch.
        let seqs: Vec<u64> = script.iter().enumerate().map(|(i, _)| 3 * i as u64 + 1).collect();
        for (op, &seq) in script.iter().zip(&seqs) {
            lsq.alloc(seq, op.is_store);
        }
        let compare_all = |lsq: &Lsq| -> Result<(), TestCaseError> {
            for &seq in seqs.iter().chain([0, u64::MAX].iter()) {
                for line in 0..6u8 {
                    for offset in 0..4u8 {
                        let addr = lsq_addr(line, offset);
                        prop_assert_eq!(
                            lsq.check_load(seq, addr),
                            lsq.check_load_scan(seq, addr),
                            "seq {} addr {:#x}", seq, addr
                        );
                    }
                }
            }
            Ok(())
        };
        for (op, &seq) in script.iter().zip(&seqs) {
            if op.addr_known {
                lsq.set_addr(seq, lsq_addr(op.line, op.offset));
            }
            if op.is_store && op.data_ready {
                lsq.set_data_ready(seq);
            }
        }
        compare_all(&lsq)?;
        for (op, &seq) in script.iter().zip(&seqs) {
            if op.freed {
                lsq.free(seq);
            }
        }
        compare_all(&lsq)?;
        // Squash the youngest half, then verify again and check the index
        // retains exactly the alive, address-known stores.
        let boundary = seqs[seqs.len() / 2];
        lsq.squash_from(boundary);
        compare_all(&lsq)?;
        let expected_indexed = script
            .iter()
            .zip(&seqs)
            .filter(|(op, &seq)| op.is_store && op.addr_known && !op.freed && seq < boundary)
            .count();
        prop_assert_eq!(lsq.indexed_stores(), expected_indexed);
        // Reset reuse leaves no stale bucket behind.
        lsq.reset(script.len().max(1));
        prop_assert_eq!(lsq.indexed_stores(), 0);
        lsq.alloc(1, false);
        for line in 0..6u8 {
            prop_assert_eq!(lsq.check_load(1, lsq_addr(line, 0)), LoadCheck::GoToCache);
        }
    }
}

proptest! {
    // Fewer cases: each one simulates 8 schemes × 3 machines twice, with
    // the per-cycle debug cross-checks doing the heavy verification.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn wakeup_issue_is_bit_identical_to_scan(
        region in region_strategy(28),
        hints in prop::collection::vec(hint_strategy(), 28..29),
        iters in 1usize..4,
    ) {
        // The wakeup/select refactor replaced the per-cycle issue-queue
        // readiness scan with dependency-driven wakeup lists; debug builds
        // (this test runs as one) assert the wakeup-derived ready ring
        // against the full readiness scan every cycle in every cluster and
        // queue, and assert the incrementally maintained occupancy counters
        // against the queues' own books. Driving the Table 3 schemes plus
        // the ablations across 2-/4-/8-cluster machines over random hinted
        // programs exercises those checks; the fresh-vs-reused equality
        // additionally pins full `SimStats` bit-identity.
        let mut region = region;
        for (inst, hint) in region.insts.iter_mut().zip(hints) {
            inst.hint = hint;
        }
        let schemes = [
            Configuration::Op,
            Configuration::OpParallel,
            Configuration::OneCluster,
            Configuration::Ob,
            Configuration::Rhop,
            Configuration::Vc { num_vcs: 2 },
            Configuration::ModN { slice: 3 },
            Configuration::OpNoStall,
        ];
        let mut session = SimSession::new(&MachineConfig::default());
        for clusters in [2usize, 4, 8] {
            let machine = MachineConfig::default().with_clusters(clusters);
            for config in schemes {
                let mut program = Program::new("prop");
                program.add_region(region.clone());
                config
                    .software_pass(clusters as u32)
                    .apply(&mut program, &machine.latencies);
                let uops = expand(&program.regions[0], iters);
                let fresh = {
                    let mut trace = SliceTrace::new(&uops);
                    let mut policy = config.make_policy();
                    simulate(&machine, &mut trace, policy.as_mut(), &RunLimits::unlimited())
                };
                let reused = {
                    let mut trace = SliceTrace::new(&uops);
                    let mut policy = config.make_policy();
                    session.simulate(&machine, &mut trace, policy.as_mut(), &RunLimits::unlimited())
                };
                prop_assert_eq!(
                    &fresh, &reused,
                    "{} on {} clusters", config.name(clusters as u32), clusters
                );
                prop_assert_eq!(fresh.committed_uops, uops.len() as u64);
                prop_assert_eq!(fresh.copies_generated, fresh.copies_delivered);
            }
        }
    }
}

/// Memory-dense random region: every other slot a load or store, so the
/// LSQ index and the memory stage see sustained pressure.
fn mem_heavy_region_strategy(max_len: usize) -> impl Strategy<Value = Region> {
    let reg = (0u8..8).prop_map(ArchReg::int);
    let mem = prop_oneof![
        (reg.clone(), reg.clone()).prop_map(|(d, a)| StaticInst::new(OpClass::Load, &[a], Some(d))),
        (reg.clone(), reg.clone()).prop_map(|(a, v)| StaticInst::new(
            OpClass::Store,
            &[a, v],
            None
        )),
    ];
    prop::collection::vec((inst_strategy(), mem), 1..max_len / 2).prop_map(|pairs| {
        let mut r = Region::new(0, "mem-prop");
        for (a, b) in pairs {
            r.push(a);
            r.push(b);
        }
        r
    })
}

/// Address model with heavy line aliasing plus index-bucket collisions
/// (line numbers 0/64 and 1/65 share an LSQ index bucket): repeated exact
/// addresses across iterations make store-to-load forwarding and
/// WaitOnStore paths reachable.
fn aliasing_addr(s: u64) -> u64 {
    let line: u64 = [0, 1, 2, 64, 65, 128][(s % 6) as usize];
    line * 64 + ((s / 6) % 8) * 8
}

proptest! {
    // Each case simulates 8 schemes × 3 machines twice; the per-dispatch
    // debug cross-checks (`debug_assert_steering_view_matches_rebuild`,
    // the scan-vs-index assert inside every `Lsq::check_load`, and the
    // ready-ring mirrors) do the heavy verification.
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The tentpole's second prong: the incrementally maintained steering
    // view (live location masks, occupancy counters, busy/full bit masks)
    // must be indistinguishable from a per-uop rebuild. Debug builds
    // assert the view against a from-scratch reconstruction every dispatch
    // cycle; this property drives those checks across random hinted
    // programs × all schemes × 2/4/8-cluster machines under memory-dense
    // aliasing traffic, and pins full-stats bit-identity fresh-vs-reused.
    #[test]
    fn incremental_steering_view_matches_rebuild(
        region in mem_heavy_region_strategy(24),
        hints in prop::collection::vec(hint_strategy(), 24..25),
        iters in 1usize..4,
    ) {
        let mut region = region;
        for (inst, hint) in region.insts.iter_mut().zip(hints) {
            inst.hint = hint;
        }
        let schemes = [
            Configuration::Op,
            Configuration::OpParallel,
            Configuration::OneCluster,
            Configuration::Ob,
            Configuration::Rhop,
            Configuration::Vc { num_vcs: 2 },
            Configuration::ModN { slice: 3 },
            Configuration::OpNoStall,
        ];
        let mut session = SimSession::new(&MachineConfig::default());
        for clusters in [2usize, 4, 8] {
            let machine = MachineConfig::default().with_clusters(clusters);
            for config in schemes {
                let mut program = Program::new("mem-prop");
                program.add_region(region.clone());
                config
                    .software_pass(clusters as u32)
                    .apply(&mut program, &machine.latencies);
                let mut uops = Vec::new();
                let mut seq = 0;
                for it in 0..iters {
                    seq = virtclust::uarch::trace::expand_region(
                        &program.regions[0],
                        seq,
                        &mut uops,
                        |s, _| aliasing_addr(s),
                        |s, _| !(s + it as u64).is_multiple_of(3),
                    );
                }
                let fresh = {
                    let mut trace = SliceTrace::new(&uops);
                    let mut policy = config.make_policy();
                    simulate(&machine, &mut trace, policy.as_mut(), &RunLimits::unlimited())
                };
                let reused = {
                    let mut trace = SliceTrace::new(&uops);
                    let mut policy = config.make_policy();
                    session.simulate(&machine, &mut trace, policy.as_mut(), &RunLimits::unlimited())
                };
                prop_assert_eq!(
                    &fresh, &reused,
                    "{} on {} clusters", config.name(clusters as u32), clusters
                );
                prop_assert_eq!(fresh.committed_uops, uops.len() as u64);
            }
        }
    }

    // The cycle-skipping contract: advancing `now` over a provably idle
    // span — every per-cycle counter replicated arithmetically, and
    // pure-policy dispatch stalls probed instead of stepped — must be
    // invisible in the statistics. Random hinted programs run through all
    // eight schemes on 2/4/8-cluster machines under two address models
    // (line-aliasing store/load traffic, and a stride that misses every
    // cache level and maximises idle spans); a skipping run must produce
    // `SimStats` bit-identical to a forced single-stepping run, from a
    // reused session and from a fresh machine alike. Debug builds
    // additionally single-step a mirror of every skipped span inside the
    // session and assert the replicated counters cycle by cycle.
    #[test]
    fn cycle_skipping_is_bit_identical_to_stepping(
        region in mem_heavy_region_strategy(24),
        hints in prop::collection::vec(hint_strategy(), 24..25),
        iters in 1usize..4,
        far_misses in (0u8..2).prop_map(|b| b == 1),
    ) {
        let mut region = region;
        for (inst, hint) in region.insts.iter_mut().zip(hints) {
            inst.hint = hint;
        }
        let schemes = [
            Configuration::Op,
            Configuration::OpParallel,
            Configuration::OneCluster,
            Configuration::Ob,
            Configuration::Rhop,
            Configuration::Vc { num_vcs: 2 },
            Configuration::ModN { slice: 3 },
            Configuration::OpNoStall,
        ];
        let addr = move |s: u64| {
            if far_misses {
                (s.wrapping_mul(4096)) % (1 << 30)
            } else {
                aliasing_addr(s)
            }
        };
        let mut stepping = SimSession::new(&MachineConfig::default());
        stepping.set_cycle_skipping(false);
        let mut skipping = SimSession::new(&MachineConfig::default());
        skipping.set_cycle_skipping(true);
        for clusters in [2usize, 4, 8] {
            let machine = MachineConfig::default().with_clusters(clusters);
            for config in schemes {
                let mut program = Program::new("skip-prop");
                program.add_region(region.clone());
                config
                    .software_pass(clusters as u32)
                    .apply(&mut program, &machine.latencies);
                let mut uops = Vec::new();
                let mut seq = 0;
                for it in 0..iters {
                    seq = virtclust::uarch::trace::expand_region(
                        &program.regions[0],
                        seq,
                        &mut uops,
                        |s, _| addr(s),
                        |s, _| !(s + it as u64).is_multiple_of(3),
                    );
                }
                let run = |session: &mut SimSession| {
                    let mut trace = SliceTrace::new(&uops);
                    let mut policy = config.make_policy();
                    session.simulate(&machine, &mut trace, policy.as_mut(), &RunLimits::unlimited())
                };
                let strict = run(&mut stepping);
                let skipped = run(&mut skipping);
                prop_assert_eq!(
                    &strict, &skipped,
                    "skip-on vs skip-off (reused): {} on {} clusters",
                    config.name(clusters as u32), clusters
                );
                let fresh_strict = {
                    let mut m = Machine::new(&machine);
                    m.set_cycle_skipping(false);
                    let mut trace = SliceTrace::new(&uops);
                    let mut policy = config.make_policy();
                    m.run(&mut trace, policy.as_mut(), &RunLimits::unlimited())
                };
                prop_assert_eq!(
                    &strict, &fresh_strict,
                    "fresh stepping machine: {} on {} clusters",
                    config.name(clusters as u32), clusters
                );
            }
        }
    }
}

/// Hides the inner policy's purity declaration: decisions delegate, but
/// `steer_is_pure` keeps the trait default `false`, forcing the session
/// onto the per-cycle re-steer path — no epoch-batched dispatch plan, no
/// policy-dependent idle spans. For a genuinely pure policy the elided
/// and extra calls are unobservable by the purity contract, so routing
/// the same policy through the shim must not change a single statistic.
struct ImpureShim(Box<dyn SteeringPolicy>);
impl SteeringPolicy for ImpureShim {
    fn name(&self) -> String {
        self.0.name()
    }
    fn steer(&mut self, uop: &DynUop, view: &SteerView<'_>) -> SteerDecision {
        self.0.steer(uop, view)
    }
    fn reset(&mut self) {
        self.0.reset()
    }
}

proptest! {
    // Each case simulates 8 schemes × 3 machines × skip on/off, twice
    // per cell (memoized vs shimmed) — keep the case count low and let
    // the debug-build plan mirror do the per-cycle heavy lifting.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn epoch_batched_dispatch_is_bit_identical_to_per_cycle(
        region in region_strategy(28),
        hints in prop::collection::vec(hint_strategy(), 28..29),
        iters in 1usize..4,
    ) {
        // The dispatch-plan memo replays a pure policy's stall
        // classification across the cycles of an epoch instead of
        // re-deriving it. Differential oracle: the same scheme behind
        // `ImpureShim` takes the plain per-cycle path (memo and
        // policy-span skipping are keyed on `steer_is_pure`), so full
        // `SimStats` equality pins the batching to pure elision — across
        // every Table 3 scheme plus the ablations, 2/4/8 clusters,
        // cycle skipping forced on and off, and fresh vs reused sessions
        // (the reused pair also proves plan state cannot leak between
        // runs through `reset`).
        let mut region = region;
        for (inst, hint) in region.insts.iter_mut().zip(hints) {
            inst.hint = hint;
        }
        let schemes = [
            Configuration::Op,
            Configuration::OpParallel,
            Configuration::OneCluster,
            Configuration::Ob,
            Configuration::Rhop,
            Configuration::Vc { num_vcs: 2 },
            Configuration::ModN { slice: 3 },
            Configuration::OpNoStall,
        ];
        let mut memo_session = SimSession::new(&MachineConfig::default());
        let mut plain_session = SimSession::new(&MachineConfig::default());
        for clusters in [2usize, 4, 8] {
            let machine = MachineConfig::default().with_clusters(clusters);
            for config in schemes {
                let mut program = Program::new("prop");
                program.add_region(region.clone());
                config
                    .software_pass(clusters as u32)
                    .apply(&mut program, &machine.latencies);
                let uops = expand(&program.regions[0], iters);
                for skip in [true, false] {
                    memo_session.set_cycle_skipping(skip);
                    plain_session.set_cycle_skipping(skip);
                    let fresh_memo = {
                        let mut session = SimSession::new(&machine);
                        session.set_cycle_skipping(skip);
                        let mut trace = SliceTrace::new(&uops);
                        let mut policy = config.make_policy();
                        session.simulate(
                            &machine, &mut trace, policy.as_mut(), &RunLimits::unlimited(),
                        )
                    };
                    let fresh_plain = {
                        let mut session = SimSession::new(&machine);
                        session.set_cycle_skipping(skip);
                        let mut trace = SliceTrace::new(&uops);
                        let mut policy = ImpureShim(config.make_policy());
                        session.simulate(
                            &machine, &mut trace, &mut policy, &RunLimits::unlimited(),
                        )
                    };
                    let reused_memo = {
                        let mut trace = SliceTrace::new(&uops);
                        let mut policy = config.make_policy();
                        memo_session.simulate(
                            &machine, &mut trace, policy.as_mut(), &RunLimits::unlimited(),
                        )
                    };
                    let reused_plain = {
                        let mut trace = SliceTrace::new(&uops);
                        let mut policy = ImpureShim(config.make_policy());
                        plain_session.simulate(
                            &machine, &mut trace, &mut policy, &RunLimits::unlimited(),
                        )
                    };
                    prop_assert_eq!(
                        &fresh_memo, &fresh_plain,
                        "fresh memo vs per-cycle: {} on {} clusters, skip={}",
                        config.name(clusters as u32), clusters, skip
                    );
                    prop_assert_eq!(
                        &reused_memo, &reused_plain,
                        "reused memo vs per-cycle: {} on {} clusters, skip={}",
                        config.name(clusters as u32), clusters, skip
                    );
                    prop_assert_eq!(
                        &fresh_memo, &reused_memo,
                        "fresh vs reused: {} on {} clusters, skip={}",
                        config.name(clusters as u32), clusters, skip
                    );
                }
            }
        }
    }
}
