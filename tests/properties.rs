//! Property-based tests (proptest) over randomly generated regions and
//! traces: structural invariants of the analyses, validity of every
//! partitioner's output, and conservation laws of the simulator under
//! arbitrary (even adversarial) steering.

use proptest::prelude::*;
use virtclust::compiler::{
    identify_chains, GreedyPlacer, PlacerConfig, RhopConfig, RhopPartitioner,
};
use virtclust::core::Configuration;
use virtclust::ddg::{Criticality, Ddg};
use virtclust::sim::{simulate, RunLimits, SimSession, SteerDecision, SteerView, SteeringPolicy};
use virtclust::trace::{Codec, TraceReader, TraceWriter};
use virtclust::uarch::{
    ArchReg, DynUop, LatencyModel, MachineConfig, OpClass, Program, Region, SliceTrace, StaticInst,
    SteerHint, TraceSource, VecTrace,
};

/// Strategy: a random static instruction over a small register window.
fn inst_strategy() -> impl Strategy<Value = StaticInst> {
    let reg = (0u8..8).prop_map(ArchReg::int);
    let freg = (0u8..8).prop_map(ArchReg::flt);
    prop_oneof![
        // Integer compute
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| StaticInst::new(
            OpClass::IntAlu,
            &[a, b],
            Some(d)
        )),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| StaticInst::new(
            OpClass::IntMul,
            &[a, b],
            Some(d)
        )),
        // FP compute
        (freg.clone(), freg.clone(), freg.clone()).prop_map(|(d, a, b)| StaticInst::new(
            OpClass::FpAdd,
            &[a, b],
            Some(d)
        )),
        // Memory
        (reg.clone(), reg.clone()).prop_map(|(d, a)| StaticInst::new(OpClass::Load, &[a], Some(d))),
        (reg.clone(), reg.clone()).prop_map(|(a, v)| StaticInst::new(
            OpClass::Store,
            &[a, v],
            None
        )),
        // Branch
        reg.clone()
            .prop_map(|c| StaticInst::new(OpClass::Branch, &[c], None)),
    ]
}

/// Strategy: a random steering annotation (the static side the trace
/// format must round-trip along with the dynamic facts).
fn hint_strategy() -> impl Strategy<Value = SteerHint> {
    prop_oneof![
        (0u8..1).prop_map(|_| SteerHint::None),
        (0u8..4).prop_map(|cluster| SteerHint::Static { cluster }),
        (0u8..8).prop_map(|bits| SteerHint::Vc {
            vc: bits >> 1,
            leader: bits & 1 == 1,
        }),
    ]
}

fn region_strategy(max_len: usize) -> impl Strategy<Value = Region> {
    prop::collection::vec(inst_strategy(), 1..max_len).prop_map(|insts| {
        let mut r = Region::new(0, "prop");
        for i in insts {
            r.push(i);
        }
        r
    })
}

/// A policy that steers by an arbitrary (but deterministic) hash of the
/// sequence number — the adversarial case for the copy machinery.
struct HashSteer {
    clusters: u8,
}
impl SteeringPolicy for HashSteer {
    fn name(&self) -> String {
        "hash-steer".into()
    }
    fn steer(&mut self, uop: &DynUop, _view: &SteerView<'_>) -> SteerDecision {
        let h = uop.seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        SteerDecision::Cluster((h % u64::from(self.clusters)) as u8)
    }
}

fn expand(region: &Region, iters: usize) -> Vec<DynUop> {
    let mut uops = Vec::new();
    let mut seq = 0;
    for it in 0..iters {
        seq = virtclust::uarch::trace::expand_region(
            region,
            seq,
            &mut uops,
            |s, _| 0x1000 + (s % 128) * 8,
            |s, _| !(s + it as u64).is_multiple_of(3),
        );
    }
    uops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn criticality_invariants_hold(region in region_strategy(40)) {
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        ddg.check_invariants().unwrap();
        let crit = Criticality::compute(&ddg);
        for i in 0..ddg.n() as u32 {
            // criticality = depth + height, bounded by the critical path.
            prop_assert_eq!(
                crit.criticality[i as usize],
                crit.depth[i as usize] + crit.height[i as usize]
            );
            prop_assert!(crit.criticality[i as usize] <= crit.cp_length);
            // Edges can only increase depth downstream.
            for &s in ddg.succs(i) {
                prop_assert!(
                    crit.depth[s as usize]
                        >= crit.depth[i as usize] + u64::from(ddg.latency(i))
                );
            }
            // height >= own latency.
            prop_assert!(crit.height[i as usize] >= u64::from(ddg.latency(i)));
        }
    }

    #[test]
    fn placers_emit_valid_partitions(region in region_strategy(40), k in 1u32..5) {
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        let crit = Criticality::compute(&ddg);
        let greedy = GreedyPlacer::new(PlacerConfig::new(k)).place(&ddg, &crit);
        prop_assert!(greedy.is_valid());
        prop_assert_eq!(greedy.n(), ddg.n());
        let rhop = RhopPartitioner::new(RhopConfig::new(k)).partition(&ddg, &crit);
        prop_assert!(rhop.is_valid());
        prop_assert_eq!(rhop.n(), ddg.n());
    }

    #[test]
    fn chains_partition_each_vc(region in region_strategy(40), k in 1u32..4) {
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        let crit = Criticality::compute(&ddg);
        let parts = GreedyPlacer::new(PlacerConfig::new(k)).place(&ddg, &crit);
        let chains = identify_chains(&ddg, &parts, None);
        let mut seen = vec![false; ddg.n()];
        for c in &chains {
            prop_assert!(!c.members.is_empty());
            prop_assert_eq!(c.leader(), c.members[0]);
            for &m in &c.members {
                prop_assert!(!seen[m as usize], "node in two chains");
                seen[m as usize] = true;
                prop_assert_eq!(parts.part(m), c.vc);
            }
            // Members ascend in program order.
            prop_assert!(c.members.windows(2).all(|w| w[0] < w[1]));
        }
        prop_assert!(seen.iter().all(|&s| s), "every node belongs to a chain");
    }

    #[test]
    fn simulator_conserves_uops_under_adversarial_steering(
        region in region_strategy(24),
        clusters in 1usize..5,
        iters in 1usize..6,
    ) {
        let uops = expand(&region, iters);
        let total = uops.len() as u64;
        let mut trace = VecTrace::new(uops);
        let cfg = MachineConfig::default().with_clusters(clusters);
        let mut policy = HashSteer { clusters: clusters as u8 };
        let stats = simulate(&cfg, &mut trace, &mut policy, &RunLimits::unlimited());
        prop_assert_eq!(stats.committed_uops, total, "lost micro-ops");
        prop_assert_eq!(stats.copies_generated, stats.copies_delivered);
        prop_assert!(stats.cycles > 0 || total == 0);
        let dispatched: u64 = stats.clusters.iter().map(|c| c.dispatched).sum();
        prop_assert_eq!(dispatched, total);
    }

    #[test]
    fn reused_session_is_bit_identical_to_fresh_machines(
        region in region_strategy(24),
        iters in 1usize..5,
        cluster_seq in prop::collection::vec(1usize..5, 2..5),
    ) {
        // One SimSession serves a random sequence of runs with mixed
        // cluster counts (2-/4-/3-cluster machines interleaved) and a
        // rewound trace; every run must be bit-identical to a fresh
        // `Machine::new` run of the same cell. This is the session-reuse
        // contract the batch engine is built on.
        let uops = expand(&region, iters);
        let mut session = SimSession::new(&MachineConfig::default());
        let mut reused_trace = SliceTrace::new(&uops);
        for &clusters in &cluster_seq {
            let cfg = MachineConfig::default().with_clusters(clusters);
            let fresh = {
                let mut trace = SliceTrace::new(&uops);
                let mut policy = HashSteer { clusters: clusters as u8 };
                simulate(&cfg, &mut trace, &mut policy, &RunLimits::unlimited())
            };
            let reused = {
                reused_trace.rewind().expect("slice traces rewind");
                let mut policy = HashSteer { clusters: clusters as u8 };
                session.simulate(&cfg, &mut reused_trace, &mut policy, &RunLimits::unlimited())
            };
            prop_assert_eq!(fresh, reused, "{} clusters", clusters);
        }
    }

    #[test]
    fn simulation_is_deterministic(region in region_strategy(24), clusters in 1usize..4) {
        let uops = expand(&region, 3);
        let run = || {
            let mut trace = VecTrace::new(uops.clone());
            let cfg = MachineConfig::default().with_clusters(clusters);
            let mut policy = HashSteer { clusters: clusters as u8 };
            simulate(&cfg, &mut trace, &mut policy, &RunLimits::unlimited())
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn trace_codecs_roundtrip_the_dynamic_stream_exactly(
        region in region_strategy(32),
        hints in prop::collection::vec(hint_strategy(), 32..33),
        iters in 1usize..6,
    ) {
        // Random annotations on the static side: hints live in the program
        // section and must round-trip along with the dynamic facts.
        let mut region = region;
        for (inst, hint) in region.insts.iter_mut().zip(hints) {
            inst.hint = hint;
        }
        let mut program = Program::new("prop");
        program.add_region(region);
        let uops = expand(&program.regions[0], iters);
        for codec in [Codec::Text, Codec::Binary] {
            let mut buf = Vec::new();
            let mut w = TraceWriter::new(&mut buf, &program, codec, Some(uops.len() as u64))
                .expect("writer");
            for u in &uops {
                w.write_uop(u).expect("write");
            }
            w.finish().expect("finish");
            let mut reader = TraceReader::new(std::io::Cursor::new(&buf)).expect("reader");
            prop_assert_eq!(reader.program(), &program, "{:?}", codec);
            let back = reader.read_all().expect("read");
            prop_assert_eq!(&back, &uops, "{:?}", codec);
        }
    }

    #[test]
    fn edge_cut_is_zero_iff_parts_agree_on_every_edge(
        region in region_strategy(32),
        k in 2u32..4,
    ) {
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        let crit = Criticality::compute(&ddg);
        let parts = GreedyPlacer::new(PlacerConfig::new(k)).place(&ddg, &crit);
        let cut = parts.edge_cut(&ddg);
        let disagree = ddg
            .edges()
            .iter()
            .filter(|e| parts.part(e.from) != parts.part(e.to))
            .count();
        prop_assert_eq!(cut, disagree);
    }
}

proptest! {
    // Fewer cases: each one simulates 8 schemes × 3 machines twice, with
    // the per-cycle debug cross-checks doing the heavy verification.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn wakeup_issue_is_bit_identical_to_scan(
        region in region_strategy(28),
        hints in prop::collection::vec(hint_strategy(), 28..29),
        iters in 1usize..4,
    ) {
        // The wakeup/select refactor replaced the per-cycle issue-queue
        // readiness scan with dependency-driven wakeup lists; debug builds
        // (this test runs as one) assert the wakeup-derived ready ring
        // against the full readiness scan every cycle in every cluster and
        // queue, and assert the incrementally maintained occupancy counters
        // against the queues' own books. Driving the Table 3 schemes plus
        // the ablations across 2-/4-/8-cluster machines over random hinted
        // programs exercises those checks; the fresh-vs-reused equality
        // additionally pins full `SimStats` bit-identity.
        let mut region = region;
        for (inst, hint) in region.insts.iter_mut().zip(hints) {
            inst.hint = hint;
        }
        let schemes = [
            Configuration::Op,
            Configuration::OpParallel,
            Configuration::OneCluster,
            Configuration::Ob,
            Configuration::Rhop,
            Configuration::Vc { num_vcs: 2 },
            Configuration::ModN { slice: 3 },
            Configuration::OpNoStall,
        ];
        let mut session = SimSession::new(&MachineConfig::default());
        for clusters in [2usize, 4, 8] {
            let machine = MachineConfig::default().with_clusters(clusters);
            for config in schemes {
                let mut program = Program::new("prop");
                program.add_region(region.clone());
                config
                    .software_pass(clusters as u32)
                    .apply(&mut program, &machine.latencies);
                let uops = expand(&program.regions[0], iters);
                let fresh = {
                    let mut trace = SliceTrace::new(&uops);
                    let mut policy = config.make_policy();
                    simulate(&machine, &mut trace, policy.as_mut(), &RunLimits::unlimited())
                };
                let reused = {
                    let mut trace = SliceTrace::new(&uops);
                    let mut policy = config.make_policy();
                    session.simulate(&machine, &mut trace, policy.as_mut(), &RunLimits::unlimited())
                };
                prop_assert_eq!(
                    &fresh, &reused,
                    "{} on {} clusters", config.name(clusters as u32), clusters
                );
                prop_assert_eq!(fresh.committed_uops, uops.len() as u64);
                prop_assert_eq!(fresh.copies_generated, fresh.copies_delivered);
            }
        }
    }
}
