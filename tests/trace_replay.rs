//! Integration tests for the trace capture/replay subsystem — the PR's
//! acceptance criteria:
//!
//! 1. a trace captured from the synthetic generator replays to
//!    **bit-identical** committed-uop counts and IPC for every steering
//!    scheme;
//! 2. the text and binary codecs round-trip a ≥100 k-uop stream
//!    losslessly;
//! 3. the committed corpus under `results/traces/` stays readable (format
//!    stability: breaking these files means `FORMAT_VERSION` must be
//!    bumped and the corpus regenerated).

use std::path::PathBuf;

use virtclust::core::{record_point, replay_compare, replay_trace, run_point, Configuration};
use virtclust::sim::RunLimits;
use virtclust::trace::{Codec, TraceReader, TraceWriter};
use virtclust::uarch::{MachineConfig, TraceSource};
use virtclust::workloads::{spec2000_points, TracePoint};

fn point(name: &str) -> TracePoint {
    spec2000_points()
        .into_iter()
        .find(|p| p.name == name)
        .expect("suite point")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("virtclust-it-{}-{name}", std::process::id()))
}

#[test]
fn captured_trace_replays_bit_identically_under_every_scheme() {
    let machine = MachineConfig::paper_2cluster();
    let p = point("gzip-1");
    let budget = 8_000;
    let path = tmp("gzip1-accept.vctb");
    assert_eq!(
        record_point(&p, budget, Codec::Binary, &path).unwrap(),
        budget
    );
    // Every Table 3 scheme plus the extra ablation policies: the stored
    // stream must be indistinguishable from the live expander everywhere.
    let mut schemes = Configuration::table3().to_vec();
    schemes.extend([
        Configuration::OpParallel,
        Configuration::OpNoStall,
        Configuration::ModN { slice: 64 },
    ]);
    for config in schemes {
        let live = run_point(&p, &config, &machine, budget);
        let replayed = replay_trace(&path, &config, &machine, &RunLimits::unlimited()).unwrap();
        assert_eq!(
            live.committed_uops,
            replayed.committed_uops,
            "{}",
            config.name(2)
        );
        assert_eq!(live.ipc(), replayed.ipc(), "{}", config.name(2));
        // And in fact the whole statistics block, not just the headline.
        assert_eq!(live, replayed, "{}", config.name(2));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn replay_is_bit_identical_on_the_four_cluster_machine() {
    let machine = MachineConfig::paper_4cluster();
    let p = point("galgel");
    let budget = 5_000;
    let path = tmp("galgel-4c.vct");
    record_point(&p, budget, Codec::Text, &path).unwrap();
    for config in [
        Configuration::Op,
        Configuration::Vc { num_vcs: 2 },
        Configuration::Vc { num_vcs: 4 },
    ] {
        let live = run_point(&p, &config, &machine, budget);
        let replayed = replay_trace(&path, &config, &machine, &RunLimits::unlimited()).unwrap();
        assert_eq!(live, replayed, "{}", config.name(4));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn codecs_roundtrip_a_100k_uop_stream_losslessly() {
    use virtclust::uarch::DynUop;
    let p = point("gcc-1");
    let program = p.build_program();
    let n: u64 = 120_000;
    let mut uops: Vec<DynUop> = Vec::with_capacity(n as usize);
    let mut expander = p.expander(&program);
    for _ in 0..n {
        uops.push(expander.next_uop().expect("endless stream"));
    }
    for codec in [Codec::Text, Codec::Binary] {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, &program, codec, Some(n)).unwrap();
        for u in &uops {
            w.write_uop(u).unwrap();
        }
        assert_eq!(w.finish().unwrap(), n);
        let mut reader = TraceReader::new(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(reader.program(), &program, "{codec:?}");
        assert_eq!(reader.declared_len(), Some(n));
        let back = reader.read_all().unwrap();
        assert_eq!(back.len() as u64, n);
        assert_eq!(back, uops, "{codec:?} codec must be lossless at scale");
    }
}

#[test]
fn committed_corpus_stays_readable_and_replayable() {
    let corpus = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results/traces");
    let machine = MachineConfig::paper_2cluster();
    for (file, expect_uops) in [
        ("gzip-1.vct", 2_000),
        ("galgel.vctb", 4_000),
        ("dotprod.vct", 1_000),
        ("smoke8.vct", 1_500),
    ] {
        let path = corpus.join(file);
        let mut reader = TraceReader::open(&path).unwrap_or_else(|e| {
            panic!("{file} no longer parses ({e}); bump FORMAT_VERSION and regenerate")
        });
        assert_eq!(reader.declared_len(), Some(expect_uops), "{file}");
        let uops = reader.read_all().unwrap();
        assert_eq!(uops.len() as u64, expect_uops, "{file}");

        // Cross-scheme compare over the stored stream commits identically.
        let rows = replay_compare(&path, &Configuration::table3(), &machine).unwrap();
        let commits: Vec<u64> = rows.iter().map(|(_, s)| s.committed_uops).collect();
        assert!(
            commits.iter().all(|&c| c == commits[0]),
            "{file}: {commits:?}"
        );
    }

    // The 8-cluster smoke cell (ROADMAP "8-cluster runs"): the smoke8
    // kernel's eight chains spread over all eight clusters, exercising
    // location/wakeup masks beyond 4 bits end to end.
    let eight = MachineConfig::paper_8cluster();
    let rows = replay_compare(corpus.join("smoke8.vct"), &Configuration::table3(), &eight).unwrap();
    let commits: Vec<u64> = rows.iter().map(|(_, s)| s.committed_uops).collect();
    assert!(
        commits.iter().all(|&c| c == 1_500),
        "smoke8 at 8 clusters: {commits:?}"
    );
}

#[test]
fn corpus_kernel_still_imports() {
    let corpus = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results/traces");
    let program = virtclust::trace::import_kernel_file(corpus.join("dotprod.kernel")).unwrap();
    assert_eq!(program.name, "dotprod");
    assert_eq!(program.static_len(), 7);
    // The committed dotprod.vct embeds exactly this program.
    let reader = TraceReader::open(corpus.join("dotprod.vct")).unwrap();
    assert_eq!(reader.program(), &program);
}
