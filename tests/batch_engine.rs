//! Integration tests for the session/batch layer — this PR's acceptance
//! criteria:
//!
//! 1. a [`SimSession`] reused across runs (mixed machine configurations
//!    and real Table 3 steering schemes) produces `SimStats` bit-identical
//!    to fresh `Machine::new` runs;
//! 2. [`EvalDriver`] output is deterministic across 1/2/8 worker threads
//!    for heterogeneous job queues;
//! 3. `run_matrix` (now one `EvalDriver` call) stays bit-identical to
//!    per-cell `run_point`, so every figures/metrics/replay consumer
//!    migrates unchanged;
//! 4. batched replay of the committed corpus matches the one-shot
//!    `replay_trace` path.

use std::path::PathBuf;

use virtclust::core::{replay_trace, run_matrix, run_point, Configuration, EvalDriver, EvalJob};
use virtclust::sim::{RunLimits, SimSession, SimStats};
use virtclust::uarch::MachineConfig;
use virtclust::workloads::{spec2000_points, TracePoint};

fn point(name: &str) -> TracePoint {
    spec2000_points()
        .into_iter()
        .find(|p| p.name == name)
        .expect("suite point")
}

fn corpus(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("results/traces")
        .join(file)
}

#[test]
fn one_session_serves_every_table3_scheme_bit_identically() {
    // Mixed machines (2- and 4-cluster) and all five schemes, through one
    // session, in an order that forces repeated reconfiguration.
    let budget = 2_000;
    let two = MachineConfig::paper_2cluster();
    let four = MachineConfig::paper_4cluster();
    let mut session = SimSession::new(&two);
    for (machine, pname) in [(&two, "crafty"), (&four, "galgel"), (&two, "gzip-1")] {
        let p = point(pname);
        for config in Configuration::table3() {
            let fresh = run_point(&p, &config, machine, budget);
            let reused = {
                let mut program = p.build_program();
                config
                    .software_pass(machine.num_clusters as u32)
                    .apply(&mut program, &machine.latencies);
                let mut trace = p.expander(&program);
                let mut policy = config.make_policy();
                session.simulate(
                    machine,
                    &mut trace,
                    policy.as_mut(),
                    &RunLimits::uops(budget),
                )
            };
            assert_eq!(
                fresh,
                reused,
                "{pname} × {} on {} clusters",
                config.name(machine.num_clusters as u32),
                machine.num_clusters
            );
        }
    }
}

#[test]
fn eval_driver_is_deterministic_across_1_2_8_threads() {
    let machine = MachineConfig::paper_2cluster();
    // Heterogeneous queue: generated points and committed-corpus replays.
    let mut jobs: Vec<EvalJob> = Vec::new();
    for config in Configuration::table3() {
        jobs.push(EvalJob::Point {
            point: point("gzip-1"),
            config,
            uops: 700,
        });
        jobs.push(EvalJob::Trace {
            path: corpus("galgel.vctb"),
            config,
            limits: RunLimits::uops(900),
        });
    }
    let stats_of = |threads: usize| -> Vec<SimStats> {
        EvalDriver::new(&machine)
            .threads(threads)
            .run(&jobs)
            .into_iter()
            .map(|o| o.stats.expect("corpus is readable"))
            .collect()
    };
    let one = stats_of(1);
    assert_eq!(one, stats_of(2), "1 vs 2 worker threads");
    assert_eq!(one, stats_of(8), "1 vs 8 worker threads");
}

#[test]
fn run_matrix_through_the_batch_engine_matches_run_point() {
    let machine = MachineConfig::paper_2cluster();
    let points: Vec<TracePoint> = spec2000_points()
        .into_iter()
        .filter(|p| ["gzip-1", "mcf", "galgel"].contains(&p.name.as_str()))
        .collect();
    let configs = [Configuration::Op, Configuration::Vc { num_vcs: 2 }];
    let matrix = run_matrix(&machine, &configs, &points, 1_000, 3);
    for (pi, p) in points.iter().enumerate() {
        for (ci, config) in configs.iter().enumerate() {
            let standalone = run_point(p, config, &machine, 1_000);
            assert_eq!(
                &standalone,
                matrix.cell(pi, ci),
                "{} × {}",
                p.name,
                config.name(2)
            );
        }
    }
}

#[test]
fn batched_corpus_replay_matches_one_shot_replay_trace() {
    let machine = MachineConfig::paper_2cluster();
    let path = corpus("gzip-1.vct");
    let jobs: Vec<EvalJob> = Configuration::table3()
        .into_iter()
        .map(|config| EvalJob::Trace {
            path: path.clone(),
            config,
            limits: RunLimits::unlimited(),
        })
        .collect();
    // One worker: the five cells share a single parsed, rewound reader.
    let outcomes = EvalDriver::new(&machine).threads(1).run(&jobs);
    for (job, outcome) in jobs.iter().zip(&outcomes) {
        let one_shot =
            replay_trace(&path, job.config(), &machine, &RunLimits::unlimited()).unwrap();
        assert_eq!(
            &one_shot,
            outcome.stats.as_ref().unwrap(),
            "{}",
            job.label(2)
        );
    }
}

#[test]
fn non_rewindable_source_fails_typed_instead_of_panicking() {
    // The batch engine's per-worker reuse pattern — simulate a cell, rewind
    // the source, simulate the next cell — against a source that cannot
    // restart. The second cell must surface `RewindError::Unsupported`
    // naming the source kind at the seam, instead of a panic (or a silent
    // empty re-run) deep inside the driver loop.
    use virtclust::uarch::{DynUop, RewindError, TraceSource};

    struct OneShot {
        uops: Vec<DynUop>,
        pos: usize,
    }
    impl TraceSource for OneShot {
        fn next_uop(&mut self) -> Option<DynUop> {
            let u = self.uops.get(self.pos).copied();
            self.pos += 1;
            u
        }
        fn source_kind(&self) -> &'static str {
            "OneShot"
        }
        // No `rewind` override: the default refusal applies.
    }

    let machine = MachineConfig::paper_2cluster();
    let p = point("gzip-1");
    let program = p.build_program();
    let mut expander = p.expander(&program);
    let uops: Vec<DynUop> = (0..500)
        .map(|_| expander.next_uop().expect("endless"))
        .collect();

    let mut session = SimSession::new(&machine);
    let mut source = OneShot { uops, pos: 0 };
    let config = Configuration::Op;

    // Cell 1 runs fine.
    let mut policy = config.make_policy();
    let first = session.simulate(
        &machine,
        &mut source,
        policy.as_mut(),
        &RunLimits::unlimited(),
    );
    assert_eq!(first.committed_uops, 500);

    // Cell 2: the reuse loop must see the typed refusal before re-running.
    let err = source.rewind().expect_err("OneShot cannot rewind");
    assert_eq!(err, RewindError::Unsupported { source: "OneShot" });
    assert!(matches!(err, RewindError::Unsupported { source } if source == "OneShot"));
}
