//! Golden-stats regression suite: a committed snapshot of **full**
//! [`SimStats`] for a 30-cell subset of the `probe_ipc` matrix (2/4/8
//! clusters × the five Table 3 schemes × two suite points, at the fixed
//! 20 k-uop budget `results/BASELINES.md` pins). Any machine-model change —
//! intended or not — shows up as a textual diff against
//! `results/golden/probe_ipc_20k.txt`.
//!
//! Regenerate (one command, after an *intended* model change):
//!
//! ```sh
//! GOLDEN_REGEN=1 cargo test --test golden_stats
//! ```
//!
//! then commit the rewritten snapshot together with the change that caused
//! it. The test fails when the env var is unset and any cell diverges.

use std::fmt::Write as _;
use std::path::PathBuf;

use virtclust::core::{run_point, run_point_on, Configuration};
use virtclust::sim::{SimSession, SimStats, StallReason};
use virtclust::uarch::MachineConfig;
use virtclust::workloads::spec2000_points;

/// The fixed per-cell micro-op budget (matches `results/BASELINES.md`).
const BUDGET: u64 = 20_000;

/// Suite points in the subset: one integer-heavy, one FP-heavy.
const POINTS: [&str; 2] = ["gzip-1", "galgel"];

/// Cluster counts spanning the full matrix (2-bit to 8-bit cluster masks).
const CLUSTERS: [usize; 3] = [2, 4, 8];

fn preset(clusters: usize) -> MachineConfig {
    match clusters {
        2 => MachineConfig::paper_2cluster(),
        4 => MachineConfig::paper_4cluster(),
        8 => MachineConfig::paper_8cluster(),
        _ => unreachable!("CLUSTERS only lists paper presets"),
    }
}

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join("golden")
        .join("probe_ipc_20k.txt")
}

/// Serialize every field of a [`SimStats`] into stable `key=value` lines.
/// The exhaustive destructuring makes this fail to compile when `SimStats`
/// grows a field, so the snapshot can never silently under-cover.
fn serialize_stats(stats: &SimStats, out: &mut String) {
    let SimStats {
        cycles,
        committed_uops,
        copies_generated,
        copies_delivered,
        dispatch_stalls,
        frontend_starved_cycles,
        branches,
        mispredicts,
        l1_hits,
        l1_misses,
        l2_hits,
        l2_misses,
        store_forwards,
        trace_cache_misses,
        clusters,
    } = stats;
    let _ = writeln!(out, "cycles={cycles}");
    let _ = writeln!(out, "committed_uops={committed_uops}");
    let _ = writeln!(out, "copies_generated={copies_generated}");
    let _ = writeln!(out, "copies_delivered={copies_delivered}");
    for reason in StallReason::ALL {
        let _ = writeln!(
            out,
            "dispatch_stalls.{reason}={}",
            dispatch_stalls[reason.index()]
        );
    }
    let _ = writeln!(out, "frontend_starved_cycles={frontend_starved_cycles}");
    let _ = writeln!(out, "branches={branches}");
    let _ = writeln!(out, "mispredicts={mispredicts}");
    let _ = writeln!(out, "l1_hits={l1_hits}");
    let _ = writeln!(out, "l1_misses={l1_misses}");
    let _ = writeln!(out, "l2_hits={l2_hits}");
    let _ = writeln!(out, "l2_misses={l2_misses}");
    let _ = writeln!(out, "store_forwards={store_forwards}");
    let _ = writeln!(out, "trace_cache_misses={trace_cache_misses}");
    for (i, c) in clusters.iter().enumerate() {
        let _ = writeln!(
            out,
            "cluster{i}=dispatched:{},copies_inserted:{},issued:{},occupancy_integral:{}",
            c.dispatched, c.copies_inserted, c.issued, c.occupancy_integral
        );
    }
}

/// Run every cell of the subset and render the whole snapshot text.
fn render_snapshot() -> String {
    let points = spec2000_points();
    let mut out = String::from(
        "# Golden SimStats snapshot: probe_ipc subset, 20000 uops/cell.\n\
         # Regenerate with: GOLDEN_REGEN=1 cargo test --test golden_stats\n",
    );
    for clusters in CLUSTERS {
        let machine = preset(clusters);
        for point_name in POINTS {
            let point = points
                .iter()
                .find(|p| p.name == point_name)
                .expect("subset point exists in the suite");
            for config in Configuration::table3() {
                let stats = run_point(point, &config, &machine, BUDGET);
                let _ = writeln!(
                    out,
                    "\n[cell point={point_name} scheme={} clusters={clusters} uops={BUDGET}]",
                    config.name(clusters as u32)
                );
                serialize_stats(&stats, &mut out);
            }
        }
    }
    out
}

/// Report the first line where `actual` diverges from `expected`.
fn first_divergence(expected: &str, actual: &str) -> Option<(usize, String, String)> {
    let mut exp = expected.lines();
    let mut act = actual.lines();
    let mut line_no = 0;
    loop {
        line_no += 1;
        match (exp.next(), act.next()) {
            (None, None) => return None,
            (e, a) if e != a => {
                return Some((
                    line_no,
                    e.unwrap_or("<end of snapshot>").to_string(),
                    a.unwrap_or("<end of run>").to_string(),
                ))
            }
            _ => {}
        }
    }
}

#[test]
fn golden_stats_match_the_committed_snapshot() {
    let actual = render_snapshot();
    let path = snapshot_path();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create results/golden");
        std::fs::write(&path, &actual).expect("write snapshot");
        println!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read the golden snapshot {}: {e}\n\
             (create it with GOLDEN_REGEN=1 cargo test --test golden_stats)",
            path.display()
        )
    });
    if let Some((line, exp, act)) = first_divergence(&expected, &actual) {
        panic!(
            "golden stats diverged from {} at line {line}:\n\
             expected: {exp}\n\
             actual:   {act}\n\
             If this change is intended, regenerate with:\n\
             GOLDEN_REGEN=1 cargo test --test golden_stats",
            path.display()
        );
    }
}

#[test]
fn golden_diff_detects_any_stats_perturbation() {
    // The harness's teeth: perturbing any single serialized counter of any
    // cell must be caught by the comparison. (The "fails on intentional
    // perturbation" acceptance check, kept as a durable test instead of a
    // one-off manual experiment.)
    let machine = preset(2);
    let points = spec2000_points();
    let point = points.iter().find(|p| p.name == POINTS[0]).unwrap();
    let stats = run_point(point, &Configuration::Op, &machine, 2_000);
    let mut reference = String::new();
    serialize_stats(&stats, &mut reference);

    let mut perturbed = stats.clone();
    perturbed.cycles += 1;
    let mut text = String::new();
    serialize_stats(&perturbed, &mut text);
    assert!(
        first_divergence(&reference, &text).is_some(),
        "a cycles perturbation must diff"
    );

    let mut perturbed = stats.clone();
    perturbed.clusters[1].issued += 1;
    let mut text = String::new();
    serialize_stats(&perturbed, &mut text);
    let (line, exp, act) = first_divergence(&reference, &text).expect("per-cluster diff");
    assert_ne!(exp, act);
    assert!(line > 0);

    // Truncation (a vanished cluster) is also caught.
    let mut perturbed = stats.clone();
    perturbed.clusters.pop();
    let mut text = String::new();
    serialize_stats(&perturbed, &mut text);
    assert!(first_divergence(&reference, &text).is_some());
}

/// Extract one cell's serialized stats block from the full snapshot text.
fn expected_cell(full: &str, header: &str) -> String {
    let start = full
        .find(header)
        .unwrap_or_else(|| panic!("cell {header} missing from the golden snapshot"))
        + header.len();
    let rest = &full[start..];
    let end = rest.find("\n[cell").unwrap_or(rest.len());
    rest[..end].trim().to_string()
}

/// PR 8 pins, doubled: the epoch-batched dispatch plan and the pure-view
/// `StaticFollow` changed *which* cycles OB and RHOP may replicate
/// arithmetically (policy-stall epochs are now skippable for them), so
/// the busy-heavy 8-cluster gzip-1 cells of exactly those schemes are
/// re-run here in **both cover modes** — skipping forced off (every
/// cycle stepped through the real stage bodies) and forced on — and both
/// must serialize bit-for-bit to the committed snapshot cell. A
/// divergence in the skip=true leg with a clean skip=false leg convicts
/// the replication machinery specifically.
#[test]
fn gzip1_8cluster_ob_rhop_pin_in_both_cover_modes() {
    let points = spec2000_points();
    let point = points
        .iter()
        .find(|p| p.name == "gzip-1")
        .expect("gzip-1 is a suite point");
    let machine = preset(8);
    let full = std::fs::read_to_string(snapshot_path()).unwrap_or_else(|e| {
        panic!(
            "cannot read the golden snapshot {}: {e}\n\
             (create it with GOLDEN_REGEN=1 cargo test --test golden_stats)",
            snapshot_path().display()
        )
    });
    for config in Configuration::table3() {
        let name = config.name(8);
        if name != "OB" && name != "RHOP" {
            continue;
        }
        let header = format!("[cell point=gzip-1 scheme={name} clusters=8 uops={BUDGET}]");
        let expected = expected_cell(&full, &header);
        for skip in [false, true] {
            let mut session = SimSession::new(&machine);
            session.set_cycle_skipping(skip);
            let stats = run_point_on(&mut session, point, &config, &machine, BUDGET);
            let mut actual = String::new();
            serialize_stats(&stats, &mut actual);
            assert_eq!(
                expected,
                actual.trim(),
                "{name} at 8 clusters diverged from the pin (skip={skip})"
            );
        }
    }
}
