//! Chaos property tests over the resilient batch engine: random failpoint
//! schedules against a heterogeneous (point + trace) job queue on 1/2/8
//! worker threads. The invariants, whatever the schedule:
//!
//! 1. the batch never aborts, deadlocks or loses a worker — `run_resilient`
//!    always returns, with one [`CellOutcome`] per job;
//! 2. every job is accounted for exactly once in the [`BatchReport`]
//!    (`ok + failed == jobs`, attempt counts within the retry budget);
//! 3. every cell that *does* succeed is bit-identical to the fault-free
//!    reference — injected faults may kill a job, never skew it;
//! 4. a schedule of finite transient faults (`io@N`) with a sufficient
//!    retry budget heals completely: zero failed jobs, all bit-identical.
//!
//! Faults are armed through [`ScopedFaults`], so these cases are invisible
//! to concurrently running tests and serialized among themselves.

use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::prelude::*;
use virtclust::core::fault::{self, FaultKind, FaultSchedule, FaultSpec, ScopedFaults, Trigger};
use virtclust::core::{Configuration, EvalDriver, EvalJob, ResilientOptions};
use virtclust::sim::{RunLimits, SimStats};
use virtclust::uarch::MachineConfig;
use virtclust::workloads::spec2000_points;

fn corpus(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("results/traces")
        .join(file)
}

/// The queue every case runs: (generated point + committed-corpus trace)
/// × the five Table 3 schemes — both job kinds, so every failpoint site
/// (`trace.open`, `trace.rewind`, `trace.set_program`, `job.run`,
/// `session.reset`) is reachable.
fn jobs() -> Vec<EvalJob> {
    let gzip = spec2000_points()
        .into_iter()
        .find(|p| p.name == "gzip-1")
        .expect("suite point");
    let mut jobs = Vec::new();
    for config in Configuration::table3() {
        jobs.push(EvalJob::Point {
            point: gzip.clone(),
            config,
            uops: 700,
        });
        jobs.push(EvalJob::Trace {
            path: corpus("galgel.vctb"),
            config,
            limits: RunLimits::uops(900),
        });
    }
    jobs
}

/// The fault-free per-job stats, computed once (single worker, nothing
/// armed) and shared by every case as the bit-identity reference.
fn reference() -> &'static Vec<SimStats> {
    static REF: OnceLock<Vec<SimStats>> = OnceLock::new();
    REF.get_or_init(|| {
        let machine = MachineConfig::paper_2cluster();
        EvalDriver::new(&machine)
            .threads(1)
            .run(&jobs())
            .into_iter()
            .map(|o| o.stats.expect("fault-free corpus run"))
            .collect()
    })
}

fn spec_strategy() -> impl Strategy<Value = FaultSpec> {
    let kind = prop_oneof![
        Just(FaultKind::Io),
        Just(FaultKind::Corrupt),
        Just(FaultKind::Panic),
    ];
    let trigger = prop_oneof![
        (1u64..8).prop_map(Trigger::Nth),
        (2u64..5).prop_map(Trigger::Every),
        // Moderate p so cases exercise both faulted and clean jobs.
        ((5u64..50), (1u64..1_000_000)).prop_map(|(p, seed)| Trigger::Prob {
            p: p as f64 / 100.0,
            seed,
        }),
    ];
    (kind, trigger).prop_map(|(kind, trigger)| FaultSpec { kind, trigger })
}

/// An optional spec, biased toward `None` so most schedules arm only a
/// couple of the five sites.
fn maybe_spec() -> impl Strategy<Value = Option<FaultSpec>> {
    prop_oneof![
        Just(None),
        Just(None),
        spec_strategy().prop_map(Some),
        spec_strategy().prop_map(Some),
    ]
}

fn schedule_of(specs: [Option<FaultSpec>; 5]) -> FaultSchedule {
    let mut schedule = FaultSchedule::new();
    for (site, spec) in fault::SITES.into_iter().zip(specs) {
        if let Some(spec) = spec {
            schedule = schedule.with(site, spec);
        }
    }
    schedule
}

proptest! {
    // Each case runs a 10-job batch (and the first pays the shared
    // reference run); keep the count low.
    #![proptest_config(ProptestConfig::with_cases(10))]

    // Invariants 1–3: any schedule, any thread count, any retry budget.
    #[test]
    fn chaos_never_aborts_loses_jobs_or_skews_survivors(
        s0 in maybe_spec(),
        s1 in maybe_spec(),
        s2 in maybe_spec(),
        s3 in maybe_spec(),
        s4 in maybe_spec(),
        threads_idx in 0usize..3,
        max_retries in 0u32..3,
        retry_panics in 0u8..2,
    ) {
        let reference = reference();
        let jobs = jobs();
        let machine = MachineConfig::paper_2cluster();
        let threads = [1, 2, 8][threads_idx];
        let schedule = schedule_of([s0, s1, s2, s3, s4]);
        let opts = ResilientOptions::default()
            .retries(max_retries)
            .retry_panics(retry_panics == 1);

        let guard = ScopedFaults::arm(&schedule);
        let (outcomes, report) = EvalDriver::new(&machine)
            .threads(threads)
            .run_resilient(&jobs, &opts, |_, _| {});
        drop(guard);

        // 1. the batch returned with one outcome per job.
        prop_assert_eq!(outcomes.len(), jobs.len());
        prop_assert_eq!(report.attempts.len(), jobs.len());

        // 2. exact accounting: ok + failed covers every job once; no
        //    cancellations or deadlines were configured; attempts stay
        //    within the budget and every job ran at least once.
        prop_assert_eq!(
            report.ok.get() + report.failed.get(),
            jobs.len() as u64,
            "schedule {}",
            schedule
        );
        prop_assert_eq!(report.cancelled.get(), 0);
        prop_assert_eq!(report.deadline_exceeded.get(), 0);
        for (i, &attempts) in report.attempts.iter().enumerate() {
            prop_assert!(
                (1..=max_retries + 1).contains(&attempts),
                "job {i}: {attempts} attempts against a budget of {} (schedule {})",
                max_retries + 1,
                schedule
            );
        }

        // 3. survivors are bit-identical to the fault-free reference.
        for (i, outcome) in outcomes.iter().enumerate() {
            if let Ok(stats) = &outcome.stats {
                prop_assert_eq!(
                    stats,
                    &reference[i],
                    "job {} diverged under schedule {}",
                    i,
                    schedule
                );
            }
        }
    }

    // Invariant 4: finite transient faults + enough retries = full
    // recovery. `io@N` fires at most once per site, so four armed sites
    // inject at most four faults total; a budget of four retries per job
    // covers even the worst case of one job absorbing all of them.
    // (`session.reset` stays unarmed: a fault during quarantine rebuild
    // deliberately fails the job rather than looping.)
    #[test]
    fn finite_transient_faults_heal_to_a_clean_batch(
        n0 in 1u64..6,
        n1 in 1u64..6,
        n2 in 1u64..6,
        n3 in 1u64..6,
        threads_idx in 0usize..3,
    ) {
        let reference = reference();
        let jobs = jobs();
        let machine = MachineConfig::paper_2cluster();
        let threads = [1, 2, 8][threads_idx];
        let io_at = |n| FaultSpec { kind: FaultKind::Io, trigger: Trigger::Nth(n) };
        let schedule = FaultSchedule::new()
            .with(fault::TRACE_OPEN, io_at(n0))
            .with(fault::TRACE_REWIND, io_at(n1))
            .with(fault::TRACE_SET_PROGRAM, io_at(n2))
            .with(fault::JOB_RUN, io_at(n3));
        let opts = ResilientOptions::default().retries(4);

        let guard = ScopedFaults::arm(&schedule);
        let (outcomes, report) = EvalDriver::new(&machine)
            .threads(threads)
            .run_resilient(&jobs, &opts, |_, _| {});
        drop(guard);

        prop_assert!(
            !report.degraded(),
            "transient-only chaos left failures: {} (schedule {})",
            report.summary(),
            schedule
        );
        prop_assert_eq!(report.ok.get(), jobs.len() as u64);
        prop_assert_eq!(report.panics.get(), 0);
        for (i, outcome) in outcomes.iter().enumerate() {
            let stats = outcome.stats.as_ref().expect("healed batch");
            prop_assert_eq!(stats, &reference[i], "job {} after retry", i);
        }
    }
}
