//! Property tests for the observability tentpole (`virtclust-obs`): an
//! interval observer attached to a [`SimSession`] must be a pure reader.
//!
//! Two contracts, over random hinted programs × all eight schemes ×
//! 2/4/8-cluster machines × cycle skipping on/off × reused and fresh
//! sessions:
//!
//! 1. **Exact reconstruction** — summing the per-interval [`SimStats`]
//!    deltas the observer receives reproduces the run's final stats
//!    *exactly* (struct equality is field-by-field, and
//!    `delta_since`/`accumulate` destructure exhaustively, so a new stats
//!    field cannot silently escape the telemetry). The intervals tile
//!    `[0, cycles)` with no gap or overlap.
//! 2. **Zero perturbation** — the observed run's stats are bit-identical
//!    to an unobserved run of the same cell, and the emitted interval
//!    stream is bit-identical whether cycles were skipped arithmetically
//!    or single-stepped (skipped spans are attributed across interval
//!    boundaries in closed form).

use proptest::prelude::*;
use virtclust::core::Configuration;
use virtclust::obs::{IntervalSample, MemSink, Shared};
use virtclust::sim::{RunLimits, SimSession, SimStats};
use virtclust::uarch::{
    ArchReg, DynUop, MachineConfig, OpClass, Program, Region, SliceTrace, StaticInst, SteerHint,
};

/// Strategy: a random static instruction over a small register window
/// (mirrors `tests/properties.rs`).
fn inst_strategy() -> impl Strategy<Value = StaticInst> {
    let reg = (0u8..8).prop_map(ArchReg::int);
    let freg = (0u8..8).prop_map(ArchReg::flt);
    prop_oneof![
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| StaticInst::new(
            OpClass::IntAlu,
            &[a, b],
            Some(d)
        )),
        (freg.clone(), freg.clone(), freg.clone()).prop_map(|(d, a, b)| StaticInst::new(
            OpClass::FpAdd,
            &[a, b],
            Some(d)
        )),
        (reg.clone(), reg.clone()).prop_map(|(d, a)| StaticInst::new(OpClass::Load, &[a], Some(d))),
        (reg.clone(), reg.clone()).prop_map(|(a, v)| StaticInst::new(
            OpClass::Store,
            &[a, v],
            None
        )),
        reg.clone()
            .prop_map(|c| StaticInst::new(OpClass::Branch, &[c], None)),
    ]
}

fn hint_strategy() -> impl Strategy<Value = SteerHint> {
    prop_oneof![
        Just(SteerHint::None),
        (0u8..4).prop_map(|cluster| SteerHint::Static { cluster }),
        (0u8..8).prop_map(|bits| SteerHint::Vc {
            vc: bits >> 1,
            leader: bits & 1 == 1,
        }),
    ]
}

fn region_strategy(max_len: usize) -> impl Strategy<Value = Region> {
    prop::collection::vec(inst_strategy(), 1..max_len).prop_map(|insts| {
        let mut r = Region::new(0, "obs-prop");
        for i in insts {
            r.push(i);
        }
        r
    })
}

/// Far-striding address model: misses every cache level, maximising the
/// idle spans the skip path (and hence the boundary-chunked interval
/// attribution) has to account for.
fn expand(region: &Region, iters: usize) -> Vec<DynUop> {
    let mut uops = Vec::new();
    let mut seq = 0;
    for it in 0..iters {
        seq = virtclust::uarch::trace::expand_region(
            region,
            seq,
            &mut uops,
            |s, _| (s.wrapping_mul(4096)) % (1 << 30),
            |s, _| !(s + it as u64).is_multiple_of(3),
        );
    }
    uops
}

/// Run one cell on `session` with a fresh `MemSink` interval observer
/// attached; return the run's stats, the emitted interval stream and the
/// `on_finish` payload. The observer is detached afterwards so the session
/// can be reused bare.
fn observed(
    session: &mut SimSession,
    machine: &MachineConfig,
    uops: &[DynUop],
    config: &Configuration,
    every: u64,
    skip: bool,
) -> (SimStats, Vec<IntervalSample<SimStats>>, (SimStats, u64)) {
    let handle = Shared::new(MemSink::<SimStats>::new());
    session.set_cycle_skipping(skip);
    session.attach_observer(every, Box::new(handle.clone()));
    let mut trace = SliceTrace::new(uops);
    let mut policy = config.make_policy();
    let stats = session.simulate(
        machine,
        &mut trace,
        policy.as_mut(),
        &RunLimits::unlimited(),
    );
    session.detach_observer();
    let (intervals, finished) = handle.with(|sink| {
        (
            sink.intervals.clone(),
            sink.finished.clone().expect("on_finish fires at run end"),
        )
    });
    (stats, intervals, finished)
}

/// Run the same cell bare (no observer) on a fresh session.
fn unobserved(
    machine: &MachineConfig,
    uops: &[DynUop],
    config: &Configuration,
    skip: bool,
) -> SimStats {
    let mut session = SimSession::new(machine);
    session.set_cycle_skipping(skip);
    let mut trace = SliceTrace::new(uops);
    let mut policy = config.make_policy();
    session.simulate(
        machine,
        &mut trace,
        policy.as_mut(),
        &RunLimits::unlimited(),
    )
}

proptest! {
    // Each case simulates 8 schemes × 3 machines × (2 skip modes × 3
    // runs), so a handful of cases already covers hundreds of cells; the
    // debug build's skip-mirror and wakeup cross-checks run inside every
    // one of them.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn interval_deltas_sum_to_final_stats(
        region in region_strategy(24),
        hints in prop::collection::vec(hint_strategy(), 24..25),
        iters in 1usize..4,
        every in prop_oneof![Just(1u64), Just(7), Just(64), Just(1000)],
    ) {
        let mut region = region;
        for (inst, hint) in region.insts.iter_mut().zip(hints) {
            inst.hint = hint;
        }
        let schemes = [
            Configuration::Op,
            Configuration::OpParallel,
            Configuration::OneCluster,
            Configuration::Ob,
            Configuration::Rhop,
            Configuration::Vc { num_vcs: 2 },
            Configuration::ModN { slice: 3 },
            Configuration::OpNoStall,
        ];
        let mut reused = SimSession::new(&MachineConfig::default());
        for clusters in [2usize, 4, 8] {
            let machine = MachineConfig::default().with_clusters(clusters);
            for config in schemes {
                let mut program = Program::new("obs-prop");
                program.add_region(region.clone());
                config
                    .software_pass(clusters as u32)
                    .apply(&mut program, &machine.latencies);
                let uops = expand(&program.regions[0], iters);
                let label = |skip: bool| {
                    format!(
                        "{} on {} clusters, every={}, skip={}",
                        config.name(clusters as u32), clusters, every, skip
                    )
                };
                let mut streams: Vec<Vec<IntervalSample<SimStats>>> = Vec::new();
                for skip in [false, true] {
                    let (stats, intervals, finished) =
                        observed(&mut reused, &machine, &uops, &config, every, skip);

                    // Contract 1: the intervals tile [0, cycles) exactly
                    // and their deltas sum to the final stats field by
                    // field.
                    let mut sum = SimStats::default();
                    let mut prev_end = 0u64;
                    for s in &intervals {
                        prop_assert_eq!(s.start_cycle, prev_end, "{}", label(skip));
                        prop_assert!(s.end_cycle > s.start_cycle, "{}", label(skip));
                        prop_assert_eq!(
                            s.delta.cycles, s.end_cycle - s.start_cycle,
                            "{}", label(skip)
                        );
                        prev_end = s.end_cycle;
                        sum.accumulate(&s.delta);
                    }
                    prop_assert_eq!(prev_end, stats.cycles, "{}", label(skip));
                    prop_assert_eq!(&sum, &stats, "{}", label(skip));
                    prop_assert_eq!(&finished.0, &stats, "{}", label(skip));
                    prop_assert_eq!(finished.1, stats.cycles, "{}", label(skip));

                    // Contract 2a: a fresh observed session and a bare
                    // unobserved session produce the same stats — and the
                    // fresh session emits the same interval stream.
                    let (fresh_stats, fresh_intervals, _) = observed(
                        &mut SimSession::new(&machine), &machine, &uops, &config, every, skip,
                    );
                    prop_assert_eq!(&fresh_stats, &stats, "fresh: {}", label(skip));
                    prop_assert_eq!(&fresh_intervals, &intervals, "fresh: {}", label(skip));
                    let bare = unobserved(&machine, &uops, &config, skip);
                    prop_assert_eq!(&bare, &stats, "unobserved: {}", label(skip));

                    streams.push(intervals);
                }
                // Contract 2b: the emitted stream is bit-identical whether
                // idle spans were skipped or single-stepped.
                prop_assert_eq!(&streams[0], &streams[1], "skip-on vs skip-off: {}", label(true));
            }
        }
    }
}
