//! Targeted invalidation-edge tests for the epoch-batched dispatch plan
//! (the PR 8 tentpole): a [`SimSession`] memoizes a *pure* policy's
//! stall classification for the stalled front micro-op and replays it
//! until a generation-tracked input changes. Each test constructs a
//! workload that forces one specific invalidation edge mid-epoch, then
//! pins bit-identity against the per-cycle oracle (the same policy
//! behind an impurity shim, which disables the memo entirely) while
//! asserting — via the stats — that the edge actually fired. In debug
//! builds (how `cargo test` runs this) the in-session plan mirror
//! additionally recomputes every consumed memo from scratch.

use virtclust::core::Configuration;
use virtclust::obs::{MemSink, Shared};
use virtclust::sim::{RunLimits, SimSession, SimStats, SteerDecision, SteerView, SteeringPolicy};
use virtclust::uarch::{
    ArchReg, DynUop, MachineConfig, Program, Region, RegionBuilder, SliceTrace,
};

/// Delegates decisions but keeps the trait-default `steer_is_pure() ==
/// false`: the session then takes the plain per-cycle path (no dispatch
/// plan, no policy-dependent idle spans), which is the oracle the memo
/// must match bit for bit.
struct ImpureShim(Box<dyn SteeringPolicy>);
impl SteeringPolicy for ImpureShim {
    fn name(&self) -> String {
        self.0.name()
    }
    fn steer(&mut self, uop: &DynUop, view: &SteerView<'_>) -> SteerDecision {
        self.0.steer(uop, view)
    }
    fn reset(&mut self) {
        self.0.reset()
    }
}

fn r(i: u8) -> ArchReg {
    ArchReg::int(i)
}

/// Stall cycles of the kinds the dispatch plan memoizes: the post-policy
/// outcomes (policy stall, IQ/RF/copy-queue full). OP's stall-over-steer
/// reports a tiny issue queue as `PolicyStall` (the occupancy threshold
/// trips before the queue literally fills); StaticFollow schemes report
/// `IqFull` — either way the epoch is plan-covered.
fn post_policy_stalls(stats: &SimStats) -> u64 {
    use virtclust::sim::StallReason as R;
    [R::PolicyStall, R::IqFull, R::RfFull, R::CopyQueueFull]
        .iter()
        .map(|r| stats.dispatch_stalls[r.index()])
        .sum()
}

/// Expand `region` `iters` times; every `mispredict_every`-th branch
/// (1-based, 0 = never) is marked mispredicted.
fn expand(region: &Region, iters: usize, mispredict_every: u64) -> Vec<DynUop> {
    let mut uops = Vec::new();
    let mut seq = 0;
    let mut branches = 0u64;
    for _ in 0..iters {
        seq = virtclust::uarch::trace::expand_region(
            region,
            seq,
            &mut uops,
            |s, _| 0x1000 + (s % 64) * 8,
            |_, _| {
                branches += 1;
                mispredict_every == 0 || !branches.is_multiple_of(mispredict_every)
            },
        );
    }
    uops
}

/// Run one cell twice — memoized (pure policy as-is) and per-cycle
/// (behind [`ImpureShim`]) — on fresh sessions and assert full
/// `SimStats` equality, returning the stats for edge-specific asserts.
fn memo_vs_per_cycle(machine: &MachineConfig, config: Configuration, uops: &[DynUop]) -> SimStats {
    let memo = {
        let mut session = SimSession::new(machine);
        let mut trace = SliceTrace::new(uops);
        let mut policy = config.make_policy();
        session.simulate(
            machine,
            &mut trace,
            policy.as_mut(),
            &RunLimits::unlimited(),
        )
    };
    let plain = {
        let mut session = SimSession::new(machine);
        let mut trace = SliceTrace::new(uops);
        let mut policy = ImpureShim(config.make_policy());
        session.simulate(machine, &mut trace, &mut policy, &RunLimits::unlimited())
    };
    assert_eq!(
        memo, plain,
        "memoized dispatch diverged from per-cycle re-derivation"
    );
    memo
}

/// Compile `region` for `config` on `machine` (the software schemes need
/// their pass to run before expansion).
fn compile(region: Region, config: Configuration, machine: &MachineConfig) -> Region {
    let mut program = Program::new("plan-memo");
    program.add_region(region);
    config
        .software_pass(machine.num_clusters as u32)
        .apply(&mut program, &machine.latencies);
    program.regions.remove(0)
}

/// A busy-bit flip mid-epoch must invalidate the plan: dispatch stalls
/// on a full issue queue (a post-policy outcome the memo covers), then
/// issue drains an entry — flipping the occupancy summary's busy bit and
/// bumping `sum_gen` — and the very next dispatch decision must be
/// re-derived, not replayed. A long serial dependence chain into a tiny
/// IQ makes the queue fill (nothing issues while the chain head
/// executes) and drain one entry at a time.
#[test]
fn busy_bit_flip_mid_epoch_invalidates_plan() {
    let machine = MachineConfig {
        iq_int_entries: 4,
        rob_entries: 64,
        ..Default::default()
    };
    let mut b = RegionBuilder::new(0, "serial");
    for _ in 0..24 {
        b = b.mul(r(1), r(1), r(2)); // serial chain: one issues per latency
    }
    let region = b.build();
    for config in [Configuration::Op, Configuration::Ob, Configuration::Rhop] {
        let compiled = compile(region.clone(), config, &machine);
        let uops = expand(&compiled, 4, 0);
        let stats = memo_vs_per_cycle(&machine, config, &uops);
        assert!(
            post_policy_stalls(&stats) > 0,
            "{:?}: workload must hit post-policy stalls (the memoized kinds) \
             to exercise the edge",
            config
        );
        assert!(stats.clusters.iter().map(|c| c.issued).sum::<u64>() > 0);
    }
}

/// A branch-mispredict squash while a plan memo is live must discard it
/// with the squashed micro-ops: the post-squash front micro-op has a
/// different sequence number, so replaying the stalled predecessor's
/// memo would classify the wrong micro-op. Mispredicted branches are
/// interleaved with the same IQ-filling serial chain so squashes land
/// while dispatch is stalled mid-plan.
#[test]
fn squash_mid_plan_discards_the_memo() {
    let machine = MachineConfig {
        iq_int_entries: 4,
        ..Default::default()
    };
    let mut b = RegionBuilder::new(0, "squashy");
    for _ in 0..6 {
        b = b.mul(r(1), r(1), r(2)).branch(r(1));
    }
    let region = b.build();
    for config in [Configuration::Op, Configuration::Ob, Configuration::Rhop] {
        let compiled = compile(region.clone(), config, &machine);
        let uops = expand(&compiled, 6, 2); // every 2nd branch mispredicts
        let stats = memo_vs_per_cycle(&machine, config, &uops);
        assert!(
            stats.mispredicts > 0,
            "{:?}: workload must squash to exercise the edge",
            config
        );
        assert!(
            stats.dispatch_stalls.iter().sum::<u64>() > 0,
            "{:?}: workload must stall dispatch to have a live plan",
            config
        );
    }
}

/// An interval-observer boundary landing inside a memoized epoch must
/// not perturb the plan (the observer is a pure reader): with a 16-cycle
/// interval, boundaries fall inside IQ-full stall epochs, and both the
/// final stats and the emitted interval deltas must be bit-identical to
/// the unmemoized run.
#[test]
fn observer_boundary_inside_epoch_is_unperturbed() {
    let machine = MachineConfig {
        iq_int_entries: 4,
        ..Default::default()
    };
    let mut b = RegionBuilder::new(0, "observed");
    for _ in 0..24 {
        b = b.mul(r(1), r(1), r(2));
    }
    let region = b.build();
    let config = Configuration::Op;
    let compiled = compile(region, config, &machine);
    let uops = expand(&compiled, 4, 0);

    let run = |policy: &mut dyn SteeringPolicy| {
        let mut session = SimSession::new(&machine);
        let handle = Shared::new(MemSink::<SimStats>::new());
        session.attach_observer(16, Box::new(handle.clone()));
        let mut trace = SliceTrace::new(&uops);
        let stats = session.simulate(&machine, &mut trace, policy, &RunLimits::unlimited());
        session.detach_observer();
        let intervals = handle.with(|sink| sink.intervals.clone());
        (stats, intervals)
    };
    let (memo_stats, memo_intervals) = run(config.make_policy().as_mut());
    let (plain_stats, plain_intervals) = run(&mut ImpureShim(config.make_policy()));
    assert_eq!(memo_stats, plain_stats, "observed stats diverged");
    assert_eq!(
        memo_intervals.len(),
        plain_intervals.len(),
        "interval streams diverged in length"
    );
    for (m, p) in memo_intervals.iter().zip(&plain_intervals) {
        assert_eq!(m.start_cycle, p.start_cycle);
        assert_eq!(m.end_cycle, p.end_cycle);
        assert_eq!(m.delta, p.delta, "interval delta diverged");
    }
    assert!(
        post_policy_stalls(&memo_stats) > 0,
        "workload must hit post-policy stalls so boundaries land inside epochs"
    );
}
