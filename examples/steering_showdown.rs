//! Run all five Table 3 steering configurations on one benchmark point and
//! print the comparison the paper's Figure 5 makes per trace.
//!
//! ```sh
//! cargo run --release --example steering_showdown [point-name]
//! ```
//!
//! Defaults to `galgel`, the paper's best case for clustering.

use virtclust::core::{run_point, Configuration};
use virtclust::uarch::MachineConfig;
use virtclust::workloads::spec2000_points;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "galgel".into());
    let points = spec2000_points();
    let Some(point) = points.iter().find(|p| p.name == name) else {
        eprintln!("unknown point `{name}`; available:");
        for p in &points {
            eprint!("{} ", p.name);
        }
        eprintln!();
        std::process::exit(1);
    };

    let machine = MachineConfig::paper_2cluster();
    let budget = 50_000;

    println!(
        "point {} ({:?} suite), 2-cluster machine, {budget} uops\n",
        point.name, point.suite
    );
    println!(
        "{:<14} {:>9} {:>7} {:>11} {:>12} {:>10}",
        "config", "cycles", "IPC", "copies/kuop", "alloc-stalls", "vs OP (%)"
    );

    let base = run_point(point, &Configuration::Op, &machine, budget);
    for config in Configuration::table3() {
        let stats = if config == Configuration::Op {
            base.clone()
        } else {
            run_point(point, &config, &machine, budget)
        };
        let slowdown = (stats.cycles as f64 / base.cycles as f64 - 1.0) * 100.0;
        println!(
            "{:<14} {:>9} {:>7.3} {:>11.1} {:>12} {:>+10.2}",
            config.name(machine.num_clusters as u32),
            stats.cycles,
            stats.ipc(),
            stats.copies_per_kuop(),
            stats.allocation_stalls(),
            slowdown
        );
    }
}
