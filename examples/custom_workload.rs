//! Bring your own kernel: write a region with `RegionBuilder`, run the
//! whole pipeline — DDG analysis, virtual-cluster partitioning, chain
//! identification, trace expansion, cycle-level simulation — and inspect
//! each stage. This is the downstream-user API tour.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use virtclust::compiler::{SoftwarePass, VcConfig};
use virtclust::ddg::{Criticality, Ddg};
use virtclust::sim::{simulate, RunLimits};
use virtclust::steer::VcMapper;
use virtclust::uarch::{ArchReg, LatencyModel, MachineConfig, Program, RegionBuilder, VecTrace};

fn main() {
    let r = ArchReg::int;
    let f = ArchReg::flt;

    // A hand-written kernel: an integer recurrence, an independent FP
    // stream, and a store that ties them together.
    let region = RegionBuilder::new(0, "my_kernel")
        .alu(r(2), &[r(2), r(0)]) // i += 1           (recurrence)
        .load(r(3), r(2)) //          x = a[i]
        .fmul(f(1), f(1), f(0)) //    acc *= c        (independent FP chain)
        .fadd(f(2), f(1), f(0)) //    t = acc + c
        .alu(r(4), &[r(3), r(2)]) //  y = x + i
        .store(r(4), r(3)) //         b[y] = x
        .branch(r(2)) //              loop
        .build();
    println!("== static region ==\n{region}");

    // Stage 1: dependence analysis.
    let lat = LatencyModel::default();
    let ddg = Ddg::from_region(&region, &lat);
    let crit = Criticality::compute(&ddg);
    println!(
        "== criticality (critical path = {} cycles) ==",
        crit.cp_length
    );
    for i in 0..ddg.n() as u32 {
        println!(
            "  inst {i}: depth={} height={} slack={}{}",
            crit.depth[i as usize],
            crit.height[i as usize],
            crit.slack(i),
            if crit.is_critical(i) {
                "  <- critical"
            } else {
                ""
            }
        );
    }

    // Stage 2: the virtual-cluster pass annotates the program.
    let mut program = Program::new("custom");
    program.add_region(region);
    SoftwarePass::Vc(VcConfig::new(2)).apply(&mut program, &lat);
    println!(
        "\n== after VC partitioning (vc ids + chain leaders) ==\n{}",
        program.regions[0]
    );

    // Stage 3: expand a trace (200 iterations) and simulate.
    let mut uops = Vec::new();
    let mut seq = 0;
    for it in 0..200u64 {
        seq = virtclust::uarch::trace::expand_region(
            &program.regions[0],
            seq,
            &mut uops,
            |s, _| 0x4000 + (s % 512) * 8,
            |_, _| it != 199, // loop branch: taken until the last iteration
        );
    }
    let mut trace = VecTrace::new(uops);
    let mut policy = VcMapper::new(2);
    let stats = simulate(
        &MachineConfig::paper_2cluster(),
        &mut trace,
        &mut policy,
        &RunLimits::unlimited(),
    );
    println!("== simulation ==\n  {}", stats.summary());
    println!(
        "  cluster uops: {:?}  (mapper remaps: {}, migrations: {})",
        stats
            .clusters
            .iter()
            .map(|c| c.dispatched)
            .collect::<Vec<_>>(),
        policy.remaps(),
        policy.migrations()
    );
}
