//! Quickstart: compile a synthetic benchmark with the virtual-cluster pass
//! and compare hybrid VC steering against the hardware-only OP baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use virtclust::core::{run_point, Configuration};
use virtclust::uarch::MachineConfig;
use virtclust::workloads::spec2000_points;

fn main() {
    let machine = MachineConfig::paper_2cluster();
    let points = spec2000_points();
    let point = points
        .iter()
        .find(|p| p.name == "gzip-1")
        .expect("suite point");

    println!("benchmark point : {}", point.name);
    println!(
        "machine         : {} clusters (paper Table 2)\n",
        machine.num_clusters
    );

    let budget = 50_000;
    let op = run_point(point, &Configuration::Op, &machine, budget);
    let vc = run_point(point, &Configuration::Vc { num_vcs: 2 }, &machine, budget);

    println!("OP (hardware-only, sequential dependence steering):");
    println!("  {}", op.summary());
    println!("VC (hybrid virtual-cluster steering):");
    println!("  {}", vc.summary());

    let slowdown = (vc.cycles as f64 / op.cycles as f64 - 1.0) * 100.0;
    println!(
        "\nVC runs within {slowdown:.2}% of the hardware-only baseline while needing\n\
         only a {}-entry mapping table and per-cluster counters instead of\n\
         dependence checking and a serialized vote unit (paper Table 1).",
        2
    );
}
