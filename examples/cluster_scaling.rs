//! Scalability (paper Sec. 5.4): 2 → 4 clusters, and why VC(2→4) beats
//! VC(4→4) — partitioning into more virtual clusters spreads critical
//! dependent pairs, which the runtime mapper then pays for in copies.
//!
//! ```sh
//! cargo run --release --example cluster_scaling [point-name]
//! ```

use virtclust::core::{run_point, Configuration};
use virtclust::uarch::MachineConfig;
use virtclust::workloads::spec2000_points;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "crafty".into());
    let points = spec2000_points();
    let point = points.iter().find(|p| p.name == name).unwrap_or_else(|| {
        eprintln!("unknown point `{name}`");
        std::process::exit(1);
    });
    let budget = 50_000;

    for clusters in [2usize, 4] {
        let machine = MachineConfig::default().with_clusters(clusters);
        println!("== {clusters}-cluster machine ==");
        let base = run_point(point, &Configuration::Op, &machine, budget);
        println!(
            "  {:<10} cycles={:<8} ipc={:.3} copies/kuop={:.1}",
            "OP",
            base.cycles,
            base.ipc(),
            base.copies_per_kuop()
        );
        let vc_configs: &[u32] = if clusters == 2 { &[2] } else { &[4, 2] };
        for &num_vcs in vc_configs {
            let stats = run_point(point, &Configuration::Vc { num_vcs }, &machine, budget);
            let slowdown = (stats.cycles as f64 / base.cycles as f64 - 1.0) * 100.0;
            println!(
                "  {:<10} cycles={:<8} ipc={:.3} copies/kuop={:.1} vs OP {slowdown:+.2}%",
                format!("VC({num_vcs}->{clusters})"),
                stats.cycles,
                stats.ipc(),
                stats.copies_per_kuop(),
            );
        }
        println!();
    }
    println!(
        "Paper Sec. 5.4: VC(4->4) generates ~28% more copies than VC(2->4),\n\
         because pairs of critical dependent instructions that belong together\n\
         get spread across virtual clusters and then mapped apart at run time."
    );
}
