//! The paper's Sec. 2.1 motivating example, executed on the real simulator:
//! why hardware steering must be *sequential* to avoid copies, and why that
//! serialization is the complexity problem the hybrid scheme removes.
//!
//! ```sh
//! cargo run --release --example sec21_motivation
//! ```

use virtclust::sim::{Machine, RunLimits};
use virtclust::steer::OccupancyAware;
use virtclust::uarch::{ArchReg, MachineConfig, RegionBuilder, SliceTrace};

fn main() {
    let r = ArchReg::int;
    // I1: R1 <- R1 + R2 ; I2: R3 <- Load(R1) ; I3: R4 <- Load(R3)
    let region = RegionBuilder::new(0, "sec2.1")
        .alu(r(1), &[r(1), r(2)])
        .load(r(3), r(1))
        .load(r(4), r(3))
        .build();
    println!("{region}");

    let mut uops = Vec::new();
    virtclust::uarch::trace::expand_region(&region, 0, &mut uops, |_, _| 0x100, |_, _| true);

    for (label, mut policy) in [
        (
            "sequential steering (each decision sees the previous one)",
            OccupancyAware::new(),
        ),
        (
            "parallel steering (stale bundle-entry locations)",
            OccupancyAware::parallel(),
        ),
    ] {
        let mut trace = SliceTrace::new(&uops);
        let mut machine = Machine::new(&MachineConfig::paper_2cluster());
        // Initial placements (mirrored form of the paper's): r1 lives in
        // cluster 1; r2 and r3 live in cluster 0.
        machine.place_register(r(1), 1);
        machine.place_register(r(2), 0);
        machine.place_register(r(3), 0);
        let stats = machine.run(&mut trace, &mut policy, &RunLimits::unlimited());
        println!("{label}:");
        println!(
            "  copies generated = {}, cycles = {}\n",
            stats.copies_generated, stats.cycles
        );
    }

    println!(
        "The 2-copy difference is the paper's point: precise steering requires\n\
         knowing where the *previous* instruction just went, serializing the\n\
         steering logic across the decode bundle. The hybrid VC scheme removes\n\
         that serialization entirely — followers only read a mapping table."
    );
}
