//! Quick profiling probe: wall time of memory-bound suite points plus a
//! synthetic LSQ-pressure kernel (deep queue + port-saturated load burst:
//! every queued load re-checks the LSQ each cycle until it wins a port).
use std::time::Instant;
use virtclust::core::{run_point, Configuration};
use virtclust::sim::{simulate, RunLimits};
use virtclust::steer::OccupancyAware;
use virtclust::uarch::{ArchReg, MachineConfig, RegionBuilder, SliceTrace};
use virtclust::workloads::spec2000_points;

fn lsq_pressure(uops: usize) -> Vec<virtclust::uarch::DynUop> {
    let r = ArchReg::int;
    // Window shape: a serial L2-missing load throttles commit, then an
    // interleaved burst of independent L1-hitting loads and stores fills
    // the LSQ. The loads outnumber the cache's ports, so they sit in the
    // memory stage re-checking against the deep store population.
    let mut b = RegionBuilder::new(0, "lsqstress").load(r(1), r(1));
    for i in 0..60u8 {
        b = b
            .store(r(8 + i % 4), r(12 + i % 4))
            .load(r(2 + i % 4), r(6));
    }
    let region = b.build();
    let mut out = Vec::new();
    let mut seq = 0u64;
    while out.len() < uops {
        seq = virtclust::uarch::trace::expand_region(
            &region,
            seq,
            &mut out,
            |s, id| {
                if id.index == 0 {
                    0x4000_0000 + s * 8192 // serial head load: always misses
                } else if id.index % 2 == 1 {
                    0x2000 + (s % 96) * 64 + (s % 8) * 8 // stores: 96 lines
                } else {
                    0x800 + (s % 8) * 64 // burst loads: L1-resident lines
                }
            },
            |_, _| true,
        );
    }
    out
}

fn main() {
    let machine = MachineConfig::paper_2cluster();
    for name in ["mcf", "gzip-1"] {
        let point = spec2000_points()
            .into_iter()
            .find(|p| p.name == name)
            .unwrap();
        let t0 = Instant::now();
        let stats = run_point(&point, &Configuration::Op, &machine, 100_000);
        println!("{name}: cycles={} wall={:?}", stats.cycles, t0.elapsed());
    }
    let uops = lsq_pressure(60_000);
    let t0 = Instant::now();
    let mut trace = SliceTrace::new(&uops);
    let stats = simulate(
        &machine,
        &mut trace,
        &mut OccupancyAware::new(),
        &RunLimits::unlimited(),
    );
    println!(
        "lsq-pressure: cycles={} ipc={:.3} fwd={} l2miss={} wall={:?} ({:.0} uops/s)",
        stats.cycles,
        stats.ipc(),
        stats.store_forwards,
        stats.l2_misses,
        t0.elapsed(),
        stats.committed_uops as f64 / t0.elapsed().as_secs_f64(),
    );
}
