//! Trace round trip: import a hand-written kernel, expand it, persist the
//! dynamic stream in both codecs, read it back losslessly, and replay a
//! recorded SPEC-like point under two steering schemes over the *same*
//! frozen stream.
//!
//! ```sh
//! cargo run --release --example trace_roundtrip
//! ```

use virtclust::core::{record_point, replay_trace, run_point, Configuration};
use virtclust::sim::RunLimits;
use virtclust::trace::{parse_kernel, Codec, TraceReader, TraceWriter};
use virtclust::uarch::MachineConfig;
use virtclust::workloads::{spec2000_points, KernelParams, TraceExpander};

const KERNEL: &str = "\
# dot product, one element per iteration
program dotprod
region loop
i ld f0 = r1
i ld f1 = r2
i fmul f2 = f0 f1
i fadd f3 = f3 f2
i alu r1 = r1 r4
i alu r2 = r2 r4
i br r3
";

fn main() {
    let dir = std::env::temp_dir().join("virtclust-trace-roundtrip");
    std::fs::create_dir_all(&dir).expect("temp dir");

    // 1. Import a textual kernel — no generator involved.
    let program = parse_kernel(KERNEL).expect("kernel parses");
    println!(
        "imported `{}`: {} region(s), {} static uops",
        program.name,
        program.regions.len(),
        program.static_len()
    );

    // 2. Expand it with the synthetic dynamic model and capture the stream
    //    in both codecs.
    let params = KernelParams::base_fp();
    let n = 50_000u64;
    let mut uops = Vec::with_capacity(n as usize);
    TraceExpander::new(&program, &params, 42)
        .capture(n, |u| {
            uops.push(*u);
            Ok::<(), ()>(())
        })
        .unwrap();
    for codec in [Codec::Text, Codec::Binary] {
        let path = dir.join(format!("dotprod.{}", codec.extension()));
        let mut w = TraceWriter::create(&path, &program, codec, Some(n)).expect("create trace");
        for u in &uops {
            w.write_uop(u).expect("write");
        }
        w.finish().expect("finish");

        // 3. Read it back — the stream must round-trip exactly.
        let mut reader = TraceReader::open(&path).expect("open");
        assert_eq!(reader.program(), &program, "program section round-trips");
        let back = reader.read_all().expect("read");
        assert_eq!(back, uops, "{codec} codec is lossless");
        let bytes = std::fs::metadata(&path).unwrap().len();
        println!(
            "{codec:>6} codec: {n} uops -> {bytes} bytes ({:.1} B/uop), lossless",
            bytes as f64 / n as f64
        );
    }

    // 4. Record a real suite point and replay the identical stored stream
    //    under two steering schemes.
    let points = spec2000_points();
    let point = points.iter().find(|p| p.name == "galgel").unwrap();
    let budget = 8_000;
    let trace_path = dir.join("galgel.vctb");
    record_point(point, budget, Codec::Binary, &trace_path).expect("record");
    for config in [Configuration::Op, Configuration::Vc { num_vcs: 2 }] {
        let machine = MachineConfig::paper_2cluster();
        let live = run_point(point, &config, &machine, budget);
        let replayed =
            replay_trace(&trace_path, &config, &machine, &RunLimits::unlimited()).unwrap();
        assert_eq!(live, replayed, "replay must be bit-identical");
        println!(
            "galgel replay under {:>8}: {} (identical to the in-process run)",
            config.name(2),
            replayed.summary()
        );
    }

    std::fs::remove_dir_all(&dir).ok();
    println!("round trip complete");
}
