//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! Provides exactly what the `virtclust` workspace uses: a seedable small
//! fast RNG ([`rngs::SmallRng`], implemented as xoshiro256++ like the real
//! `rand 0.8` on 64-bit targets) and the [`Rng`] extension methods
//! `gen`, `gen_bool` and `gen_range`. Everything is deterministic given the
//! seed, which is the property the workloads layer depends on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type that can be created from a `u64` seed (subset of
/// `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a new RNG seeded from a single `u64` via SplitMix64, matching
    /// `rand 0.8`'s `seed_from_u64` construction.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform range sampling (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `start..end` (must be non-empty).
    fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
    /// Sample uniformly from `start..=end` (must be non-empty).
    fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                let unit = <$t as Standard>::sample(rng);
                start + unit * (end - start)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                let unit = <$t as Standard>::sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// A range that [`Rng::gen_range`] can sample from (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_inclusive(start, end, rng)
    }
}

/// Convenience extension methods over any [`RngCore`] (subset of
/// `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        <f64 as Standard>::sample(self) < p
    }

    /// Sample a value uniformly from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable, non-cryptographic RNG: xoshiro256++, the
    /// same algorithm `rand 0.8` uses for `SmallRng` on 64-bit targets.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as rand_core does.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.5f64..1.5);
            assert!((0.5..1.5).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
