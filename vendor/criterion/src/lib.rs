//! Offline stand-in for the `criterion` crate (0.5 API surface).
//!
//! Implements the subset used by `crates/bench/benches/pipeline.rs`:
//! benchmark groups, `BenchmarkId`, `Throughput`, `BatchSize`,
//! `Bencher::{iter, iter_batched}` and the `criterion_group!` /
//! `criterion_main!` macros. Two execution modes:
//!
//! * **`--test`** (what `cargo bench -- --test` passes): run every
//!   benchmark body exactly once so the harness can never silently rot —
//!   this is the mode CI exercises;
//! * default: a simplified measurement loop (fixed warm-up, then timed
//!   samples) printing mean ns/iter and, when a throughput was declared,
//!   elements/s. No statistics machinery, no plots, no `target/criterion`
//!   reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a benchmark's workload scales, for per-element reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The routine processes this many elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim runs one
/// setup per iteration regardless.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Identifier for a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter's `Display` form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.id.fmt(f)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher<'a> {
    mode: Mode,
    sample_size: usize,
    report: &'a mut Option<Sample>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Test,
    Measure,
}

struct Sample {
    iters: u64,
    total: Duration,
}

impl Bencher<'_> {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Test => {
                black_box(routine());
                *self.report = Some(Sample {
                    iters: 1,
                    total: Duration::ZERO,
                });
            }
            Mode::Measure => {
                // Warm-up.
                black_box(routine());
                let iters = self.sample_size as u64;
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                *self.report = Some(Sample {
                    iters,
                    total: start.elapsed(),
                });
            }
        }
    }

    /// Time `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Test => {
                black_box(routine(setup()));
                *self.report = Some(Sample {
                    iters: 1,
                    total: Duration::ZERO,
                });
            }
            Mode::Measure => {
                black_box(routine(setup()));
                let iters = self.sample_size as u64;
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let input = setup();
                    let start = Instant::now();
                    black_box(routine(input));
                    total += start.elapsed();
                }
                *self.report = Some(Sample { iters, total });
            }
        }
    }
}

/// A named collection of related benchmarks sharing throughput and
/// sample-size settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declare how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        let (throughput, sample_size) = (self.throughput, self.sample_size);
        self.criterion.run_one(&full, throughput, sample_size, f);
        self
    }

    /// Finish the group (report output already happened per-benchmark).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    mode: Mode,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: Mode::Measure,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Build a `Criterion` from the process's command-line arguments, as
    /// the real crate's `criterion_group!` expansion does. Recognises
    /// `--test` (run each body once); other harness flags that Cargo
    /// forwards (`--bench`, filters) are accepted and ignored.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().skip(1).any(|a| a == "--test") {
            self.mode = Mode::Test;
        }
        self
    }

    /// Start a benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, None, self.default_sample_size, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        sample_size: usize,
        mut f: F,
    ) {
        let mut report = None;
        let mut bencher = Bencher {
            mode: self.mode,
            sample_size,
            report: &mut report,
        };
        f(&mut bencher);
        match (self.mode, report) {
            (Mode::Test, Some(_)) => println!("test {name} ... ok"),
            (Mode::Test, None) => println!("test {name} ... ok (no iterations)"),
            (Mode::Measure, Some(s)) if s.iters > 0 => {
                let per_iter = s.total.as_nanos() / u128::from(s.iters);
                match throughput {
                    Some(Throughput::Elements(n)) if per_iter > 0 => {
                        let rate = n as f64 * 1e9 / per_iter as f64;
                        println!("bench {name}: {per_iter} ns/iter ({rate:.0} elem/s)");
                    }
                    Some(Throughput::Bytes(n)) if per_iter > 0 => {
                        let rate = n as f64 * 1e9 / per_iter as f64;
                        println!("bench {name}: {per_iter} ns/iter ({rate:.0} B/s)");
                    }
                    _ => println!("bench {name}: {per_iter} ns/iter"),
                }
            }
            (Mode::Measure, _) => println!("bench {name}: no measurement"),
        }
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {}
}

/// Define a function that runs a list of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Define `main` running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_runs_and_reports() {
        let mut c = Criterion {
            mode: Mode::Test,
            default_sample_size: 3,
        };
        let mut ran = 0u32;
        c.bench_function("shim_selftest", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1, "--test mode runs the body exactly once");
    }

    #[test]
    fn iter_batched_pipes_setup_into_routine() {
        let mut c = Criterion {
            mode: Mode::Measure,
            default_sample_size: 2,
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.sample_size(2);
        let mut total = 0u64;
        group.bench_function(BenchmarkId::new("sum", 4), |b| {
            b.iter_batched(
                || vec![1u64, 2, 3, 4],
                |v| total += v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
        assert!(total >= 10, "routine observed the setup's data");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 2).to_string(), "f/2");
        assert_eq!(BenchmarkId::from_parameter("vc").to_string(), "vc");
    }
}
