//! Test-runner plumbing: [`Config`], [`TestCaseError`], [`TestRng`] and the
//! assertion macros used inside [`proptest!`](crate::proptest) bodies.

use std::fmt;

use rand::rngs::SmallRng;
use rand::Rng;

/// Runner configuration, mirroring `proptest::test_runner::Config`. Only
/// `cases` is honoured.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases to run per test.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

impl Config {
    /// A config running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

/// Why a single generated case failed.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed property with the given explanation.
    #[must_use]
    pub fn fail<S: Into<String>>(message: S) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The RNG handed to strategies. Wraps the vendored [`SmallRng`] so
/// strategy objects stay object-safe.
#[derive(Clone, Debug)]
pub struct TestRng {
    pub(crate) rng: SmallRng,
}

impl TestRng {
    /// A uniform index in `0..len` (`len` must be non-zero).
    pub fn random_index(&mut self, len: usize) -> usize {
        assert!(len > 0, "random_index: empty choice set");
        self.rng.gen_range(0..len)
    }
}

/// Assert a condition inside a `proptest!` body; on failure the current
/// case returns an error (no shrinking follows, unlike real proptest).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)+), l, r
        );
    }};
}

/// `prop_assert!` for inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{} (both: `{:?}`)",
            format!($($fmt)+), l
        );
    }};
}

/// Define property tests, mirroring `proptest::proptest!`: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@body ($config) $($rest)*);
    };
    (
        $(#[test] fn $name:ident ($($args:tt)*) $body:block)*
    ) => {
        $crate::proptest!(@body ($crate::test_runner::Config::default())
            $(#[test] fn $name ($($args)*) $body)*);
    };
    (@body ($config:expr)
        $(#[test] fn $name:ident ($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    |prop_rng| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strategy), prop_rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}
