//! Offline stand-in for the `proptest` crate (1.x API surface).
//!
//! Implements the subset `tests/properties.rs` uses: the [`Strategy`]
//! trait with `prop_map`, range and tuple strategies, [`prop_oneof!`],
//! [`collection::vec`], the [`proptest!`] test macro, the
//! `prop_assert*` family and [`ProptestConfig`].
//!
//! Differences from real proptest, by design: no shrinking (a failing
//! case reports its seed and values verbatim), and generation is
//! deterministic — the RNG seed is derived from the test name, so a
//! failure reproduces on every run rather than flaking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Map, Strategy, Union};
pub use test_runner::{Config as ProptestConfig, TestCaseError, TestRng};

/// Everything a property test usually imports, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

impl<T: SampleRangeValue> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_range(self.clone(), rng)
    }
}

impl<T: SampleRangeValue> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_range_inclusive(self.clone(), rng)
    }
}

/// Numeric types usable as range strategies (`0u8..8`, `1u32..5`, ...).
pub trait SampleRangeValue: Copy + fmt::Debug {
    /// Sample from a half-open range.
    fn sample_range(range: Range<Self>, rng: &mut TestRng) -> Self;
    /// Sample from an inclusive range.
    fn sample_range_inclusive(range: RangeInclusive<Self>, rng: &mut TestRng) -> Self;
}

macro_rules! impl_sample_range_value {
    ($($t:ty),*) => {$(
        impl SampleRangeValue for $t {
            fn sample_range(range: Range<Self>, rng: &mut TestRng) -> Self {
                rng.rng.gen_range(range)
            }
            fn sample_range_inclusive(range: RangeInclusive<Self>, rng: &mut TestRng) -> Self {
                rng.rng.gen_range(range)
            }
        }
    )*};
}
impl_sample_range_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Derive a stable RNG seed from a test's module path and name so every
/// run of the same test generates the same cases.
#[must_use]
pub fn seed_for(test_path: &str) -> u64 {
    // FNV-1a, good enough to decorrelate test names.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `cases` generated test cases; used by the [`proptest!`] expansion.
///
/// # Panics
/// Panics (failing the surrounding `#[test]`) if any case returns an error.
pub fn run_cases<F>(test_path: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let seed = seed_for(test_path);
    let mut rng = TestRng {
        rng: SmallRng::seed_from_u64(seed),
    };
    for case_no in 0..config.cases {
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest case {case_no}/{} failed for `{test_path}` (seed {seed:#x}): {e}",
                config.cases
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seed_is_stable_and_name_dependent() {
        assert_eq!(crate::seed_for("a::b"), crate::seed_for("a::b"));
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps_compose(x in 0u8..8, y in (1u32..5).prop_map(|v| v * 10)) {
            prop_assert!(x < 8);
            prop_assert!((10..50).contains(&y));
            prop_assert!(y % 10 == 0, "mapped value {} not a multiple of ten", y);
        }

        #[test]
        fn oneof_and_vec_cover_arms(items in prop::collection::vec(
            prop_oneof![Just(1u8), Just(2u8), 5u8..7],
            1..20,
        )) {
            prop_assert!(!items.is_empty());
            for &i in &items {
                prop_assert!(i == 1 || i == 2 || (5..7).contains(&i), "unexpected item {}", i);
            }
        }

        #[test]
        fn tuples_generate_componentwise((a, b, c) in (0u8..4, 10u8..14, 20u8..24)) {
            prop_assert!(a < 4);
            prop_assert_eq!(b / 10, 1);
            prop_assert_ne!(c, 0);
        }
    }
}
