//! The [`Strategy`] trait and combinators: [`Map`] (from
//! [`Strategy::prop_map`]), [`Union`] (from [`prop_oneof!`](crate::prop_oneof))
//! and [`Just`].

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Unlike real proptest there
/// is no value tree and no shrinking: a strategy just produces values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Picks one of several strategies uniformly per generated value; the
/// result of [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the already-boxed arms. Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.random_index(self.arms.len());
        self.arms[arm].generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Build a [`Union`] strategy from heterogeneous arms that share one value
/// type, mirroring `proptest::prop_oneof!`. Weighted arms are not
/// supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
