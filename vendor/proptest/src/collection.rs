//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec`s whose length is drawn from a range; the result of
/// [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.end - self.size.start;
        let len = self.size.start + rng.random_index(span.max(1));
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generate `Vec`s of `element` values with a length in `size`, mirroring
/// `proptest::collection::vec`.
///
/// # Panics
/// Panics if `size` is empty.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "collection::vec: empty size range");
    VecStrategy { element, size }
}
