//! # virtclust-bench
//!
//! Shared plumbing for the benchmark harness binaries that regenerate every
//! table and figure of Cai et al., IPDPS 2008 (see `src/bin/`), plus the
//! Criterion micro-benchmarks under `benches/`.
//!
//! Binaries honour two environment variables:
//!
//! * `VIRTCLUST_UOPS` — micro-ops simulated per (point × configuration)
//!   cell (default per binary; the paper's PinPoints slices are 10 M
//!   instructions — scale this up for higher fidelity, down for speed);
//! * `VIRTCLUST_THREADS` — worker threads (default: all CPUs).
//!
//! Every binary prints its result and also writes it under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::time::Duration;

use virtclust_core::{fault, ResilientOptions};
use virtclust_uarch::MachineConfig;

/// Map a `--clusters` argument to the paper machine preset: 2 (Table 2
/// baseline), 4 (Sec. 5.4 scaling) or 8 (the ROADMAP sweep extrapolation —
/// location/wakeup masks beyond 4 bits). `None` for anything else; the
/// single mapping every harness binary shares.
pub fn cluster_preset(clusters: usize) -> Option<MachineConfig> {
    match clusters {
        2 => Some(MachineConfig::paper_2cluster()),
        4 => Some(MachineConfig::paper_4cluster()),
        8 => Some(MachineConfig::paper_8cluster()),
        _ => None,
    }
}

/// Micro-op budget per simulation cell: `VIRTCLUST_UOPS` or `default`.
pub fn uop_budget(default: u64) -> u64 {
    match std::env::var("VIRTCLUST_UOPS") {
        Ok(v) => v.replace('_', "").parse().unwrap_or_else(|_| {
            eprintln!("warning: unparsable VIRTCLUST_UOPS={v}, using {default}");
            default
        }),
        Err(_) => default,
    }
}

/// Worker threads for the evaluation matrix: `VIRTCLUST_THREADS` or 0
/// (= one per CPU).
pub fn threads() -> usize {
    std::env::var("VIRTCLUST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Resilience flags shared by the batch binaries (`probe_ipc --json`,
/// `throughput --trace`, `trace_replay batch`).
#[derive(Debug, Default)]
pub struct Resilience {
    /// Retry/deadline options assembled from the flags.
    pub opts: ResilientOptions,
    /// Any of `--retries/--deadline-ms/--chaos` was given explicitly.
    pub flags: bool,
    /// `VIRTCLUST_FAILPOINTS` armed the registry (no flag needed).
    pub env_armed: bool,
}

impl Resilience {
    /// Whether the binary should run its batch through `run_resilient`
    /// and report degraded completion instead of treating the first
    /// error as fatal.
    pub fn active(&self) -> bool {
        self.flags || self.env_armed
    }
}

/// Parse `--retries N`, `--deadline-ms MS` and `--chaos SCHEDULE` from
/// `argv`, and arm the failpoint registry from `--chaos` and/or
/// `VIRTCLUST_FAILPOINTS` (process-wide — the whole process is the chaos
/// experiment). Malformed values are an `Err` naming the flag.
pub fn try_resilience_from_args(argv: &[String]) -> Result<Resilience, String> {
    let value_of = |flag: &str| -> Result<Option<&String>, String> {
        match argv.iter().position(|a| a == flag) {
            None => Ok(None),
            Some(i) => argv
                .get(i + 1)
                .map(Some)
                .ok_or_else(|| format!("{flag} needs a value")),
        }
    };
    let mut r = Resilience::default();
    if let Some(v) = value_of("--retries")? {
        r.opts.retry.max_retries = v
            .parse()
            .map_err(|_| format!("--retries must be a count, got {v}"))?;
        r.flags = true;
    }
    if let Some(v) = value_of("--deadline-ms")? {
        let ms: u64 = v
            .parse()
            .map_err(|_| format!("--deadline-ms must be milliseconds, got {v}"))?;
        r.opts.deadline = Some(Duration::from_millis(ms));
        r.flags = true;
    }
    if let Some(v) = value_of("--chaos")? {
        let schedule = fault::FaultSchedule::parse(v).map_err(|e| format!("--chaos: {e}"))?;
        fault::arm_global(&schedule);
        r.flags = true;
    } else {
        r.env_armed = fault::arm_from_env()
            .map_err(|e| format!("VIRTCLUST_FAILPOINTS: {e}"))?
            .is_some();
    }
    Ok(r)
}

/// [`try_resilience_from_args`], exiting with a usage error on malformed
/// values (`bin` names the binary in the diagnostic).
pub fn resilience_from_args(argv: &[String], bin: &str) -> Resilience {
    try_resilience_from_args(argv).unwrap_or_else(|e| {
        eprintln!("{bin}: {e}");
        std::process::exit(2);
    })
}

/// Locate the workspace `results/` directory (next to the workspace root's
/// Cargo.toml), creating it if needed.
pub fn results_dir() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir.push("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Write `content` to `results/<name>`, returning the path.
pub fn write_result(name: &str, content: &str) -> PathBuf {
    let path = results_dir().join(name);
    std::fs::write(&path, content).expect("write result file");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_defaults_when_env_unset() {
        std::env::remove_var("VIRTCLUST_UOPS");
        assert_eq!(uop_budget(1234), 1234);
    }

    #[test]
    fn write_result_roundtrips() {
        let path = write_result("selftest.txt", "hello\n");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "hello\n");
        std::fs::remove_file(path).ok();
    }
}
