//! # virtclust-bench
//!
//! Shared plumbing for the benchmark harness binaries that regenerate every
//! table and figure of Cai et al., IPDPS 2008 (see `src/bin/`), plus the
//! Criterion micro-benchmarks under `benches/`.
//!
//! Binaries honour two environment variables:
//!
//! * `VIRTCLUST_UOPS` — micro-ops simulated per (point × configuration)
//!   cell (default per binary; the paper's PinPoints slices are 10 M
//!   instructions — scale this up for higher fidelity, down for speed);
//! * `VIRTCLUST_THREADS` — worker threads (default: all CPUs).
//!
//! Every binary prints its result and also writes it under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

use virtclust_uarch::MachineConfig;

/// Map a `--clusters` argument to the paper machine preset: 2 (Table 2
/// baseline), 4 (Sec. 5.4 scaling) or 8 (the ROADMAP sweep extrapolation —
/// location/wakeup masks beyond 4 bits). `None` for anything else; the
/// single mapping every harness binary shares.
pub fn cluster_preset(clusters: usize) -> Option<MachineConfig> {
    match clusters {
        2 => Some(MachineConfig::paper_2cluster()),
        4 => Some(MachineConfig::paper_4cluster()),
        8 => Some(MachineConfig::paper_8cluster()),
        _ => None,
    }
}

/// Micro-op budget per simulation cell: `VIRTCLUST_UOPS` or `default`.
pub fn uop_budget(default: u64) -> u64 {
    match std::env::var("VIRTCLUST_UOPS") {
        Ok(v) => v.replace('_', "").parse().unwrap_or_else(|_| {
            eprintln!("warning: unparsable VIRTCLUST_UOPS={v}, using {default}");
            default
        }),
        Err(_) => default,
    }
}

/// Worker threads for the evaluation matrix: `VIRTCLUST_THREADS` or 0
/// (= one per CPU).
pub fn threads() -> usize {
    std::env::var("VIRTCLUST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Locate the workspace `results/` directory (next to the workspace root's
/// Cargo.toml), creating it if needed.
pub fn results_dir() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir.push("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Write `content` to `results/<name>`, returning the path.
pub fn write_result(name: &str, content: &str) -> PathBuf {
    let path = results_dir().join(name);
    std::fs::write(&path, content).expect("write result file");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_defaults_when_env_unset() {
        std::env::remove_var("VIRTCLUST_UOPS");
        assert_eq!(uop_budget(1234), 1234);
    }

    #[test]
    fn write_result_roundtrips() {
        let path = write_result("selftest.txt", "hello\n");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "hello\n");
        std::fs::remove_file(path).ok();
    }
}
