//! Regenerates **Figure 7**: 4-cluster scalability — slowdown vs OP for
//! OB, RHOP, VC(4→4) and VC(2→4), plus the Sec. 5.4 copy comparison
//! (paper: VC(4→4) generates ~28 % more copies than VC(2→4)).
//!
//! Paper reference values (CPU2000 AVG slowdown vs OP): OB 12.45 %,
//! RHOP 12.69 %, VC(4→4) 12.96 %, VC(2→4) 3.64 %.

use virtclust_bench::{threads, uop_budget, write_result};
use virtclust_core::{fig7, run_matrix, Configuration};
use virtclust_uarch::MachineConfig;
use virtclust_workloads::spec2000_points;

fn main() {
    let uops = uop_budget(120_000);
    let machine = MachineConfig::paper_4cluster();
    let points = spec2000_points();
    let configs = vec![
        Configuration::Op,
        Configuration::Ob,
        Configuration::Rhop,
        Configuration::Vc { num_vcs: 4 },
        Configuration::Vc { num_vcs: 2 },
    ];

    eprintln!(
        "fig7: {} points x {} configs, {} uops/cell, 4 clusters...",
        points.len(),
        configs.len(),
        uops
    );
    let t0 = std::time::Instant::now();
    let matrix = run_matrix(&machine, &configs, &points, uops, threads());
    eprintln!("fig7: simulated in {:.1}s", t0.elapsed().as_secs_f64());

    let data = fig7(&matrix);
    println!("## Figure 7 — slowdown (%) vs OP, 4-cluster machine\n");
    println!("{}", data.table.to_markdown());
    println!(
        "VC(4->4) generates {:.1}% more copies than VC(2->4) on average (paper: ~28%).\n",
        data.vc44_copy_inflation_pct
    );
    println!("Paper (CPU2000 AVG): OB 12.45, RHOP 12.69, VC(4->4) 12.96, VC(2->4) 3.64\n");

    let mut md = data.table.to_markdown();
    md.push_str(&format!(
        "\nVC(4->4) copy inflation vs VC(2->4): {:.1}% (paper ~28%)\n",
        data.vc44_copy_inflation_pct
    ));
    let md_path = write_result("fig7.md", &md);
    let csv_path = write_result("fig7.csv", &data.table.to_csv());
    eprintln!("wrote {}, {}", md_path.display(), csv_path.display());
}
