//! Regenerates **Figure 5**: performance of one-cluster, OB, RHOP and VC
//! relative to the hardware-only OP baseline on the 2-cluster machine —
//! per trace point (a: SPECint, b: SPECfp) and the averages (c).
//!
//! Paper reference values (CPU2000 AVG slowdown vs OP): one-cluster
//! 12.19 %, OB 6.50 %, RHOP 5.40 %, VC 2.62 %.

use virtclust_bench::{threads, uop_budget, write_result};
use virtclust_core::{fig5, fig6, run_matrix, Configuration};
use virtclust_uarch::MachineConfig;
use virtclust_workloads::spec2000_points;

fn main() {
    let uops = uop_budget(120_000);
    let machine = MachineConfig::paper_2cluster();
    let points = spec2000_points();
    let configs = Configuration::table3().to_vec();

    eprintln!(
        "fig5: {} points x {} configs, {} uops/cell, 2 clusters...",
        points.len(),
        configs.len(),
        uops
    );
    let t0 = std::time::Instant::now();
    let matrix = run_matrix(&machine, &configs, &points, uops, threads());
    eprintln!("fig5: simulated in {:.1}s", t0.elapsed().as_secs_f64());

    let data = fig5(&matrix);
    println!("## Figure 5 — slowdown (%) vs OP, 2-cluster machine\n");
    println!("{}", data.to_markdown());
    println!("Paper (CPU2000 AVG): one-cluster 12.19, OB 6.50, RHOP 5.40, VC 2.62\n");
    let md_path = write_result("fig5.md", &data.to_markdown());
    let csv_path = write_result("fig5.csv", &data.to_csv());

    // Fig. 6 shares the same matrix; persist its CSV here too so a single
    // expensive run feeds both figures.
    let f6 = fig6(&matrix);
    let f6_path = write_result("fig6.csv", &f6.to_csv());

    eprintln!(
        "wrote {}, {}, {}",
        md_path.display(),
        csv_path.display(),
        f6_path.display()
    );
}
