//! Ablations of the two VC design choices DESIGN.md calls out:
//!
//! 1. **Remap hysteresis** — the dead-band on the Fig. 4 mapping decision
//!    (0 = remap at every chain leader, the literal reading of the paper).
//!    Sweeping it shows the copy/balance trade-off directly.
//! 2. **Chain granularity** — bounding chain length inserts extra leaders
//!    (more remap opportunities, more migration copies).

use virtclust_bench::{uop_budget, write_result};
use virtclust_compiler::{SoftwarePass, VcConfig};
use virtclust_sim::{simulate, RunLimits};
use virtclust_steer::VcMapper;
use virtclust_uarch::MachineConfig;
use virtclust_workloads::spec2000_points;

fn main() {
    let uops = uop_budget(40_000);
    let machine = MachineConfig::paper_2cluster();
    let points = spec2000_points();
    let subset: Vec<_> = points
        .iter()
        .filter(|p| ["gzip-1", "crafty", "galgel", "swim", "vortex-1"].contains(&p.name.as_str()))
        .collect();

    let mut out = String::from("## Ablation 1 — VC remap hysteresis\n\n");
    out.push_str("| threshold | mean cycles | copies/kuop | alloc stalls |\n|---|---|---|---|\n");
    for threshold in [0u32, 4, 8, 16, 32, 64, 128] {
        let (mut cyc, mut cpk, mut stalls) = (0u64, 0.0, 0u64);
        for point in &subset {
            let mut program = point.build_program();
            SoftwarePass::Vc(VcConfig::new(2)).apply(&mut program, &machine.latencies);
            let mut trace = point.expander(&program);
            let mut policy = VcMapper::with_threshold(2, threshold);
            let stats = simulate(&machine, &mut trace, &mut policy, &RunLimits::uops(uops));
            cyc += stats.cycles;
            cpk += stats.copies_per_kuop();
            stalls += stats.allocation_stalls();
        }
        let n = subset.len() as u64;
        out.push_str(&format!(
            "| {threshold} | {} | {:.1} | {} |\n",
            cyc / n,
            cpk / n as f64,
            stalls / n
        ));
    }

    out.push_str("\n## Ablation 2 — maximum chain length (extra leaders)\n\n");
    out.push_str(
        "| max chain len | mean cycles | copies/kuop | leaders/kuop |\n|---|---|---|---|\n",
    );
    for max_len in [None, Some(32usize), Some(16), Some(8), Some(4), Some(2)] {
        let (mut cyc, mut cpk, mut remaps) = (0u64, 0.0, 0u64);
        let mut committed = 0u64;
        for point in &subset {
            let mut program = point.build_program();
            let mut cfg = VcConfig::new(2);
            cfg.max_chain_len = max_len;
            SoftwarePass::Vc(cfg).apply(&mut program, &machine.latencies);
            let mut trace = point.expander(&program);
            let mut policy = VcMapper::new(2);
            let stats = simulate(&machine, &mut trace, &mut policy, &RunLimits::uops(uops));
            cyc += stats.cycles;
            cpk += stats.copies_per_kuop();
            remaps += policy.remaps();
            committed += stats.committed_uops;
        }
        let n = subset.len() as u64;
        let label = max_len.map_or("unbounded".to_string(), |l| l.to_string());
        out.push_str(&format!(
            "| {label} | {} | {:.1} | {:.1} |\n",
            cyc / n,
            cpk / n as f64,
            1000.0 * remaps as f64 / committed as f64
        ));
    }

    println!("{out}");
    let path = write_result("ablation_vc.md", &out);
    eprintln!("wrote {}", path.display());
}
