//! Regenerates the **Sec. 2.1 motivation**: sequential vs parallel
//! (renaming-style) hardware steering.
//!
//! Part 1 replays the paper's three-instruction example exactly
//! (I1: R1←R1+R2; I2: R3←Load(R1); I3: R4←Load(R3) with R1/R2/R3 pre-placed)
//! and shows the 2-copy difference. Part 2 sweeps the whole suite to show
//! the aggregate cost of steering with stale bundle-entry information —
//! the complexity-vs-performance dilemma the hybrid scheme resolves.

use virtclust_bench::{threads, uop_budget, write_result};
use virtclust_core::{run_matrix, Configuration};
use virtclust_sim::{Machine, RunLimits};
use virtclust_steer::OccupancyAware;
use virtclust_uarch::{ArchReg, MachineConfig, RegionBuilder, SliceTrace};
use virtclust_workloads::spec2000_points;

fn sec21_example() -> String {
    let r = ArchReg::int;
    let region = RegionBuilder::new(0, "sec2.1")
        .alu(r(1), &[r(1), r(2)])
        .load(r(3), r(1))
        .load(r(4), r(3))
        .build();
    let mut uops = Vec::new();
    virtclust_uarch::trace::expand_region(&region, 0, &mut uops, |_, _| 0x100, |_, _| true);

    let mut out = String::from("| steering | copies generated |\n|---|---|\n");
    for (label, mut policy) in [
        ("sequential (OP)", OccupancyAware::new()),
        ("parallel (stale)", OccupancyAware::parallel()),
    ] {
        let mut trace = SliceTrace::new(&uops);
        let mut m = Machine::new(&MachineConfig::paper_2cluster());
        m.place_register(r(1), 1);
        m.place_register(r(2), 0);
        m.place_register(r(3), 0);
        let stats = m.run(&mut trace, &mut policy, &RunLimits::unlimited());
        out.push_str(&format!("| {label} | {} |\n", stats.copies_generated));
    }
    out.push_str(
        "\nThe difference is the paper's \"two copies\": with stale locations, I2 and I3\n\
         chase out-of-date operand positions (the common input copy of I1 appears in both).\n",
    );
    out
}

fn main() {
    println!("## Sec. 2.1 — sequential vs parallel steering\n");
    let example = sec21_example();
    println!("{example}");

    let uops = uop_budget(60_000);
    let machine = MachineConfig::paper_2cluster();
    let points = spec2000_points();
    let configs = vec![Configuration::Op, Configuration::OpParallel];
    eprintln!("motivation: sweeping the suite ({uops} uops/cell)...");
    let matrix = run_matrix(&machine, &configs, &points, uops, threads());

    let mut sweep = String::from("| point | OP copies/kuop | parallel copies/kuop | parallel slowdown % |\n|---|---|---|---|\n");
    let (mut slow_sum, mut n) = (0.0, 0);
    for (pi, point) in matrix.points.iter().enumerate() {
        let seq = matrix.cell(pi, 0);
        let par = matrix.cell(pi, 1);
        let slow = (par.cycles as f64 / seq.cycles as f64 - 1.0) * 100.0;
        slow_sum += slow;
        n += 1;
        sweep.push_str(&format!(
            "| {} | {:.1} | {:.1} | {:.2} |\n",
            point.name,
            seq.copies_per_kuop(),
            par.copies_per_kuop(),
            slow
        ));
    }
    sweep.push_str(&format!(
        "\nMean slowdown of parallel (stale-information) steering: {:.2}%\n",
        slow_sum / n as f64
    ));
    println!("{sweep}");

    let out = format!("## Sec. 2.1 example\n\n{example}\n## Suite sweep\n\n{sweep}");
    let path = write_result("motivation_seq_vs_parallel.md", &out);
    eprintln!("wrote {}", path.display());
}
