//! Regenerates **Figure 6**: per-trace scatter data of copy reduction
//! (a-row) and workload-balance improvement (b-row) against speedup, for
//! VC vs OB (x.1), VC vs RHOP (x.2) and VC vs OP (x.3).
//!
//! The paper reads three facts off these plots (Sec. 5.3): VC beats OB via
//! both fewer copies and better balance; VC beats RHOP via copies while
//! losing balance; OP beats VC via copies while losing balance — copy
//! reduction matters more than balance for most benchmarks.

use virtclust_bench::{threads, uop_budget, write_result};
use virtclust_core::{fig6, run_matrix, Configuration};
use virtclust_uarch::MachineConfig;
use virtclust_workloads::spec2000_points;

fn main() {
    let uops = uop_budget(120_000);
    let machine = MachineConfig::paper_2cluster();
    let points = spec2000_points();
    let configs = vec![
        Configuration::Op,
        Configuration::Ob,
        Configuration::Rhop,
        Configuration::Vc { num_vcs: 2 },
    ];

    eprintln!(
        "fig6: {} points x {} configs, {} uops/cell...",
        points.len(),
        configs.len(),
        uops
    );
    let matrix = run_matrix(&machine, &configs, &points, uops, threads());
    let data = fig6(&matrix);

    println!("## Figure 6 — VC trade-off scatter data (2-cluster machine)\n");
    println!("{}", data.quadrant_summary());
    println!("Full per-point series written as CSV (plot speedup on x, copy");
    println!("reduction / balance improvement on y to recreate the six panels).");

    let csv_path = write_result("fig6.csv", &data.to_csv());
    let md_path = write_result("fig6_quadrants.md", &data.quadrant_summary());
    eprintln!("wrote {}, {}", csv_path.display(), md_path.display());
}
