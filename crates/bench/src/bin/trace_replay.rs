//! Trace capture / replay harness: persist a workload's dynamic stream
//! once, then replay the frozen stream under any steering scheme — the
//! paper's "execute traces of IA32 binaries" methodology (Sec. 5.1) as a
//! command-line round trip.
//!
//! ```text
//! trace_replay record    <point>  <out-file> [--binary] [--uops N] [--clusters 2|4|8]
//! trace_replay replay    <file>   [--scheme op|1c|ob|rhop|vcN|modN] [--uops N] [--clusters 2|4|8]
//! trace_replay intervals <file>   [--scheme ...] [--every K] [--uops N] [--clusters 2|4|8]
//! trace_replay compare   <file>   [--clusters 2|4|8]
//! trace_replay batch     <file>...  [--uops N] [--clusters 2|4|8]
//! trace_replay import    <kernel> <out-file> [--binary] [--uops N] [--seed S]
//! ```
//!
//! * `record` captures a SPEC-like suite point (by Fig. 5 name, e.g.
//!   `gzip-1`) into a trace file;
//! * `replay` runs one steering scheme over a stored trace;
//! * `intervals` replays one scheme with a `virtclust-obs` interval
//!   observer attached (`--every K` cycles, default 1000) and prints one
//!   row per interval — phase-resolved IPC, copies, stalls and front-end
//!   starvation over the run — then checks that the interval deltas sum
//!   *exactly* to the final stats (exit code 1 if not);
//! * `compare` replays all five Table 3 schemes over the same stored
//!   stream and checks they commit identical micro-op counts (exit code 1
//!   if not) — the CI round-trip smoke;
//! * `batch` feeds (file × Table 3 scheme) cells through the batch engine
//!   (`core::batch::EvalDriver`): per-worker reusable sessions, each trace
//!   parsed once and rewound per scheme, completions streamed as they
//!   land. Applies the same identical-commit check per file — the CI
//!   batch-engine smoke. With `--retries N`, `--deadline-ms MS` and/or
//!   `--chaos SCHEDULE` (or `VIRTCLUST_FAILPOINTS`) the batch runs
//!   through the resilient engine: failed cells print `ERROR` lines, the
//!   degraded-completion [`BatchReport`] summary is printed at the end,
//!   and the command still exits 0 — the CI chaos job's
//!   process-stays-alive demonstration;
//! * `import` reads a one-uop-per-line kernel description, expands it with
//!   the synthetic dynamic model and records the result, so externally
//!   authored programs enter the pipeline.
//!
//! `--uops` defaults to `VIRTCLUST_UOPS` or 20 000 (`batch` replays whole
//! streams unless `--uops` is given).

use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};

use virtclust_bench::{threads, try_resilience_from_args, uop_budget};
use virtclust_core::{
    record_point, replay_compare, replay_trace, replay_trace_observed, BatchReport, CellOutcome,
    Configuration, EvalDriver, EvalJob,
};
use virtclust_obs::{MemSink, Shared};
use virtclust_sim::{RunLimits, SimStats};
use virtclust_trace::{import_kernel_file, Codec, TraceWriter};
use virtclust_uarch::MachineConfig;
use virtclust_workloads::{spec2000_points, KernelParams, TraceExpander};

const USAGE: &str = "\
usage:
  trace_replay record    <point>  <out-file> [--binary] [--uops N] [--clusters 2|4|8]
  trace_replay replay    <file>   [--scheme op|1c|ob|rhop|vcN|modN] [--uops N] [--clusters 2|4|8]
  trace_replay intervals <file>   [--scheme ...] [--every K] [--uops N] [--clusters 2|4|8]
  trace_replay compare   <file>   [--clusters 2|4|8]
  trace_replay batch     <file>...  [--uops N] [--clusters 2|4|8]
                                    [--retries N] [--deadline-ms MS] [--chaos SCHEDULE]
  trace_replay import    <kernel> <out-file> [--binary] [--uops N] [--seed S]

schemes: op, op-parallel, 1c (one-cluster), ob, rhop, vc2/vc4/..., mod64/...
point names are the Fig. 5 suite points (gzip-1 ... apsi); --uops defaults
to VIRTCLUST_UOPS or 20000 (batch: whole stream). A chaos SCHEDULE is
site=kind@N|%K|~P:S pairs, e.g. 'trace.open=io@2,job.run=panic@5' (also
read from VIRTCLUST_FAILPOINTS).";

struct Args {
    positional: Vec<String>,
    binary: bool,
    uops: Option<u64>,
    seed: u64,
    clusters: usize,
    scheme: String,
    every: u64,
    /// Any of `--retries/--deadline-ms/--chaos` was given (batch only;
    /// values are parsed by `try_resilience_from_args` over the raw argv).
    resilient: bool,
}

impl Args {
    /// The capture/import budget: `--uops`, else `VIRTCLUST_UOPS`, else
    /// 20 000.
    fn budget(&self) -> u64 {
        self.uops.unwrap_or_else(|| uop_budget(20_000))
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        binary: false,
        uops: None,
        seed: 1,
        clusters: 2,
        scheme: "vc2".into(),
        every: 1000,
        resilient: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--binary" => args.binary = true,
            "--uops" => {
                args.uops = Some(
                    value("--uops")?
                        .parse()
                        .map_err(|_| "--uops needs an integer".to_string())?,
                )
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_string())?
            }
            "--clusters" => {
                let v = value("--clusters")?;
                args.clusters = v
                    .parse()
                    .ok()
                    .filter(|&n| virtclust_bench::cluster_preset(n).is_some())
                    .ok_or(format!("--clusters must be 2, 4 or 8, got {v}"))?;
            }
            "--scheme" => args.scheme = value("--scheme")?,
            "--every" => {
                args.every = value("--every")?
                    .parse()
                    .ok()
                    .filter(|&k| k > 0)
                    .ok_or("--every needs a positive cycle count".to_string())?
            }
            "--retries" | "--deadline-ms" | "--chaos" => {
                value(arg)?;
                args.resilient = true;
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => args.positional.push(other.to_string()),
        }
    }
    Ok(args)
}

fn parse_scheme(name: &str) -> Result<Configuration, String> {
    match name {
        "op" => Ok(Configuration::Op),
        "op-parallel" => Ok(Configuration::OpParallel),
        "op-nostall" => Ok(Configuration::OpNoStall),
        "1c" | "one-cluster" => Ok(Configuration::OneCluster),
        "ob" => Ok(Configuration::Ob),
        "rhop" => Ok(Configuration::Rhop),
        _ => {
            if let Some(v) = name.strip_prefix("vc") {
                let num_vcs = v.parse().map_err(|_| format!("bad vc count in {name}"))?;
                return Ok(Configuration::Vc { num_vcs });
            }
            if let Some(s) = name.strip_prefix("mod") {
                let slice = s.parse().map_err(|_| format!("bad slice in {name}"))?;
                return Ok(Configuration::ModN { slice });
            }
            Err(format!("unknown scheme {name}"))
        }
    }
}

fn machine_for(clusters: usize) -> MachineConfig {
    virtclust_bench::cluster_preset(clusters).expect("validated in parse_args")
}

fn codec_for(args: &Args) -> Codec {
    if args.binary {
        Codec::Binary
    } else {
        Codec::Text
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err("missing command".into());
    };
    let args = parse_args(rest)?;
    if args.resilient && cmd != "batch" {
        return Err("--retries/--deadline-ms/--chaos only apply to batch".into());
    }
    match cmd.as_str() {
        "record" => {
            let [point_name, out] = args.positional.as_slice() else {
                return Err("record needs <point> <out-file>".into());
            };
            let point = spec2000_points()
                .into_iter()
                .find(|p| &p.name == point_name)
                .ok_or_else(|| format!("unknown suite point {point_name}"))?;
            let t0 = std::time::Instant::now();
            let n = record_point(&point, args.budget(), codec_for(&args), out)
                .map_err(|e| e.to_string())?;
            let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
            println!(
                "recorded {n} uops of {point_name} to {out} ({} codec, {bytes} bytes, {:.1} B/uop) in {:.2}s",
                codec_for(&args),
                bytes as f64 / n.max(1) as f64,
                t0.elapsed().as_secs_f64(),
            );
            Ok(())
        }
        "replay" => {
            let [file] = args.positional.as_slice() else {
                return Err("replay needs <file>".into());
            };
            let config = parse_scheme(&args.scheme)?;
            let machine = machine_for(args.clusters);
            // No --uops: replay the whole stored stream.
            let limits = args.uops.map_or(RunLimits::unlimited(), RunLimits::uops);
            let stats =
                replay_trace(file, &config, &machine, &limits).map_err(|e| e.to_string())?;
            println!(
                "{} over {file}: {}",
                config.name(machine.num_clusters as u32),
                stats.summary()
            );
            Ok(())
        }
        "intervals" => {
            let [file] = args.positional.as_slice() else {
                return Err("intervals needs <file>".into());
            };
            let config = parse_scheme(&args.scheme)?;
            let machine = machine_for(args.clusters);
            let limits = args.uops.map_or(RunLimits::unlimited(), RunLimits::uops);
            let handle = Shared::new(MemSink::<SimStats>::new());
            let stats = replay_trace_observed(
                file,
                &config,
                &machine,
                &limits,
                args.every,
                Box::new(handle.clone()),
            )
            .map_err(|e| e.to_string())?;
            println!(
                "{} over {file}, one row per {}-cycle interval:",
                config.name(machine.num_clusters as u32),
                args.every
            );
            println!(
                "{:<5} {:>10} {:>10} {:>7} {:>7} {:>8} {:>8} {:>8} {:>6}",
                "#", "start", "end", "uops", "ipc", "copies", "stalls", "starved", "spans"
            );
            let sum = handle.with(|sink| {
                let mut sum = SimStats::default();
                for s in &sink.intervals {
                    // Skip spans whose replicated cycles land in this
                    // interval (spans are chunked at boundaries, so a
                    // span touching N intervals counts in each).
                    let spans = sink
                        .skip_spans
                        .iter()
                        .filter(|sp| {
                            sp.start_cycle < s.end_cycle && sp.start_cycle + sp.len > s.start_cycle
                        })
                        .count();
                    println!(
                        "{:<5} {:>10} {:>10} {:>7} {:>7.3} {:>8} {:>8} {:>8} {:>6}",
                        s.index,
                        s.start_cycle,
                        s.end_cycle,
                        s.delta.committed_uops,
                        s.delta.ipc(),
                        s.delta.copies_generated,
                        s.delta.allocation_stalls(),
                        s.delta.frontend_starved_cycles,
                        spans,
                    );
                    sum.accumulate(&s.delta);
                }
                sum
            });
            if sum != stats {
                return Err(format!(
                    "interval deltas do not sum to the final stats:\n  sum   {}\n  final {}",
                    sum.summary(),
                    stats.summary()
                ));
            }
            let (n_intervals, n_spans) =
                handle.with(|sink| (sink.intervals.len(), sink.skip_spans.len()));
            println!(
                "sum of {n_intervals} interval deltas reconstructs the final stats exactly \
                 ({} uops, {} cycles, {n_spans} idle spans skipped); {}",
                stats.committed_uops,
                stats.cycles,
                stats.summary()
            );
            Ok(())
        }
        "compare" => {
            let [file] = args.positional.as_slice() else {
                return Err("compare needs <file>".into());
            };
            let machine = machine_for(args.clusters);
            let rows = replay_compare(file, &Configuration::table3(), &machine)
                .map_err(|e| e.to_string())?;
            println!(
                "{:<14} {:>10} {:>10} {:>8} {:>9} {:>9}",
                "scheme", "committed", "cycles", "ipc", "copies", "cp/kuop"
            );
            for (name, stats) in &rows {
                println!(
                    "{:<14} {:>10} {:>10} {:>8.3} {:>9} {:>9.1}",
                    name,
                    stats.committed_uops,
                    stats.cycles,
                    stats.ipc(),
                    stats.copies_generated,
                    stats.copies_per_kuop()
                );
            }
            let commits: Vec<u64> = rows.iter().map(|(_, s)| s.committed_uops).collect();
            if commits.windows(2).any(|w| w[0] != w[1]) {
                return Err(format!(
                    "schemes committed different micro-op counts over the same trace: {commits:?}"
                ));
            }
            println!(
                "all schemes committed {} uops over the same stored stream",
                commits[0]
            );
            Ok(())
        }
        "batch" => {
            if args.positional.is_empty() {
                return Err("batch needs at least one <file>".into());
            }
            let machine = machine_for(args.clusters);
            let clusters = machine.num_clusters as u32;
            let limits = args.uops.map_or(RunLimits::unlimited(), RunLimits::uops);
            let jobs: Vec<EvalJob> = args
                .positional
                .iter()
                .flat_map(|file| {
                    Configuration::table3()
                        .into_iter()
                        .map(|config| EvalJob::Trace {
                            path: file.into(),
                            config,
                            limits,
                        })
                })
                .collect();
            let resilience = try_resilience_from_args(rest)?;
            let finished = AtomicUsize::new(0);
            let total = jobs.len();
            let t0 = std::time::Instant::now();
            let progress = |i: usize, outcome: &CellOutcome| {
                let n = finished.fetch_add(1, Ordering::Relaxed) + 1;
                match &outcome.stats {
                    Ok(stats) => println!(
                        "[{n}/{total}] {}: ipc={:.3} copies={} ({:.2} ms, {:.0}k uops/s)",
                        jobs[i].label(clusters),
                        stats.ipc(),
                        stats.copies_generated,
                        outcome.wall.as_secs_f64() * 1e3,
                        outcome.uops_per_sec() / 1e3,
                    ),
                    Err(e) => {
                        println!("[{n}/{total}] {}: ERROR {e}", jobs[i].label(clusters))
                    }
                }
            };
            let driver = EvalDriver::new(&machine).threads(threads());
            let (outcomes, report): (_, Option<BatchReport>) = if resilience.active() {
                let (outcomes, report) = driver.run_resilient(&jobs, &resilience.opts, progress);
                (outcomes, Some(report))
            } else {
                (driver.run_streaming(&jobs, progress), None)
            };
            let wall = t0.elapsed();

            // Per-file identical-commit check (the `compare` contract).
            let stride = Configuration::table3().len();
            let mut failures = Vec::new();
            let mut total_uops = 0u64;
            for (fi, file) in args.positional.iter().enumerate() {
                let cells = fi * stride..(fi + 1) * stride;
                let row = &outcomes[cells.clone()];
                let mut commits = Vec::with_capacity(stride);
                for (job, outcome) in jobs[cells].iter().zip(row) {
                    match &outcome.stats {
                        Ok(stats) => {
                            commits.push(stats.committed_uops);
                            total_uops += stats.committed_uops;
                        }
                        Err(e) => {
                            // Under the resilient engine failed cells are
                            // expected (already printed as ERROR lines and
                            // tallied in the report); without it they are
                            // fatal.
                            if report.is_none() {
                                failures.push(format!("{}: {e}", job.label(clusters)));
                            }
                        }
                    }
                }
                // Bit-identity must hold across whichever schemes
                // succeeded, chaos or not.
                if commits.windows(2).any(|w| w[0] != w[1]) {
                    failures.push(format!(
                        "{file}: schemes committed different micro-op counts: {commits:?}"
                    ));
                }
            }
            println!(
                "batch: {} cells over {} file(s) in {:.2}s ({:.0}k uops/s aggregate)",
                total,
                args.positional.len(),
                wall.as_secs_f64(),
                total_uops as f64 / wall.as_secs_f64().max(1e-9) / 1e3,
            );
            if let Some(report) = &report {
                println!("batch: {}", report.summary());
            }
            if failures.is_empty() {
                Ok(())
            } else {
                Err(failures.join("\n"))
            }
        }
        "import" => {
            let [kernel, out] = args.positional.as_slice() else {
                return Err("import needs <kernel> <out-file>".into());
            };
            let program = import_kernel_file(kernel).map_err(|e| e.to_string())?;
            let params = KernelParams::base_int();
            let mut expander = TraceExpander::new(&program, &params, args.seed);
            // The expander is endless, so the budget is the exact record
            // count and can be declared in the header up front.
            let budget = args.budget();
            let mut writer = TraceWriter::create(out, &program, codec_for(&args), Some(budget))
                .map_err(|e| e.to_string())?;
            expander
                .capture(budget, |u| writer.write_uop(u))
                .map_err(|e| e.to_string())?;
            let n = writer.finish().map_err(|e| e.to_string())?;
            println!(
                "imported {} ({} regions, {} static uops) and recorded {n} dynamic uops to {out}",
                program.name,
                program.regions.len(),
                program.static_len()
            );
            Ok(())
        }
        other => Err(format!("unknown command {other}")),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("trace_replay: {msg}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
