//! Regenerates **Table 1**: steering-unit complexity comparison between the
//! hardware-only occupancy-aware scheme and the hybrid virtual-clustering
//! scheme — the qualitative component table plus this reproduction's
//! quantitative structural estimates.

use virtclust_bench::write_result;
use virtclust_steer::table1_markdown;
use virtclust_uarch::MachineConfig;

fn main() {
    let md2 = table1_markdown(&MachineConfig::paper_2cluster(), 2);
    let md4 = table1_markdown(&MachineConfig::paper_4cluster(), 2);
    println!("## Table 1 — steering complexity, 2-cluster machine (2 VCs)\n");
    println!("{md2}");
    println!("## Table 1 (extension) — 4-cluster machine (2 VCs)\n");
    println!("{md4}");
    let out = format!(
        "## Table 1 — 2-cluster machine (2 VCs)\n\n{md2}\n## 4-cluster machine (2 VCs)\n\n{md4}"
    );
    let path = write_result("table1.md", &out);
    eprintln!("wrote {}", path.display());
}
