//! Regenerates **Table 3**: the five steering configurations evaluated in
//! the paper, with the software pass and hardware policy each one maps to
//! in this reproduction.

use virtclust_bench::write_result;
use virtclust_core::Configuration;

fn main() {
    let rows = [
        (
            Configuration::Op,
            "Occupancy-aware steering [González et al. '04]",
        ),
        (
            Configuration::OneCluster,
            "Every instruction goes to one cluster",
        ),
        (
            Configuration::Ob,
            "Static-placement dynamic-issue operation-based steering [Nagarajan et al. '04]",
        ),
        (
            Configuration::Rhop,
            "Region-based hierarchical operation partitioning [Chu et al. '03]",
        ),
        (
            Configuration::Vc { num_vcs: 2 },
            "Our hybrid steering based on virtual clustering",
        ),
    ];
    let mut md = String::from(
        "| Configuration | Description | Software pass | Hardware policy |\n|---|---|---|---|\n",
    );
    for (config, desc) in rows {
        md.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            config.name(2),
            desc,
            config.software_pass(2).name(),
            config.make_policy().name(),
        ));
    }
    println!("## Table 3 — evaluated configurations\n");
    println!("{md}");
    let path = write_result("table3.md", &md);
    eprintln!("wrote {}", path.display());
}
