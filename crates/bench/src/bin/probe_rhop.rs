use virtclust_compiler::rhop::{rhop_place_region, RhopConfig};
use virtclust_ddg::{Criticality, Ddg};
use virtclust_uarch::LatencyModel;
use virtclust_workloads::spec2000_points;

fn main() {
    let points = spec2000_points();
    let lat = LatencyModel::default();
    for name in ["gzip-1", "crafty", "galgel"] {
        let point = points.iter().find(|p| p.name == name).unwrap();
        let program = point.build_program();
        for (tol, bonus) in [(0.04f64, 2.0f64), (0.15, 4.0)] {
            let mut total_cut = 0usize;
            let mut imb = 0.0;
            let mut n_regions = 0;
            for region in &program.regions {
                let mut r = region.clone();
                let mut cfg = RhopConfig::new(2);
                cfg.balance_tolerance = tol;
                cfg.criticality_bonus = bonus;
                let parts = rhop_place_region(&mut r, &lat, &cfg);
                let ddg = Ddg::from_region(&r, &lat);
                let _ = Criticality::compute(&ddg);
                total_cut += parts.edge_cut(&ddg);
                let w: Vec<f64> = (0..ddg.n() as u32).map(|i| ddg.latency(i) as f64).collect();
                imb += parts.imbalance(&w);
                n_regions += 1;
            }
            println!(
                "{name} tol={tol} bonus={bonus}: cut={total_cut} mean_imb={:.3}",
                imb / n_regions as f64
            );
        }
    }
}
