//! The evaluation-service daemon: start a `virtclust-svc` server on a
//! Unix or TCP socket and run until a client sends a `Shutdown` frame.
//!
//! ```sh
//! cargo run --release -p virtclust-bench --bin serve -- --unix /tmp/vc.sock
//! cargo run --release -p virtclust-bench --bin serve -- --tcp 127.0.0.1:7077
//! ```
//!
//! Flags:
//!
//! * `--unix PATH` | `--tcp ADDR` — where to listen (exactly one);
//! * `--clusters 2|4|8` — machine preset (default 2);
//! * `--queue-cap N` / `--quota N` — admission bounds (submits beyond
//!   either bound bounce with `Busy`; nothing is buffered);
//! * `--retries N`, `--deadline-ms MS`, `--chaos SCHEDULE` — batch-engine
//!   resilience every job runs under (same flags as `probe_ipc`);
//! * `VIRTCLUST_THREADS` — worker-pool size (0/unset = all CPUs).
//!
//! On shutdown the daemon prints one JSON accounting line to stdout:
//! `{"daemon":"serve","accepted":…,"rejected":…,"completed":…}` — the CI
//! smoke job asserts exact accounting against `loadgen`'s view.

use virtclust_bench::{resilience_from_args, threads};
use virtclust_svc::ServerBuilder;
use virtclust_uarch::MachineConfig;

fn value_of<'a>(argv: &'a [String], flag: &str) -> Option<&'a String> {
    argv.iter().position(|a| a == flag).map(|i| {
        argv.get(i + 1)
            .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
    })
}

fn usage(msg: &str) -> ! {
    eprintln!("serve: {msg}");
    eprintln!("usage: serve (--unix PATH | --tcp ADDR) [--clusters 2|4|8] [--queue-cap N] [--quota N] [--retries N] [--deadline-ms MS] [--chaos SCHEDULE]");
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let machine = match value_of(&argv, "--clusters") {
        None => MachineConfig::paper_2cluster(),
        Some(v) => v
            .parse()
            .ok()
            .and_then(virtclust_bench::cluster_preset)
            .unwrap_or_else(|| usage(&format!("--clusters must be 2, 4 or 8, got {v}"))),
    };
    let resilience = resilience_from_args(&argv, "serve");
    let parse_n = |flag: &str| {
        value_of(&argv, flag).map(|v| {
            v.parse::<usize>()
                .unwrap_or_else(|_| usage(&format!("{flag} must be a count, got {v}")))
        })
    };
    let mut builder = ServerBuilder::new(&machine)
        .threads(threads())
        .options(resilience.opts);
    if let Some(n) = parse_n("--queue-cap") {
        builder = builder.queue_cap(n);
    }
    if let Some(n) = parse_n("--quota") {
        builder = builder.client_quota(n);
    }
    let mut server = builder.start();

    match (value_of(&argv, "--unix"), value_of(&argv, "--tcp")) {
        (Some(path), None) => {
            if let Err(e) = server.serve_unix(path) {
                eprintln!("serve: cannot listen on {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("serve: listening on unix socket {path}");
        }
        (None, Some(addr)) => match server.serve_tcp(addr) {
            Ok(bound) => eprintln!("serve: listening on tcp {bound}"),
            Err(e) => {
                eprintln!("serve: cannot listen on {addr}: {e}");
                std::process::exit(1);
            }
        },
        _ => usage("exactly one of --unix PATH or --tcp ADDR is required"),
    }

    // Runs until a client's Shutdown frame stops the scheduler; then the
    // worker pool drains, the reactor flushes and both threads join.
    let stats = match server.join() {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("serve: service error: {e}");
            std::process::exit(1);
        }
    };
    // Accounting line for the CI smoke job: every accepted job was
    // completed (with some outcome) by the time the pool drained.
    println!(
        "{{\"daemon\":\"serve\",\"accepted\":{},\"rejected\":{},\"completed\":{}}}",
        stats.accepted, stats.rejected, stats.completed,
    );
}
