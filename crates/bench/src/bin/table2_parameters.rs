//! Regenerates **Table 2**: the architectural parameters of the simulated
//! machine, as actually resolved by the simulator's configuration.

use virtclust_bench::write_result;
use virtclust_uarch::MachineConfig;

fn main() {
    let cfg = MachineConfig::paper_2cluster();
    cfg.validate().expect("paper configuration must validate");
    let md = cfg.table2_markdown();
    println!("## Table 2 — architectural parameters (baseline 2-cluster machine)\n");
    println!("{md}");
    let path = write_result("table2.md", &md);
    eprintln!("wrote {}", path.display());
}
