//! Diagnostic probe: per-point IPC and bottleneck stats under OP vs
//! one-cluster. Not part of the paper reproduction; used to calibrate the
//! workload suite (documented in DESIGN.md).

use virtclust_bench::uop_budget;
use virtclust_core::{run_point, Configuration};
use virtclust_uarch::MachineConfig;
use virtclust_workloads::spec2000_points;

fn main() {
    let uops = uop_budget(20_000);
    let machine = MachineConfig::paper_2cluster();
    println!(
        "{:<10} {:>6} {:>6} {:>7} {:>7} {:>7} {:>8} {:>8} {:>7}",
        "point", "ipcOP", "ipc1c", "mispr%", "l1hit%", "cp/ku", "iqstall", "starved", "robfull"
    );
    for point in spec2000_points().iter().filter(|p| {
        [
            "gzip-1", "gcc-1", "mcf", "crafty", "eon-1", "vpr-2", "galgel", "swim", "mesa",
            "art-1", "sixtrack", "equake",
        ]
        .contains(&p.name.as_str())
    }) {
        let op = run_point(point, &Configuration::Op, &machine, uops);
        let one = run_point(point, &Configuration::OneCluster, &machine, uops);
        println!(
            "{:<10} {:>6.2} {:>6.2} {:>6.2} {:>7.1} {:>7.1} {:>8} {:>8} {:>7}",
            point.name,
            op.ipc(),
            one.ipc(),
            100.0 * op.mispredict_rate(),
            100.0 * op.l1_hit_rate(),
            op.copies_per_kuop(),
            op.allocation_stalls(),
            op.frontend_starved_cycles,
            op.dispatch_stalls[0],
        );
    }
}
