//! Diagnostic probe: per-point IPC and bottleneck stats. Not part of the
//! paper reproduction; used to calibrate the workload suite (documented in
//! DESIGN.md) and to pin perf baselines.
//!
//! Two output modes:
//!
//! * default — a human-readable table of OP vs one-cluster bottleneck
//!   stats over a 12-point calibration subset;
//! * `--json` — one machine-readable line per (point × Table 3 scheme)
//!   over the **full 40-point suite** (or a single point with
//!   `--point NAME` — the CI debug-mirror smoke runs one cell per cluster
//!   count that way), run as one [`EvalDriver`] batch (per-worker session
//!   reuse):
//!   `{"point":"gzip-1","scheme":"OP","ipc":0.733,"copies":1408,"uops":20000,
//!   "stalls":{"rob-full":…,…},"frontend_starved":…,"l1_hit":0.97,
//!   "l2_hit":0.41,"store_forwards":…,"uops_per_sec":1445000}`.
//!   Everything except `uops_per_sec` is deterministic (the CI
//!   bit-identity gate diffs those fields across cycle-skipping modes);
//!   `uops_per_sec` is the cell's wall-clock simulation throughput on its
//!   worker (only meaningful with `VIRTCLUST_THREADS` ≤ physical cores).
//!   A final aggregate line sums the whole batch. `--metrics-out FILE`
//!   additionally writes per-job scheduling metrics (queue wait, run span,
//!   worker, latency percentiles) as JSONL. With `--retries N`,
//!   `--deadline-ms MS` and/or `--chaos SCHEDULE` (or
//!   `VIRTCLUST_FAILPOINTS`) the batch runs resiliently: failed cells
//!   become `{"point":…,"scheme":…,"error":…}` rows, the degraded-
//!   completion summary goes to stderr, and the process still exits 0 —
//!   the CI chaos job's process-stays-alive demonstration. This feeds
//!   `results/BASELINES.md` (see ROADMAP "Perf baselines"):
//!
//!   ```sh
//!   VIRTCLUST_UOPS=20000 VIRTCLUST_THREADS=1 \
//!     cargo run --release -p virtclust-bench --bin probe_ipc -- --json
//!   ```

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use virtclust_bench::{resilience_from_args, threads, uop_budget, Resilience};
use virtclust_core::{run_point, BatchMetrics, Configuration, EvalDriver, EvalJob};
use virtclust_sim::{SimStats, StallReason};
use virtclust_uarch::MachineConfig;
use virtclust_workloads::spec2000_points;

/// The per-cell fields `SimStats` carries beyond IPC/copies: the
/// dispatch-stall breakdown (by `StallReason` display name), front-end
/// starvation, cache hit rates and store forwarding. All deterministic —
/// the CI bit-identity gate diffs them across skip modes.
fn detail_fields(stats: &SimStats) -> String {
    let mut out = String::with_capacity(160);
    out.push_str(",\"stalls\":{");
    for (i, reason) in StallReason::ALL.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{reason}\":{}",
            stats.dispatch_stalls[reason.index()]
        );
    }
    let _ = write!(
        out,
        "}},\"frontend_starved\":{},\"l1_hit\":{:.4},\"l2_hit\":{:.4},\"store_forwards\":{}",
        stats.frontend_starved_cycles,
        stats.l1_hit_rate(),
        stats.l2_hit_rate(),
        stats.store_forwards,
    );
    out
}

/// Write per-job scheduling metrics as JSONL: one line per job plus an
/// aggregate (wall clock, utilization, latency percentiles).
fn write_metrics(path: &Path, labels: &[String], metrics: &BatchMetrics) {
    let mut out = String::new();
    for (label, m) in labels.iter().zip(&metrics.jobs) {
        let _ = writeln!(
            out,
            "{{\"job\":\"{label}\",\"worker\":{},\"queued_us\":{},\"run_us\":{},\"done_us\":{}}}",
            m.worker,
            m.queued.as_micros(),
            m.run.as_micros(),
            m.done_at.as_micros(),
        );
    }
    // The success/failed split keeps this row well-formed even when every
    // job failed under chaos: the success percentiles report 0 (empty
    // histogram), and the failed-side percentiles carry the latency signal
    // the degraded run still has.
    let _ = writeln!(
        out,
        "{{\"aggregate\":\"batch\",\"jobs\":{},\"ok\":{},\"failed\":{},\"workers\":{},\"wall_us\":{},\"utilization\":{:.3},\"latency_p50_us\":{},\"latency_p99_us\":{},\"failed_p50_us\":{},\"failed_p99_us\":{}}}",
        metrics.jobs.len(),
        metrics.latency_hist.count(),
        metrics.failed_latency_hist.count(),
        metrics.workers,
        metrics.wall.as_micros(),
        metrics.utilization(),
        metrics.latency_percentile(0.5),
        metrics.latency_percentile(0.99),
        metrics.failed_latency_hist.percentile(0.5),
        metrics.failed_latency_hist.percentile(0.99),
    );
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("probe_ipc: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
}

fn json_mode(
    uops: u64,
    machine: &MachineConfig,
    point_filter: Option<&str>,
    metrics_out: Option<&Path>,
    resilience: &Resilience,
) {
    let mut points = spec2000_points();
    if let Some(name) = point_filter {
        points.retain(|p| p.name == name);
        if points.is_empty() {
            eprintln!("probe_ipc: --point {name} matches no suite point");
            std::process::exit(2);
        }
    }
    let configs = Configuration::table3();
    // Row-major (point × scheme) job list — the batch path.
    let jobs: Vec<EvalJob> = points
        .iter()
        .flat_map(|point| {
            configs.iter().map(|config| EvalJob::Point {
                point: point.clone(),
                config: *config,
                uops,
            })
        })
        .collect();
    let start = Instant::now();
    let driver = EvalDriver::new(machine).threads(threads());
    // With resilience/chaos in play, the degraded-completion path: one
    // erroring/panicking cell is one error row, the process stays alive
    // and exits 0 with a BatchReport summary on stderr.
    let (outcomes, metrics) = if resilience.active() {
        let (outcomes, report) = driver.run_resilient(&jobs, &resilience.opts, |_, _| {});
        eprintln!("probe_ipc: {}", report.summary());
        (outcomes, report.metrics)
    } else {
        driver.run_with_metrics(&jobs, |_, _| {})
    };
    let wall = start.elapsed();
    if let Some(path) = metrics_out {
        let clusters = machine.num_clusters as u32;
        let labels: Vec<String> = jobs.iter().map(|j| j.label(clusters)).collect();
        write_metrics(path, &labels, &metrics);
    }
    let mut total_uops = 0u64;
    let mut ok_cells = 0u64;
    for (pi, point) in points.iter().enumerate() {
        for (ci, config) in configs.iter().enumerate() {
            let outcome = &outcomes[pi * configs.len() + ci];
            let scheme = config.name(machine.num_clusters as u32);
            match &outcome.stats {
                Ok(stats) => {
                    total_uops += stats.committed_uops;
                    ok_cells += 1;
                    println!(
                        "{{\"point\":\"{}\",\"scheme\":\"{scheme}\",\"ipc\":{:.4},\"copies\":{},\"uops\":{}{},\"uops_per_sec\":{:.0}}}",
                        point.name,
                        stats.ipc(),
                        stats.copies_generated,
                        stats.committed_uops,
                        detail_fields(stats),
                        outcome.uops_per_sec(),
                    );
                }
                Err(e) if resilience.active() => {
                    println!(
                        "{{\"point\":\"{}\",\"scheme\":\"{scheme}\",\"error\":\"{}\"}}",
                        point.name,
                        e.to_string().replace('"', "'"),
                    );
                }
                Err(e) => {
                    // Without resilience flags, point jobs cannot fail.
                    panic!("point job failed without chaos armed: {e}");
                }
            }
        }
    }
    // Exact ok/failed accounting; the throughput quotient stays finite
    // (and 0) even when every cell failed, so an all-fail chaos run still
    // emits one well-formed aggregate row and exits 0.
    println!(
        "{{\"aggregate\":\"table3\",\"cells\":{},\"ok\":{ok_cells},\"failed\":{},\"uops\":{},\"wall_s\":{:.3},\"uops_per_sec\":{:.0}}}",
        outcomes.len(),
        outcomes.len() as u64 - ok_cells,
        total_uops,
        wall.as_secs_f64(),
        total_uops as f64 / wall.as_secs_f64().max(1e-9),
    );
}

fn table_mode(uops: u64, machine: &MachineConfig) {
    println!(
        "{:<10} {:>6} {:>6} {:>7} {:>7} {:>7} {:>8} {:>8} {:>7}",
        "point", "ipcOP", "ipc1c", "mispr%", "l1hit%", "cp/ku", "iqstall", "starved", "robfull"
    );
    for point in spec2000_points().iter().filter(|p| {
        [
            "gzip-1", "gcc-1", "mcf", "crafty", "eon-1", "vpr-2", "galgel", "swim", "mesa",
            "art-1", "sixtrack", "equake",
        ]
        .contains(&p.name.as_str())
    }) {
        let op = run_point(point, &Configuration::Op, machine, uops);
        let one = run_point(point, &Configuration::OneCluster, machine, uops);
        println!(
            "{:<10} {:>6.2} {:>6.2} {:>6.2} {:>7.1} {:>7.1} {:>8} {:>8} {:>7}",
            point.name,
            op.ipc(),
            one.ipc(),
            100.0 * op.mispredict_rate(),
            100.0 * op.l1_hit_rate(),
            op.copies_per_kuop(),
            op.allocation_stalls(),
            op.frontend_starved_cycles,
            op.dispatch_stalls[0],
        );
    }
}

/// Parse `--clusters 2|4|8` (default 2) from `argv`, returning the machine
/// preset. A `--clusters` with a missing or unsupported value is an error,
/// not a silent 2-cluster fallback.
fn machine_from_args(argv: &[String]) -> MachineConfig {
    let Some(i) = argv.iter().position(|a| a == "--clusters") else {
        return MachineConfig::paper_2cluster();
    };
    argv.get(i + 1)
        .and_then(|v| v.parse().ok())
        .and_then(virtclust_bench::cluster_preset)
        .unwrap_or_else(|| {
            eprintln!(
                "probe_ipc: --clusters must be 2, 4 or 8, got {}",
                argv.get(i + 1).map_or("nothing", String::as_str)
            );
            std::process::exit(2);
        })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let json = argv.iter().any(|a| a == "--json");
    let uops = uop_budget(20_000);
    let machine = machine_from_args(&argv);
    let resilience = resilience_from_args(&argv, "probe_ipc");
    let point_filter = argv.iter().position(|a| a == "--point").map(|i| {
        argv.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("probe_ipc: --point needs a suite point name");
            std::process::exit(2);
        })
    });
    let metrics_out = argv.iter().position(|a| a == "--metrics-out").map(|i| {
        argv.get(i + 1)
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| {
                eprintln!("probe_ipc: --metrics-out needs a file path");
                std::process::exit(2);
            })
    });
    if json {
        json_mode(
            uops,
            &machine,
            point_filter.as_deref(),
            metrics_out.as_deref(),
            &resilience,
        );
    } else {
        if point_filter.is_some() || metrics_out.is_some() || resilience.flags {
            eprintln!(
                "probe_ipc: --point/--metrics-out/--retries/--deadline-ms/--chaos only apply to --json mode"
            );
            std::process::exit(2);
        }
        table_mode(uops, &machine);
    }
}
