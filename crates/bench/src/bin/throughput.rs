//! Session-reuse throughput harness: measures simulated micro-ops per
//! wall-clock second **with and without** session reuse, per Table 3
//! scheme, against the committed numbers in `results/BASELINES.md`.
//!
//! ```text
//! throughput [--uops N] [--runs R] [--clusters 2|4|8] [--point NAME]
//!            [--trace FILE] [--stages]
//! ```
//!
//! Default mode expands a suite point (`--point`, default `gzip-1`; any
//! Fig. 5 name, e.g. `mcf` for an idle-heavy memory-bound stream) once
//! per scheme into an in-memory trace, then runs it `R` times two ways:
//!
//! * **fresh** — a new [`Machine`] per run (the pre-refactor cost model:
//!   every run reallocates caches, predictor tables, the event calendar);
//! * **reused** — one [`SimSession`] reset per run, with the trace
//!   [`rewound`](virtclust_uarch::TraceSource::rewind) instead of rebuilt.
//!
//! Both modes must produce bit-identical statistics (checked every run);
//! the report is the throughput of each and the speedup. `--trace FILE`
//! instead measures batched replay of a stored trace through
//! [`EvalDriver`] (`R` × Table 3 cells, readers parsed once and rewound).
//!
//! `--stages` instead reports the per-stage wall-time share of a cycle
//! (events+wakeup / commit / store-drain / memory / issue / dispatch /
//! fetch) via [`SimSession::step_timed`] — the instrumented step loop the
//! plain run never pays for — so perf PRs can point at the next
//! bottleneck.
//!
//! In `gzip-1` point mode on the 2-cluster machine the report ends with a
//! delta against the committed per-scheme mean in `results/BASELINES.md`
//! (other points have no committed pin).
//!
//! `--uops` defaults to `VIRTCLUST_UOPS` or 20 000; `--runs` defaults
//! to 8. Results are also written to `results/throughput.md`.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use virtclust_bench::{results_dir, threads, uop_budget, write_result};
use virtclust_core::{Configuration, EvalDriver, EvalJob};
use virtclust_sim::{simulate, RunLimits, SimSession, StageTimers};
use virtclust_trace::TraceReader;
use virtclust_uarch::{DynUop, MachineConfig, SliceTrace, TraceSource};
use virtclust_workloads::spec2000_points;

struct Args {
    uops: u64,
    runs: u64,
    clusters: usize,
    point: String,
    trace: Option<String>,
    stages: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        uops: uop_budget(20_000),
        runs: 8,
        clusters: 2,
        point: "gzip-1".into(),
        trace: None,
        stages: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--uops" => {
                args.uops = value("--uops")?
                    .parse()
                    .map_err(|_| "--uops needs an integer".to_string())?
            }
            "--runs" => {
                args.runs = value("--runs")?
                    .parse()
                    .map_err(|_| "--runs needs an integer".to_string())?
            }
            "--clusters" => {
                let v = value("--clusters")?;
                args.clusters = v
                    .parse()
                    .ok()
                    .filter(|&n| virtclust_bench::cluster_preset(n).is_some())
                    .ok_or(format!("--clusters must be 2, 4 or 8, got {v}"))?;
            }
            "--point" => {
                let v = value("--point")?;
                if !spec2000_points().iter().any(|p| p.name == v) {
                    return Err(format!("--point: unknown suite point {v}"));
                }
                args.point = v;
            }
            "--trace" => args.trace = Some(value("--trace")?),
            "--stages" => args.stages = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.runs == 0 {
        return Err("--runs must be at least 1".into());
    }
    Ok(args)
}

/// Expand `uops` micro-ops of a suite point under `config`'s compiler pass
/// into an in-memory trace (hints baked in, like a frozen per-scheme
/// stream).
fn expand_scheme(
    config: &Configuration,
    machine: &MachineConfig,
    uops: u64,
    point: &str,
) -> Vec<DynUop> {
    let point = spec2000_points()
        .into_iter()
        .find(|p| p.name == point)
        .expect("suite point validated in parse_args");
    let mut program = point.build_program();
    config
        .software_pass(machine.num_clusters as u32)
        .apply(&mut program, &machine.latencies);
    let mut expander = point.expander(&program);
    (0..uops)
        .map(|_| expander.next_uop().expect("endless stream"))
        .collect()
}

/// Parse the committed per-scheme mean (fresh, reused uops/s) from the
/// first `| **mean** | … |` row of `results/BASELINES.md`, if present.
/// Numbers may use spaces as thousands separators.
fn committed_mean() -> Option<(f64, f64)> {
    let text = std::fs::read_to_string(results_dir().join("BASELINES.md")).ok()?;
    let row = text.lines().find(|l| l.starts_with("| **mean**"))?;
    let mut nums = row.split("**").filter_map(|cell| {
        let digits: String = cell.chars().filter(char::is_ascii_digit).collect();
        (!digits.is_empty() && !cell.contains('%')).then(|| digits.parse::<f64>().ok())?
    });
    Some((nums.next()?, nums.next()?))
}

fn point_mode(args: &Args, machine: &MachineConfig) -> Result<String, String> {
    let clusters = machine.num_clusters as u32;
    let mut report = String::from(
        "| scheme | fresh machine/run (uops/s) | reused session (uops/s) | speedup |\n|---|---|---|---|\n",
    );
    let mut session = SimSession::new(machine);
    let (mut sum_fresh, mut sum_reused) = (0.0f64, 0.0f64);
    for config in Configuration::table3() {
        let uops = expand_scheme(&config, machine, args.uops, &args.point);

        // Fresh: a new machine (and a new trace view) per run.
        let t0 = Instant::now();
        let mut fresh_stats = None;
        for _ in 0..args.runs {
            let mut trace = SliceTrace::new(&uops);
            let mut policy = config.make_policy();
            let stats = simulate(
                machine,
                &mut trace,
                policy.as_mut(),
                &RunLimits::unlimited(),
            );
            fresh_stats.get_or_insert(stats);
        }
        let fresh_wall = t0.elapsed().as_secs_f64();
        let fresh_stats = fresh_stats.expect("runs >= 1");

        // Reused: one session, one rewindable trace, one policy.
        let mut trace = SliceTrace::new(&uops);
        let mut policy = config.make_policy();
        let t0 = Instant::now();
        for _ in 0..args.runs {
            trace.rewind().map_err(|e| e.to_string())?;
            let stats = session.simulate(
                machine,
                &mut trace,
                policy.as_mut(),
                &RunLimits::unlimited(),
            );
            if stats != fresh_stats {
                return Err(format!(
                    "{}: reused session diverged from fresh machine",
                    config.name(clusters)
                ));
            }
        }
        let reused_wall = t0.elapsed().as_secs_f64();

        let total = (fresh_stats.committed_uops * args.runs) as f64;
        let fresh_ups = total / fresh_wall.max(1e-9);
        let reused_ups = total / reused_wall.max(1e-9);
        sum_fresh += fresh_ups;
        sum_reused += reused_ups;
        let _ = writeln!(
            report,
            "| {} | {:.0} | {:.0} | {:+.1}% |",
            config.name(clusters),
            fresh_ups,
            reused_ups,
            (reused_ups / fresh_ups - 1.0) * 100.0,
        );
    }
    let n = Configuration::table3().len() as f64;
    let _ = writeln!(
        report,
        "| **mean** | **{:.0}** | **{:.0}** | **{:+.1}%** |",
        sum_fresh / n,
        sum_reused / n,
        (sum_reused / sum_fresh - 1.0) * 100.0,
    );
    // Delta against the committed reference (2-cluster table only — that
    // is what BASELINES.md pins). Informational: wall-clock comparisons
    // across hosts are noise, but on the CI runner a large regression
    // shows up here without digging through two tables.
    if machine.num_clusters == 2 && args.point == "gzip-1" {
        match committed_mean() {
            Some((base_fresh, base_reused)) => {
                let _ = writeln!(
                    report,
                    "\nvs committed baseline (results/BASELINES.md, mean uops/s): \
                     fresh {:.0} -> {:.0} ({:+.1}%), reused {:.0} -> {:.0} ({:+.1}%)",
                    base_fresh,
                    sum_fresh / n,
                    (sum_fresh / n / base_fresh - 1.0) * 100.0,
                    base_reused,
                    sum_reused / n,
                    (sum_reused / n / base_reused - 1.0) * 100.0,
                );
            }
            None => {
                let _ = writeln!(
                    report,
                    "\n(no committed mean row found in results/BASELINES.md — delta skipped)"
                );
            }
        }
    }
    Ok(report)
}

/// `--stages`: run each Table 3 scheme through the instrumented
/// [`SimSession::step_timed`] loop and report where the wall-clock cycle
/// budget goes, stage by stage.
fn stages_mode(args: &Args, machine: &MachineConfig) -> Result<String, String> {
    let clusters = machine.num_clusters as u32;
    let mut report = String::from("| scheme | cycles |");
    for name in StageTimers::NAMES {
        let _ = write!(report, " {name} |");
    }
    report.push_str("\n|---|---|");
    report.push_str(&"---|".repeat(StageTimers::NUM_STAGES));
    report.push('\n');
    let mut session = SimSession::new(machine);
    let mut totals = StageTimers::default();
    for config in Configuration::table3() {
        let uops = expand_scheme(&config, machine, args.uops, &args.point);
        let mut trace = SliceTrace::new(&uops);
        let mut policy = config.make_policy();
        let mut timers = StageTimers::default();
        for _ in 0..args.runs {
            trace.rewind().map_err(|e| e.to_string())?;
            session.reset(machine);
            policy.reset();
            loop {
                session.step_timed(
                    &mut trace,
                    policy.as_mut(),
                    &RunLimits::unlimited(),
                    &mut timers,
                );
                if session.done() {
                    break;
                }
            }
        }
        let _ = write!(report, "| {} | {} |", config.name(clusters), timers.cycles);
        for i in 0..StageTimers::NUM_STAGES {
            let _ = write!(report, " {:.1}% |", 100.0 * timers.share(i));
        }
        report.push('\n');
        for (bucket, add) in totals.buckets.iter_mut().zip(timers.buckets) {
            *bucket += add;
        }
        totals.cycles += timers.cycles;
    }
    let _ = write!(report, "| **all schemes** | {} |", totals.cycles);
    for i in 0..StageTimers::NUM_STAGES {
        let _ = write!(report, " **{:.1}%** |", 100.0 * totals.share(i));
    }
    let _ = writeln!(
        report,
        "\n\nShares are wall-clock per stage over {} run(s)/scheme at {} uops/cell \
         ({:.0} ns/cycle all-in); the plain (untimed) step loop contains none of \
         this instrumentation.",
        args.runs,
        args.uops,
        totals.total().as_nanos() as f64 / totals.cycles.max(1) as f64,
    );
    Ok(report)
}

fn trace_mode(args: &Args, machine: &MachineConfig, file: &str) -> Result<String, String> {
    // Sanity: the file parses and declares a stream.
    let reader = TraceReader::open(file).map_err(|e| e.to_string())?;
    let declared = reader.declared_len();
    drop(reader);
    let jobs: Vec<EvalJob> = (0..args.runs)
        .flat_map(|_| {
            Configuration::table3()
                .into_iter()
                .map(|config| EvalJob::Trace {
                    path: file.into(),
                    config,
                    limits: RunLimits::unlimited(),
                })
        })
        .collect();
    let t0 = Instant::now();
    let outcomes = EvalDriver::new(machine).threads(threads()).run(&jobs);
    let wall = t0.elapsed().as_secs_f64();
    let mut total_uops = 0u64;
    for outcome in &outcomes {
        total_uops += outcome
            .stats
            .as_ref()
            .map_err(|e| e.to_string())?
            .committed_uops;
    }
    Ok(format!(
        "batched replay of {file} (declared {declared:?} uops): {} cells, {total_uops} uops \
         in {wall:.2}s = {:.0} uops/s aggregate (readers parsed once per worker, rewound per cell)\n",
        outcomes.len(),
        total_uops as f64 / wall.max(1e-9),
    ))
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = parse_args(argv)?;
    let machine = virtclust_bench::cluster_preset(args.clusters).expect("validated in parse_args");
    let header = format!(
        "# Simulation throughput ({} clusters, {} point, {} uops/cell, {} runs/scheme)\n\n\
         Wall-clock numbers; compare only against runs on the same host.\n\
         Committed reference: results/BASELINES.md.\n\n",
        machine.num_clusters, args.point, args.uops, args.runs,
    );
    let body = match (&args.trace, args.stages) {
        (Some(file), false) => trace_mode(&args, &machine, file)?,
        (None, true) => stages_mode(&args, &machine)?,
        (Some(_), true) => return Err("--stages and --trace are mutually exclusive".into()),
        (None, false) => point_mode(&args, &machine)?,
    };
    let out = format!("{header}{body}");
    print!("{out}");
    let path = write_result("throughput.md", &out);
    println!("\nwritten to {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("throughput: {msg}");
            ExitCode::FAILURE
        }
    }
}
