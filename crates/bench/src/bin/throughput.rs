//! Session-reuse throughput harness: measures simulated micro-ops per
//! wall-clock second **with and without** session reuse, per Table 3
//! scheme, against the committed numbers in `results/BASELINES.md`.
//!
//! ```text
//! throughput [--uops N] [--runs R] [--clusters 2|4|8] [--point NAME]
//!            [--trace FILE] [--stages] [--timeline FILE] [--observe]
//!            [--every K] [--json-out FILE]
//!            [--retries N] [--deadline-ms MS] [--chaos SCHEDULE]
//! ```
//!
//! Default mode expands a suite point (`--point`, default `gzip-1`; any
//! Fig. 5 name, e.g. `mcf` for an idle-heavy memory-bound stream) once
//! per scheme into an in-memory trace, then runs it `R` times two ways:
//!
//! * **fresh** — a new [`Machine`] per run (the pre-refactor cost model:
//!   every run reallocates caches, predictor tables, the event calendar);
//! * **reused** — one [`SimSession`] reset per run, with the trace
//!   [`rewound`](virtclust_uarch::TraceSource::rewind) instead of rebuilt.
//!
//! Both modes must produce bit-identical statistics (checked every run);
//! the report is the throughput of each and the speedup. `--trace FILE`
//! instead measures batched replay of a stored trace through
//! [`EvalDriver`] (`R` × Table 3 cells, readers parsed once and rewound);
//! with `--retries`/`--deadline-ms`/`--chaos` (or `VIRTCLUST_FAILPOINTS`,
//! trace mode only) the batch goes through the resilient engine and the
//! report carries the degraded-completion summary instead of failing on
//! the first faulted cell.
//!
//! `--stages` instead reports the per-stage wall-time share of a cycle
//! (events+wakeup / commit / store-drain / memory / issue / dispatch /
//! fetch / skip) via [`SimSession::step_timed`] — the instrumented step
//! loop the plain run never pays for — so perf PRs can point at the next
//! bottleneck. The `skip` bucket is the idle-span probe plus span
//! application, so shares sum to 100 % of wall time even on idle-heavy
//! points like `mcf`.
//!
//! `--timeline FILE` runs each scheme once with an interval observer
//! attached and writes a Chrome-trace-event JSON (`chrome://tracing` /
//! Perfetto) with per-stage slices, skipped idle spans, and IPC / stall /
//! occupancy / queue-depth counter tracks, one interval every `--every`
//! cycles (default 1000). Point mode prints the skip-path diagnostics
//! (spans, replicated cycles, span-length percentiles) per scheme;
//! `--observe` adds a third measured loop with a live `MemSink` interval
//! observer (interval `--every`) and reports its overhead vs the bare
//! reused session — the source of the observer-overhead row in
//! `results/BASELINES.md`.
//!
//! `--json-out FILE` (point mode only) additionally writes the run as a
//! machine-readable perf-trajectory document: per-scheme fresh/reused
//! uops/s, the reused run's stepped-vs-replicated cycle split, and
//! ns per busy (stepped) cycle. Committed snapshots live under
//! `results/bench/` (`prN-before.json` / `prN-after.json`); the CI
//! bench-smoke job compares a fresh run against the newest committed file
//! and warns on >10 % uops/s regression.
//!
//! In `gzip-1` point mode on the 2-cluster machine the report ends with a
//! delta against the committed per-scheme mean in `results/BASELINES.md`
//! (other points have no committed pin).
//!
//! `--uops` defaults to `VIRTCLUST_UOPS` or 20 000; `--runs` defaults
//! to 8. Results are also written to `results/throughput.md`.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use virtclust_bench::{
    results_dir, threads, try_resilience_from_args, uop_budget, write_result, Resilience,
};
use virtclust_core::{Configuration, EvalDriver, EvalJob};
use virtclust_obs::{ChromeTrace, MemSink, Shared};
use virtclust_sim::{simulate, RunLimits, SimSession, SimStats, StageTimers, StallReason};
use virtclust_trace::TraceReader;
use virtclust_uarch::{DynUop, MachineConfig, SliceTrace, TraceSource};
use virtclust_workloads::spec2000_points;

struct Args {
    uops: u64,
    runs: u64,
    clusters: usize,
    point: String,
    trace: Option<String>,
    stages: bool,
    timeline: Option<String>,
    every: u64,
    observe: bool,
    json_out: Option<String>,
    /// Any of `--retries/--deadline-ms/--chaos` was given (trace mode
    /// only; values are parsed by `try_resilience_from_args`).
    resilient: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        uops: uop_budget(20_000),
        runs: 8,
        clusters: 2,
        point: "gzip-1".into(),
        trace: None,
        stages: false,
        timeline: None,
        every: 1_000,
        observe: false,
        json_out: None,
        resilient: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--uops" => {
                args.uops = value("--uops")?
                    .parse()
                    .map_err(|_| "--uops needs an integer".to_string())?
            }
            "--runs" => {
                args.runs = value("--runs")?
                    .parse()
                    .map_err(|_| "--runs needs an integer".to_string())?
            }
            "--clusters" => {
                let v = value("--clusters")?;
                args.clusters = v
                    .parse()
                    .ok()
                    .filter(|&n| virtclust_bench::cluster_preset(n).is_some())
                    .ok_or(format!("--clusters must be 2, 4 or 8, got {v}"))?;
            }
            "--point" => {
                let v = value("--point")?;
                if !spec2000_points().iter().any(|p| p.name == v) {
                    return Err(format!("--point: unknown suite point {v}"));
                }
                args.point = v;
            }
            "--trace" => args.trace = Some(value("--trace")?),
            "--json-out" => args.json_out = Some(value("--json-out")?),
            "--stages" => args.stages = true,
            "--timeline" => args.timeline = Some(value("--timeline")?),
            "--observe" => args.observe = true,
            "--every" => {
                args.every = value("--every")?
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or("--every needs a positive integer (cycles)".to_string())?
            }
            "--retries" | "--deadline-ms" | "--chaos" => {
                value(arg)?;
                args.resilient = true;
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.runs == 0 {
        return Err("--runs must be at least 1".into());
    }
    Ok(args)
}

/// Expand `uops` micro-ops of a suite point under `config`'s compiler pass
/// into an in-memory trace (hints baked in, like a frozen per-scheme
/// stream).
fn expand_scheme(
    config: &Configuration,
    machine: &MachineConfig,
    uops: u64,
    point: &str,
) -> Vec<DynUop> {
    let point = spec2000_points()
        .into_iter()
        .find(|p| p.name == point)
        .expect("suite point validated in parse_args");
    let mut program = point.build_program();
    config
        .software_pass(machine.num_clusters as u32)
        .apply(&mut program, &machine.latencies);
    let mut expander = point.expander(&program);
    (0..uops)
        .map(|_| expander.next_uop().expect("endless stream"))
        .collect()
}

/// One scheme's measurements for the machine-readable perf trajectory
/// (`--json-out`): throughput both ways, the stepped-vs-replicated cycle
/// split of the reused run, and the wall cost of a cycle the skipper could
/// not replicate (the busy-cycle metric the hot-path work tracks).
struct SchemeBench {
    scheme: String,
    fresh_uops_per_sec: f64,
    reused_uops_per_sec: f64,
    cycles: u64,
    replicated_cycles: u64,
    /// Skipped spans whose classification consulted the (pure) steering
    /// policy — zero for impure policies by construction.
    policy_stall_spans: u64,
    ns_per_busy_cycle: f64,
}

/// Render the `--json-out` document: run parameters plus one entry per
/// scheme and the per-scheme means. Hand-rolled JSON (the schema is flat
/// and the repo carries no serializer dependency).
fn render_bench_json(args: &Args, clusters: usize, rows: &[SchemeBench]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"bench\": \"throughput\",\n  \"point\": \"{}\",\n  \"clusters\": {},\n  \
         \"uops\": {},\n  \"runs\": {},\n  \"schemes\": [",
        args.point, clusters, args.uops, args.runs,
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"scheme\": \"{}\", \"fresh_uops_per_sec\": {:.0}, \
             \"reused_uops_per_sec\": {:.0}, \"cycles\": {}, \"replicated_cycles\": {}, \
             \"stepped_cycles\": {}, \"policy_stall_spans\": {}, \
             \"ns_per_busy_cycle\": {:.1}}}{}",
            r.scheme,
            r.fresh_uops_per_sec,
            r.reused_uops_per_sec,
            r.cycles,
            r.replicated_cycles,
            r.cycles - r.replicated_cycles,
            r.policy_stall_spans,
            r.ns_per_busy_cycle,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    let n = rows.len().max(1) as f64;
    let _ = writeln!(
        out,
        "  ],\n  \"mean_fresh_uops_per_sec\": {:.0},\n  \"mean_reused_uops_per_sec\": {:.0}\n}}",
        rows.iter().map(|r| r.fresh_uops_per_sec).sum::<f64>() / n,
        rows.iter().map(|r| r.reused_uops_per_sec).sum::<f64>() / n,
    );
    out
}

/// Parse the committed per-scheme mean (fresh, reused uops/s) from the
/// first `| **mean** | … |` row of `results/BASELINES.md`, if present.
/// Numbers may use spaces as thousands separators.
fn committed_mean() -> Option<(f64, f64)> {
    let text = std::fs::read_to_string(results_dir().join("BASELINES.md")).ok()?;
    let row = text.lines().find(|l| l.starts_with("| **mean**"))?;
    let mut nums = row.split("**").filter_map(|cell| {
        let digits: String = cell.chars().filter(char::is_ascii_digit).collect();
        (!digits.is_empty() && !cell.contains('%')).then(|| digits.parse::<f64>().ok())?
    });
    Some((nums.next()?, nums.next()?))
}

fn point_mode(args: &Args, machine: &MachineConfig) -> Result<String, String> {
    let clusters = machine.num_clusters as u32;
    let mut report = String::from(
        "| scheme | fresh machine/run (uops/s) | reused session (uops/s) | speedup |\n|---|---|---|---|\n",
    );
    let mut session = SimSession::new(machine);
    let (mut sum_fresh, mut sum_reused) = (0.0f64, 0.0f64);
    let mut skip_report = String::from(
        "\nSkip-path diagnostics (last reused run per scheme):\n\n\
         | scheme | cycles | spans skipped | cycles replicated | share | policy spans | median span | max span |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    let mut observe_report = format!(
        "\nObserver overhead (reused session, MemSink interval observer, K={}):\n\n\
         | scheme | reused (uops/s) | observed (uops/s) | overhead |\n|---|---|---|---|\n",
        args.every,
    );
    let mut sum_observed = 0.0f64;
    let mut bench_rows: Vec<SchemeBench> = Vec::new();
    for config in Configuration::table3() {
        let uops = expand_scheme(&config, machine, args.uops, &args.point);

        // Fresh: a new machine (and a new trace view) per run.
        let t0 = Instant::now();
        let mut fresh_stats = None;
        for _ in 0..args.runs {
            let mut trace = SliceTrace::new(&uops);
            let mut policy = config.make_policy();
            let stats = simulate(
                machine,
                &mut trace,
                policy.as_mut(),
                &RunLimits::unlimited(),
            );
            fresh_stats.get_or_insert(stats);
        }
        let fresh_wall = t0.elapsed().as_secs_f64();
        let fresh_stats = fresh_stats.expect("runs >= 1");

        // Reused: one session, one rewindable trace, one policy.
        let mut trace = SliceTrace::new(&uops);
        let mut policy = config.make_policy();
        let t0 = Instant::now();
        for _ in 0..args.runs {
            trace.rewind().map_err(|e| e.to_string())?;
            let stats = session.simulate(
                machine,
                &mut trace,
                policy.as_mut(),
                &RunLimits::unlimited(),
            );
            if stats != fresh_stats {
                return Err(format!(
                    "{}: reused session diverged from fresh machine",
                    config.name(clusters)
                ));
            }
        }
        let reused_wall = t0.elapsed().as_secs_f64();

        // Observed: the same reused loop with a live `MemSink` interval
        // observer (one fresh sink per run, interval = --every cycles).
        // Stats must stay bit-identical — the observer reads, never
        // steers — so the only difference the table can show is the
        // telemetry's wall-clock cost.
        let observed_ups = if args.observe {
            let mut trace = SliceTrace::new(&uops);
            let mut policy = config.make_policy();
            let t0 = Instant::now();
            for _ in 0..args.runs {
                trace.rewind().map_err(|e| e.to_string())?;
                let handle = Shared::new(MemSink::<SimStats>::new());
                session.attach_observer(args.every, Box::new(handle.clone()));
                let stats = session.simulate(
                    machine,
                    &mut trace,
                    policy.as_mut(),
                    &RunLimits::unlimited(),
                );
                if stats != fresh_stats {
                    return Err(format!(
                        "{}: observed session diverged from fresh machine",
                        config.name(clusters)
                    ));
                }
            }
            let wall = t0.elapsed().as_secs_f64();
            session.detach_observer();
            Some((fresh_stats.committed_uops * args.runs) as f64 / wall.max(1e-9))
        } else {
            None
        };

        // PR 6's replicated-cycle claim, reproducible from the tool: the
        // session's skip diagnostics cover the last reused run (reset per
        // run), and cannot live in `SimStats` without breaking the
        // skipping-vs-stepping bit-identity contract.
        let diag = session.skip_diag();
        let _ = writeln!(
            skip_report,
            "| {} | {} | {} | {} | {:.1}% | {} | {} | {} |",
            config.name(clusters),
            fresh_stats.cycles,
            diag.spans,
            diag.cycles,
            100.0 * diag.replicated_share(fresh_stats.cycles),
            diag.policy_dependent_spans(),
            diag.hist.percentile(0.5),
            diag.hist.max(),
        );

        let total = (fresh_stats.committed_uops * args.runs) as f64;
        let fresh_ups = total / fresh_wall.max(1e-9);
        let reused_ups = total / reused_wall.max(1e-9);
        sum_fresh += fresh_ups;
        sum_reused += reused_ups;
        // `ns_per_busy_cycle`: reused wall per run over the cycles the
        // skipper had to step (diag covers the last reused run; every
        // reused run is identical, so one run's split is the split).
        let stepped = fresh_stats.cycles - diag.cycles;
        bench_rows.push(SchemeBench {
            scheme: config.name(clusters).to_string(),
            fresh_uops_per_sec: fresh_ups,
            reused_uops_per_sec: reused_ups,
            cycles: fresh_stats.cycles,
            replicated_cycles: diag.cycles,
            policy_stall_spans: diag.policy_dependent_spans(),
            ns_per_busy_cycle: reused_wall / args.runs as f64 / stepped.max(1) as f64 * 1e9,
        });
        if let Some(oups) = observed_ups {
            sum_observed += oups;
            let _ = writeln!(
                observe_report,
                "| {} | {:.0} | {:.0} | {:+.1}% |",
                config.name(clusters),
                reused_ups,
                oups,
                (oups / reused_ups - 1.0) * 100.0,
            );
        }
        let _ = writeln!(
            report,
            "| {} | {:.0} | {:.0} | {:+.1}% |",
            config.name(clusters),
            fresh_ups,
            reused_ups,
            (reused_ups / fresh_ups - 1.0) * 100.0,
        );
    }
    let n = Configuration::table3().len() as f64;
    let _ = writeln!(
        report,
        "| **mean** | **{:.0}** | **{:.0}** | **{:+.1}%** |",
        sum_fresh / n,
        sum_reused / n,
        (sum_reused / sum_fresh - 1.0) * 100.0,
    );
    report.push_str(&skip_report);
    if args.observe {
        let _ = writeln!(
            observe_report,
            "| **mean** | **{:.0}** | **{:.0}** | **{:+.1}%** |",
            sum_reused / n,
            sum_observed / n,
            (sum_observed / sum_reused - 1.0) * 100.0,
        );
        report.push_str(&observe_report);
    }
    if let Some(path) = &args.json_out {
        let doc = render_bench_json(args, machine.num_clusters, &bench_rows);
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(report, "\nbench JSON written to {path}");
    }
    // Delta against the committed reference (2-cluster table only — that
    // is what BASELINES.md pins). Informational: wall-clock comparisons
    // across hosts are noise, but on the CI runner a large regression
    // shows up here without digging through two tables.
    if machine.num_clusters == 2 && args.point == "gzip-1" {
        match committed_mean() {
            Some((base_fresh, base_reused)) => {
                let _ = writeln!(
                    report,
                    "\nvs committed baseline (results/BASELINES.md, mean uops/s): \
                     fresh {:.0} -> {:.0} ({:+.1}%), reused {:.0} -> {:.0} ({:+.1}%)",
                    base_fresh,
                    sum_fresh / n,
                    (sum_fresh / n / base_fresh - 1.0) * 100.0,
                    base_reused,
                    sum_reused / n,
                    (sum_reused / n / base_reused - 1.0) * 100.0,
                );
            }
            None => {
                let _ = writeln!(
                    report,
                    "\n(no committed mean row found in results/BASELINES.md — delta skipped)"
                );
            }
        }
    }
    Ok(report)
}

/// `--stages`: run each Table 3 scheme through the instrumented
/// [`SimSession::step_timed`] loop and report where the wall-clock cycle
/// budget goes, stage by stage.
fn stages_mode(args: &Args, machine: &MachineConfig) -> Result<String, String> {
    let clusters = machine.num_clusters as u32;
    let mut report = String::from("| scheme | cycles |");
    for name in StageTimers::NAMES {
        let _ = write!(report, " {name} |");
    }
    report.push_str("\n|---|---|");
    report.push_str(&"---|".repeat(StageTimers::NUM_STAGES));
    report.push('\n');
    let mut session = SimSession::new(machine);
    let mut totals = StageTimers::default();
    for config in Configuration::table3() {
        let uops = expand_scheme(&config, machine, args.uops, &args.point);
        let mut trace = SliceTrace::new(&uops);
        let mut policy = config.make_policy();
        let mut timers = StageTimers::default();
        for _ in 0..args.runs {
            trace.rewind().map_err(|e| e.to_string())?;
            session.reset(machine);
            policy.reset();
            loop {
                session.step_timed(
                    &mut trace,
                    policy.as_mut(),
                    &RunLimits::unlimited(),
                    &mut timers,
                );
                if session.done() {
                    break;
                }
            }
        }
        let _ = write!(report, "| {} | {} |", config.name(clusters), timers.cycles);
        for i in 0..StageTimers::NUM_STAGES {
            let _ = write!(report, " {:.1}% |", 100.0 * timers.share(i));
        }
        report.push('\n');
        for (bucket, add) in totals.buckets.iter_mut().zip(timers.buckets) {
            *bucket += add;
        }
        totals.cycles += timers.cycles;
    }
    let _ = write!(report, "| **all schemes** | {} |", totals.cycles);
    for i in 0..StageTimers::NUM_STAGES {
        let _ = write!(report, " **{:.1}%** |", 100.0 * totals.share(i));
    }
    let _ = writeln!(
        report,
        "\n\nShares are wall-clock per stage over {} run(s)/scheme at {} uops/cell \
         ({:.0} ns/cycle all-in); the plain (untimed) step loop contains none of \
         this instrumentation.",
        args.runs,
        args.uops,
        totals.total().as_nanos() as f64 / totals.cycles.max(1) as f64,
    );
    Ok(report)
}

/// `--timeline FILE`: run each Table 3 scheme once through the
/// instrumented, observed step loop and render a Chrome-trace-event
/// timeline (loadable in `chrome://tracing` / Perfetto): per-stage
/// wall-time slices and skipped idle spans per interval, plus counter
/// tracks for IPC, the dispatch-stall breakdown, per-cluster occupancy and
/// queue-depth gauges. One simulated cycle maps to one microsecond, so
/// the timeline reads directly in cycles. Each scheme's observed stats are
/// asserted bit-identical to an unobserved, untimed reference run.
fn timeline_mode(args: &Args, machine: &MachineConfig, out_path: &str) -> Result<String, String> {
    let clusters = machine.num_clusters as u32;
    let every = args.every;
    let mut trace_out = ChromeTrace::new();
    let mut report = String::from(
        "| scheme | cycles | intervals | spans skipped | replicated |\n|---|---|---|---|---|\n",
    );
    for (si, config) in Configuration::table3().into_iter().enumerate() {
        let pid = si as u64 + 1;
        let scheme = config.name(clusters);
        trace_out.process_name(pid, &format!("{scheme} · {}", args.point));
        let skip_tid = StageTimers::NUM_STAGES as u64;
        trace_out.thread_name(pid, skip_tid, "skipped spans");
        trace_out.thread_sort_index(pid, skip_tid, 0);
        for (i, name) in StageTimers::NAMES.iter().enumerate() {
            trace_out.thread_name(pid, i as u64, name);
            trace_out.thread_sort_index(pid, i as u64, i as u64 + 1);
        }

        let uops = expand_scheme(&config, machine, args.uops, &args.point);
        // Unobserved, untimed reference: the bit-identity check below is
        // the tool-level restatement of the observer's hard contract.
        let reference = {
            let mut trace = SliceTrace::new(&uops);
            let mut policy = config.make_policy();
            simulate(
                machine,
                &mut trace,
                policy.as_mut(),
                &RunLimits::unlimited(),
            )
        };

        let handle = Shared::new(MemSink::<SimStats>::new());
        let mut session = SimSession::new(machine);
        session.attach_observer(every, Box::new(handle.clone()));
        let mut trace = SliceTrace::new(&uops);
        let mut policy = config.make_policy();
        policy.reset();
        let mut timers = StageTimers::default();
        // Cumulative stage-timer snapshots at interval boundaries, so each
        // interval's slices reflect where *that* interval's host time went.
        let mut marks: Vec<(u64, StageTimers)> = Vec::new();
        let mut next_mark = every;
        loop {
            session.step_timed(
                &mut trace,
                policy.as_mut(),
                &RunLimits::unlimited(),
                &mut timers,
            );
            while session.cycle() >= next_mark {
                marks.push((next_mark, timers.clone()));
                next_mark += every;
            }
            if session.done() {
                break;
            }
        }
        session.flush_observer();
        let observed = session.stats().clone();
        if observed != reference {
            return Err(format!(
                "{scheme}: observed run diverged from unobserved reference"
            ));
        }
        if marks.last().map(|(c, _)| *c) != Some(observed.cycles) {
            marks.push((observed.cycles, timers.clone()));
        }
        let diag = session.skip_diag().clone();

        // Per-interval stage slices: the interval's simulated length split
        // by that interval's per-stage host-time shares.
        let mut prev = (0u64, StageTimers::default());
        for (cycle, cum) in marks {
            let interval = cycle - prev.0;
            let deltas: Vec<std::time::Duration> = cum
                .buckets
                .iter()
                .zip(&prev.1.buckets)
                .map(|(a, b)| *a - *b)
                .collect();
            let total: f64 = deltas.iter().map(std::time::Duration::as_secs_f64).sum();
            if total > 0.0 {
                for (i, d) in deltas.iter().enumerate() {
                    let dur = (interval as f64 * d.as_secs_f64() / total) as u64;
                    if dur > 0 {
                        trace_out.complete(StageTimers::NAMES[i], pid, i as u64, prev.0, dur, &[]);
                    }
                }
            }
            prev = (cycle, cum);
        }

        handle.with(|sink| {
            for span in &sink.skip_spans {
                trace_out.complete(
                    span.label,
                    pid,
                    skip_tid,
                    span.start_cycle,
                    span.len,
                    &[("cycles", span.len)],
                );
            }
            for s in &sink.intervals {
                let d = &s.delta;
                trace_out.counter("ipc", pid, s.start_cycle, &[("ipc", d.ipc())]);
                let stall_series: Vec<(String, f64)> = StallReason::ALL
                    .iter()
                    .map(|r| (r.to_string(), d.dispatch_stalls[r.index()] as f64))
                    .collect();
                let stall_refs: Vec<(&str, f64)> =
                    stall_series.iter().map(|(k, v)| (k.as_str(), *v)).collect();
                trace_out.counter("stalls", pid, s.start_cycle, &stall_refs);
                let occ: Vec<(String, f64)> = d
                    .clusters
                    .iter()
                    .enumerate()
                    .map(|(c, cs)| {
                        (
                            format!("c{c}"),
                            cs.occupancy_integral as f64 / d.cycles.max(1) as f64,
                        )
                    })
                    .collect();
                let occ_refs: Vec<(&str, f64)> =
                    occ.iter().map(|(k, v)| (k.as_str(), *v)).collect();
                trace_out.counter("occupancy", pid, s.start_cycle, &occ_refs);
            }
            for (cycle, gauges) in &sink.gauges {
                trace_out.counter("queues", pid, *cycle, gauges);
            }
        });

        let _ = writeln!(
            report,
            "| {scheme} | {} | {} | {} | {:.1}% |",
            observed.cycles,
            handle.with(|s| s.intervals.len()),
            diag.spans,
            100.0 * diag.replicated_share(observed.cycles),
        );
    }
    trace_out
        .save(std::path::Path::new(out_path))
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    let _ = writeln!(
        report,
        "\n{} trace events written to {out_path} (interval {every} cycles; open in \
         chrome://tracing or https://ui.perfetto.dev; 1 cycle = 1 µs).\n\
         Observed stats verified bit-identical to unobserved reference runs.",
        trace_out.len(),
    );
    Ok(report)
}

fn trace_mode(
    args: &Args,
    machine: &MachineConfig,
    file: &str,
    resilience: &Resilience,
) -> Result<String, String> {
    // Sanity: the file parses and declares a stream.
    let reader = TraceReader::open(file).map_err(|e| e.to_string())?;
    let declared = reader.declared_len();
    drop(reader);
    let jobs: Vec<EvalJob> = (0..args.runs)
        .flat_map(|_| {
            Configuration::table3()
                .into_iter()
                .map(|config| EvalJob::Trace {
                    path: file.into(),
                    config,
                    limits: RunLimits::unlimited(),
                })
        })
        .collect();
    let driver = EvalDriver::new(machine).threads(threads());
    let t0 = Instant::now();
    let (outcomes, report) = if resilience.active() {
        let (outcomes, report) = driver.run_resilient(&jobs, &resilience.opts, |_, _| {});
        (outcomes, Some(report))
    } else {
        (driver.run(&jobs), None)
    };
    let wall = t0.elapsed().as_secs_f64();
    let mut total_uops = 0u64;
    for outcome in &outcomes {
        match &outcome.stats {
            Ok(stats) => total_uops += stats.committed_uops,
            // Under the resilient engine failed cells are tallied in the
            // report; without it the first failure is fatal.
            Err(_) if report.is_some() => {}
            Err(e) => return Err(e.to_string()),
        }
    }
    let mut out = format!(
        "batched replay of {file} (declared {declared:?} uops): {} cells, {total_uops} uops \
         in {wall:.2}s = {:.0} uops/s aggregate (readers parsed once per worker, rewound per cell)\n",
        outcomes.len(),
        total_uops as f64 / wall.max(1e-9),
    );
    if let Some(report) = &report {
        let _ = writeln!(out, "resilient engine: {}", report.summary());
    }
    Ok(out)
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = parse_args(argv)?;
    if args.resilient && args.trace.is_none() {
        return Err("--retries/--deadline-ms/--chaos only apply to --trace mode".into());
    }
    let resilience = if args.trace.is_some() {
        try_resilience_from_args(argv)?
    } else {
        Resilience::default()
    };
    let machine = virtclust_bench::cluster_preset(args.clusters).expect("validated in parse_args");
    let header = format!(
        "# Simulation throughput ({} clusters, {} point, {} uops/cell, {} runs/scheme)\n\n\
         Wall-clock numbers; compare only against runs on the same host.\n\
         Committed reference: results/BASELINES.md.\n\n",
        machine.num_clusters, args.point, args.uops, args.runs,
    );
    let body = match (&args.trace, args.stages, &args.timeline) {
        (Some(_), _, Some(_)) | (_, true, Some(_)) | (Some(_), true, _) => {
            return Err("--stages, --trace and --timeline are mutually exclusive".into())
        }
        (Some(file), false, None) => trace_mode(&args, &machine, file, &resilience)?,
        (None, true, None) => stages_mode(&args, &machine)?,
        (None, false, Some(out)) => timeline_mode(&args, &machine, out)?,
        (None, false, None) => point_mode(&args, &machine)?,
    };
    let out = format!("{header}{body}");
    print!("{out}");
    let path = write_result("throughput.md", &out);
    println!("\nwritten to {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("throughput: {msg}");
            ExitCode::FAILURE
        }
    }
}
