//! Open-loop load generator for the evaluation service: replays a
//! deterministic mixed schedule (suite points / imported kernels / trace
//! replays) against a running `serve` daemon, measures sustained uops/s
//! and ok-vs-failed job-latency percentiles, and optionally verifies
//! every successful cell bit-identical against a direct
//! [`EvalDriver::run_resilient`] of the same jobs.
//!
//! ```sh
//! cargo run --release -p virtclust-bench --bin serve -- --unix /tmp/vc.sock &
//! cargo run --release -p virtclust-bench --bin loadgen -- \
//!   --unix /tmp/vc.sock --jobs 10000 --verify --shutdown
//! ```
//!
//! Flags: `--jobs N` (default 10000), `--uops N` (per-point budget,
//! default 2000, `VIRTCLUST_UOPS` also respected), `--traces DIR`
//! (kernel/trace corpus, default `results/traces`), `--rate R`
//! (submissions/sec; 0 = as fast as possible), `--priority-mix`
//! (cycle High/Normal/Low instead of all-Normal), `--verify`,
//! `--shutdown` (stop the daemon afterwards).
//!
//! The submission side never waits for results (open loop): a `Busy`
//! bounce is counted, not retried — the backpressure demonstration.
//! Accounting is exact: every submitted ticket resolves to exactly one
//! of accepted→result, busy, or immediate-error result, and the summary
//! line reports all of them.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use virtclust_bench::uop_budget;
use virtclust_core::{EvalDriver, EvalJob, ResilientOptions};
use virtclust_obs::Log2Hist;
use virtclust_svc::{resolve_spec, stats_digest, Client, JobSpec, Priority, ServerMsg, Submit};
use virtclust_uarch::MachineConfig;

fn value_of<'a>(argv: &'a [String], flag: &str) -> Option<&'a String> {
    argv.iter().position(|a| a == flag).map(|i| {
        argv.get(i + 1).unwrap_or_else(|| {
            eprintln!("loadgen: {flag} needs a value");
            std::process::exit(2);
        })
    })
}

fn parse_or_exit<T: std::str::FromStr>(v: &str, flag: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("loadgen: {flag}: cannot parse {v}");
        std::process::exit(2);
    })
}

/// The deterministic mixed schedule: mostly suite points across Table 3
/// schemes, with every tenth job a trace replay and every tenth a kernel
/// expansion from the committed corpus.
fn schedule(jobs: u64, uops: u64, traces: &str, priority_mix: bool) -> Vec<Submit> {
    let points = [
        "gzip-1", "gcc-1", "mcf", "crafty", "eon-1", "vpr-2", "galgel", "swim", "mesa", "art-1",
        "sixtrack", "equake",
    ];
    let schemes = ["OP", "1C", "OB", "RHOP", "VC2"];
    let trace_files = ["smoke8.vct", "dotprod.vct", "gzip-1.vct", "galgel.vctb"];
    let kernel_files = ["dotprod.kernel", "smoke8.kernel"];
    (0..jobs)
        .map(|i| {
            let scheme = schemes[(i % schemes.len() as u64) as usize].to_string();
            let spec = match i % 10 {
                3 => JobSpec::Kernel {
                    path: format!("{traces}/{}", kernel_files[(i / 10 % 2) as usize]),
                    seed: i,
                    scheme,
                    uops,
                },
                7 => JobSpec::Trace {
                    path: format!("{traces}/{}", trace_files[(i / 10 % 4) as usize]),
                    scheme,
                    max_uops: uops,
                },
                _ => JobSpec::Point {
                    name: points[(i % points.len() as u64) as usize].to_string(),
                    scheme,
                    uops,
                },
            };
            let priority = if priority_mix {
                Priority::ALL[(i % 3) as usize]
            } else {
                Priority::Normal
            };
            Submit {
                ticket: i,
                priority,
                deadline_ms: 0,
                spec,
            }
        })
        .collect()
}

/// Run the same specs directly through the batch engine and return each
/// job's stats digest (None for jobs that fail locally too).
fn direct_digests(submits: &[Submit]) -> HashMap<u64, Option<u64>> {
    let machine = MachineConfig::paper_2cluster();
    let resolved: Vec<(u64, Result<EvalJob, String>)> = submits
        .iter()
        .map(|s| (s.ticket, resolve_spec(&s.spec)))
        .collect();
    let jobs: Vec<EvalJob> = resolved
        .iter()
        .filter_map(|(_, r)| r.as_ref().ok().cloned())
        .collect();
    let (outcomes, _) =
        EvalDriver::new(&machine).run_resilient(&jobs, &ResilientOptions::new(), |_, _| {});
    let mut digests = HashMap::new();
    let mut oi = 0;
    for (ticket, r) in &resolved {
        match r {
            Err(_) => {
                digests.insert(*ticket, None);
            }
            Ok(_) => {
                digests.insert(*ticket, outcomes[oi].stats.as_ref().ok().map(stats_digest));
                oi += 1;
            }
        }
    }
    digests
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let jobs: u64 = value_of(&argv, "--jobs").map_or(10_000, |v| parse_or_exit(v, "--jobs"));
    let uops =
        value_of(&argv, "--uops").map_or_else(|| uop_budget(2_000), |v| parse_or_exit(v, "--uops"));
    let traces = value_of(&argv, "--traces").map_or("results/traces", String::as_str);
    let rate: f64 = value_of(&argv, "--rate").map_or(0.0, |v| parse_or_exit(v, "--rate"));
    let priority_mix = argv.iter().any(|a| a == "--priority-mix");
    let verify = argv.iter().any(|a| a == "--verify");
    let shutdown = argv.iter().any(|a| a == "--shutdown");

    let client = match (value_of(&argv, "--unix"), value_of(&argv, "--tcp")) {
        (Some(path), None) => Client::connect_unix(path),
        (None, Some(addr)) => Client::connect_tcp(addr),
        _ => {
            eprintln!("loadgen: exactly one of --unix PATH or --tcp ADDR is required");
            std::process::exit(2);
        }
    }
    .unwrap_or_else(|e| {
        eprintln!("loadgen: cannot connect: {e}");
        std::process::exit(1);
    });

    let submits = schedule(jobs, uops, traces, priority_mix);
    let expected = verify.then(|| direct_digests(&submits));

    let (mut tx, mut rx) = client.split().unwrap_or_else(|e| {
        eprintln!("loadgen: cannot split connection: {e}");
        std::process::exit(1);
    });

    // Submit timestamps, shared with the receiving side for latency.
    let submitted_at: Mutex<HashMap<u64, Instant>> = Mutex::new(HashMap::new());
    let start = Instant::now();
    let mut accepted = 0u64;
    let mut busy = 0u64;
    let mut ok = 0u64;
    let mut failed = 0u64;
    let mut total_uops = 0u64;
    let mut ok_hist = Log2Hist::new();
    let mut failed_hist = Log2Hist::new();
    let mut mismatches = 0u64;

    std::thread::scope(|scope| {
        let submitted_at = &submitted_at;
        let sender = scope.spawn(move || {
            for (i, s) in submits.iter().enumerate() {
                if rate > 0.0 {
                    let due = start + Duration::from_secs_f64(i as f64 / rate);
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                }
                submitted_at
                    .lock()
                    .unwrap()
                    .insert(s.ticket, Instant::now());
                if let Err(e) = tx.submit(s) {
                    eprintln!("loadgen: submit failed: {e}");
                    std::process::exit(1);
                }
            }
            tx
        });

        // Every ticket terminates with exactly one Busy or Result frame
        // (Accepted is informational), so drain until all are resolved.
        // Blocking recv is safe while the sender is still submitting:
        // replies only ever follow submits.
        let mut done = 0u64;
        while busy + done < jobs {
            match rx.recv() {
                Ok(Some(ServerMsg::Accepted { .. })) => {
                    accepted += 1;
                }
                Ok(Some(ServerMsg::Busy { ticket, .. })) => {
                    busy += 1;
                    submitted_at.lock().unwrap().remove(&ticket);
                }
                Ok(Some(ServerMsg::Result(r))) => {
                    done += 1;
                    let latency_us = submitted_at
                        .lock()
                        .unwrap()
                        .remove(&r.ticket)
                        .map_or(0, |t| t.elapsed().as_micros() as u64);
                    match &r.outcome {
                        Ok(stats) => {
                            ok += 1;
                            total_uops += stats.committed_uops;
                            ok_hist.record(latency_us);
                            if let Some(expected) = &expected {
                                if expected.get(&r.ticket) != Some(&Some(stats.digest)) {
                                    mismatches += 1;
                                    eprintln!(
                                        "loadgen: VERIFY MISMATCH ticket {} digest {:016x}",
                                        r.ticket, stats.digest
                                    );
                                }
                            }
                        }
                        Err(e) => {
                            failed += 1;
                            failed_hist.record(latency_us);
                            if verify {
                                eprintln!("loadgen: ticket {} failed: {e}", r.ticket);
                            }
                        }
                    }
                }
                Ok(Some(_)) => {}
                Ok(None) => {
                    eprintln!("loadgen: server closed the connection early");
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("loadgen: receive error: {e}");
                    std::process::exit(1);
                }
            }
        }
        let mut tx = sender.join().expect("sender thread");
        if shutdown {
            if let Err(e) = tx.shutdown() {
                eprintln!("loadgen: shutdown send failed: {e}");
                std::process::exit(1);
            }
            // The daemon flushes and closes; EOF confirms it drained.
            loop {
                match rx.recv() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(e) => {
                        eprintln!("loadgen: error awaiting shutdown: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
    });

    let wall = start.elapsed();
    let verified = expected.is_some() && mismatches == 0;
    println!(
        "{{\"client\":\"loadgen\",\"jobs\":{jobs},\"accepted\":{accepted},\"busy\":{busy},\"ok\":{ok},\"failed\":{failed},\"uops\":{total_uops},\"wall_s\":{:.3},\"uops_per_sec\":{:.0},\"ok_p50_us\":{},\"ok_p99_us\":{},\"failed_p50_us\":{},\"failed_p99_us\":{},\"verify\":{}}}",
        wall.as_secs_f64(),
        total_uops as f64 / wall.as_secs_f64().max(1e-9),
        ok_hist.percentile(0.5),
        ok_hist.percentile(0.99),
        failed_hist.percentile(0.5),
        failed_hist.percentile(0.99),
        if expected.is_none() {
            "\"off\""
        } else if verified {
            "\"ok\""
        } else {
            "\"MISMATCH\""
        },
    );
    // Exact accounting: every ticket resolved exactly once, and every
    // accepted job produced a streamed result.
    assert_eq!(
        busy + ok + failed,
        jobs,
        "accounting drift: accepted={accepted} busy={busy} ok={ok} failed={failed} jobs={jobs}"
    );
    assert!(
        accepted <= ok + failed,
        "accepted jobs missing results: accepted={accepted} ok={ok} failed={failed}"
    );
    if expected.is_some() && !verified {
        std::process::exit(1);
    }
}
