//! Hardware-steering ablations beyond Table 3: what each ingredient of the
//! OP baseline buys, measured against historical alternatives.
//!
//! * `mod-N` [Baniasadi & Moshovos '00] — dependence-blind round-robin:
//!   shows why dependence awareness exists;
//! * `OP-nostall` — OP without the stall-over-steer rule: ablates the
//!   "stalling beats steering" insight of [González '04] / [Salverda &
//!   Zilles '05] that the paper's baseline incorporates;
//! * `OP-parallel` — OP with stale bundle-entry locations (Sec. 2.1).

use virtclust_bench::{threads, uop_budget, write_result};
use virtclust_core::{run_matrix, Configuration};
use virtclust_uarch::MachineConfig;
use virtclust_workloads::spec2000_points;

fn main() {
    let uops = uop_budget(40_000);
    let machine = MachineConfig::paper_2cluster();
    let points: Vec<_> = spec2000_points()
        .into_iter()
        .filter(|p| {
            [
                "gzip-1", "crafty", "eon-1", "vortex-1", "galgel", "swim", "mesa", "sixtrack",
            ]
            .contains(&p.name.as_str())
        })
        .collect();
    let configs = vec![
        Configuration::Op,
        Configuration::OpNoStall,
        Configuration::OpParallel,
        Configuration::ModN { slice: 1 },
        Configuration::ModN { slice: 3 },
        Configuration::ModN { slice: 8 },
        Configuration::OneCluster,
    ];

    eprintln!(
        "ablation_steering: {} points x {} configs, {uops} uops/cell...",
        points.len(),
        configs.len()
    );
    let matrix = run_matrix(&machine, &configs, &points, uops, threads());

    let mut out = String::from(
        "## Hardware-steering ablation (2-cluster machine, mini-suite)\n\n\
         | config | mean slowdown vs OP (%) | copies/kuop | alloc stalls |\n|---|---|---|---|\n",
    );
    for (ci, config) in matrix.configs.iter().enumerate() {
        let (mut slow, mut cpk, mut stalls) = (0.0, 0.0, 0u64);
        for pi in 0..points.len() {
            let base = matrix.cell(pi, 0);
            let s = matrix.cell(pi, ci);
            slow += (s.cycles as f64 / base.cycles as f64 - 1.0) * 100.0;
            cpk += s.copies_per_kuop();
            stalls += s.allocation_stalls();
        }
        let n = points.len() as f64;
        out.push_str(&format!(
            "| {} | {:+.2} | {:.1} | {} |\n",
            config.name(2),
            slow / n,
            cpk / n,
            stalls / points.len() as u64
        ));
    }
    out.push_str(
        "\nReading: dependence-blind mod-N pays heavily in copies; removing\n\
         stall-over-steer from OP trades policy stalls for mis-steered copies;\n\
         stale-location (parallel) steering shows the Sec. 2.1 cost at scale.\n",
    );
    println!("{out}");
    let path = write_result("ablation_steering.md", &out);
    eprintln!("wrote {}", path.display());
}
