//! Criterion micro-benchmarks covering every layer of the reproduction:
//! simulator throughput per steering policy, compiler-pass cost (the VC
//! pass vs the OB and RHOP baselines), and one mini evaluation cell per
//! paper experiment (Fig. 5 / Fig. 6 share cells; Fig. 7 uses the
//! 4-cluster machine; the Sec. 2.1 motivation uses OP-parallel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use virtclust_core::{run_point, Configuration};
use virtclust_uarch::MachineConfig;
use virtclust_workloads::spec2000_points;

const BENCH_UOPS: u64 = 8_000;

fn sim_throughput(c: &mut Criterion) {
    let points = spec2000_points();
    let point = points.iter().find(|p| p.name == "gzip-1").unwrap();
    let machine = MachineConfig::paper_2cluster();
    let mut group = c.benchmark_group("sim_throughput");
    group.throughput(Throughput::Elements(BENCH_UOPS));
    for config in [
        Configuration::Op,
        Configuration::OpParallel,
        Configuration::OneCluster,
        Configuration::Ob,
        Configuration::Rhop,
        Configuration::Vc { num_vcs: 2 },
    ] {
        group.bench_function(BenchmarkId::from_parameter(config.name(2)), |b| {
            b.iter(|| run_point(point, &config, &machine, BENCH_UOPS));
        });
    }
    group.finish();
}

fn compiler_passes(c: &mut Criterion) {
    use virtclust_compiler::SoftwarePass;
    let points = spec2000_points();
    let point = points.iter().find(|p| p.name == "gcc-1").unwrap();
    let program = point.build_program();
    let lat = MachineConfig::default().latencies;
    let mut group = c.benchmark_group("compiler_passes");
    group.throughput(Throughput::Elements(program.static_len() as u64));
    for (name, pass) in [
        (
            "vc2",
            SoftwarePass::Vc(virtclust_compiler::VcConfig::new(2)),
        ),
        ("ob2", SoftwarePass::Ob { clusters: 2 }),
        ("rhop2", SoftwarePass::Rhop { clusters: 2 }),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || program.clone(),
                |mut p| pass.apply(&mut p, &lat),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn fig5_cells(c: &mut Criterion) {
    let points = spec2000_points();
    let machine = MachineConfig::paper_2cluster();
    let mut group = c.benchmark_group("fig5_cell");
    group.sample_size(10);
    for name in ["galgel", "mcf"] {
        let point = points.iter().find(|p| p.name == name).unwrap();
        for config in [Configuration::Op, Configuration::Vc { num_vcs: 2 }] {
            group.bench_function(BenchmarkId::new(name, config.name(2)), |b| {
                b.iter(|| run_point(point, &config, &machine, BENCH_UOPS))
            });
        }
    }
    group.finish();
}

fn fig7_cells(c: &mut Criterion) {
    let points = spec2000_points();
    let machine = MachineConfig::paper_4cluster();
    let point = points.iter().find(|p| p.name == "crafty").unwrap();
    let mut group = c.benchmark_group("fig7_cell");
    group.sample_size(10);
    for config in [
        Configuration::Op,
        Configuration::Vc { num_vcs: 4 },
        Configuration::Vc { num_vcs: 2 },
    ] {
        group.bench_function(BenchmarkId::from_parameter(config.name(4)), |b| {
            b.iter(|| run_point(point, &config, &machine, BENCH_UOPS));
        });
    }
    group.finish();
}

fn motivation_cells(c: &mut Criterion) {
    let points = spec2000_points();
    let machine = MachineConfig::paper_2cluster();
    let point = points.iter().find(|p| p.name == "eon-1").unwrap();
    let mut group = c.benchmark_group("motivation_cell");
    group.sample_size(10);
    for config in [Configuration::Op, Configuration::OpParallel] {
        group.bench_function(BenchmarkId::from_parameter(config.name(2)), |b| {
            b.iter(|| run_point(point, &config, &machine, BENCH_UOPS));
        });
    }
    group.finish();
}

fn workload_generation(c: &mut Criterion) {
    let points = spec2000_points();
    let point = points.iter().find(|p| p.name == "swim").unwrap();
    c.bench_function("build_program_swim", |b| b.iter(|| point.build_program()));
    let program = point.build_program();
    c.bench_function("expand_10k_uops_swim", |b| {
        b.iter(|| {
            use virtclust_uarch::TraceSource;
            let mut ex = point.expander(&program);
            for _ in 0..10_000 {
                ex.next_uop();
            }
        })
    });
}

criterion_group!(
    benches,
    sim_throughput,
    compiler_passes,
    fig5_cells,
    fig7_cells,
    motivation_cells,
    workload_generation
);
criterion_main!(benches);
