//! # virtclust-uarch
//!
//! Micro-op ISA, static program model, dynamic trace model and machine
//! configuration for the `virtclust` framework — a reproduction of
//! *"A Software-Hardware Hybrid Steering Mechanism for Clustered
//! Microarchitectures"* (Cai, Codina, González, González; IPDPS 2008).
//!
//! The paper simulates traces of IA-32 binaries decomposed into micro-ops.
//! This crate models exactly the information that flows between the three
//! parties of that system:
//!
//! * the **compiler** sees [`Program`]s — lists of [`Region`]s whose
//!   [`StaticInst`]s it may annotate with a [`SteerHint`] (the paper extends
//!   the x86 ISA to carry a virtual-cluster id and a chain-leader mark);
//! * the **trace expander** (in `virtclust-workloads`) turns a program plus an
//!   execution profile into a stream of [`DynUop`]s;
//! * the **simulator** (`virtclust-sim`) consumes the stream under a
//!   [`MachineConfig`] describing the clustered microarchitecture of the
//!   paper's Table 2.
//!
//! The crate is dependency-free and everything in it is `Copy`-friendly and
//! deterministic, so the same program and profile always produce the same
//! trace and the same simulation outcome.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod inst;
pub mod op;
pub mod program;
pub mod reg;
pub mod trace;

pub use config::{CacheConfig, ConfigError, LatencyModel, MachineConfig};
pub use inst::{InstId, SrcList, StaticInst, SteerHint, MAX_SRCS};
pub use op::{OpClass, QueueKind};
pub use program::{Program, Region, RegionBuilder};
pub use reg::{ArchReg, RegClass, NUM_ARCH_REGS, NUM_FLT_ARCH_REGS, NUM_INT_ARCH_REGS};
pub use trace::{BranchInfo, DynUop, RewindError, SliceTrace, TraceSource, VecTrace};
