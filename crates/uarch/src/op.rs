//! Micro-op classes.
//!
//! Traces of IA-32 binaries are decomposed into micro-ops. For steering and
//! timing purposes the simulator only needs the *class* of each micro-op:
//! which issue queue it occupies (INT / FP / COPY — Table 2 gives each
//! cluster separate 48-entry INT, 48-entry FP and 24-entry COPY queues),
//! which functional unit it needs, and its execution latency.

use std::fmt;

/// The issue queue a micro-op is allocated into (per cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueKind {
    /// 48-entry integer queue, 2 issues/cycle. Also holds memory and branch
    /// micro-ops (their address generation runs on integer ports).
    Int,
    /// 48-entry floating-point queue, 2 issues/cycle.
    Fp,
    /// 24-entry copy queue, 1 issue/cycle; feeds the inter-cluster links.
    Copy,
}

impl QueueKind {
    /// All queue kinds, in a fixed order usable for indexing.
    pub const ALL: [QueueKind; 3] = [QueueKind::Int, QueueKind::Fp, QueueKind::Copy];

    /// Dense index (0 = Int, 1 = Fp, 2 = Copy) for per-queue tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            QueueKind::Int => 0,
            QueueKind::Fp => 1,
            QueueKind::Copy => 2,
        }
    }
}

impl fmt::Display for QueueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueKind::Int => write!(f, "INT"),
            QueueKind::Fp => write!(f, "FP"),
            QueueKind::Copy => write!(f, "COPY"),
        }
    }
}

/// Micro-op operation classes.
///
/// The set is deliberately small — it is the cross-product the steering
/// mechanisms and the timing model care about, not a faithful x86 decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-cycle integer ALU operation (add, sub, logic, compare, lea…).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Memory load (address generation + cache access).
    Load,
    /// Memory store (address generation; data written at commit).
    Store,
    /// Conditional or unconditional branch.
    Branch,
    /// Floating-point add/sub/convert.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / sqrt.
    FpDiv,
    /// Inter-cluster copy micro-op. Never appears in a program or trace —
    /// the simulator's copy generator inserts these at steer time, exactly
    /// as the hardware in the paper does.
    Copy,
    /// No-op (pipeline filler; occupies a ROB entry only).
    Nop,
}

impl OpClass {
    /// All program-visible op classes (everything except [`OpClass::Copy`],
    /// which only the hardware creates).
    pub const PROGRAM_CLASSES: [OpClass; 10] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::Nop,
    ];

    /// Which per-cluster issue queue this class occupies.
    #[inline]
    pub fn queue(self) -> QueueKind {
        match self {
            OpClass::IntAlu
            | OpClass::IntMul
            | OpClass::IntDiv
            | OpClass::Load
            | OpClass::Store
            | OpClass::Branch
            | OpClass::Nop => QueueKind::Int,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => QueueKind::Fp,
            OpClass::Copy => QueueKind::Copy,
        }
    }

    /// True for the floating-point pipe (used for the paper's "3+3"
    /// decode/rename/steer width: 3 INT-pipe + 3 FP-pipe micro-ops/cycle).
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv)
    }

    /// True for loads and stores (they reserve an LSQ slot at dispatch).
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// True for branches.
    #[inline]
    pub fn is_branch(self) -> bool {
        matches!(self, OpClass::Branch)
    }

    /// Baseline execution latency in cycles, excluding cache access time for
    /// memory operations (the memory hierarchy adds that dynamically).
    /// Overridable via [`crate::config::LatencyModel`].
    #[inline]
    pub fn default_latency(self) -> u32 {
        match self {
            OpClass::IntAlu => 1,
            OpClass::IntMul => 3,
            OpClass::IntDiv => 20,
            // Address generation; the cache access is added by the memory model.
            OpClass::Load => 1,
            OpClass::Store => 1,
            OpClass::Branch => 1,
            OpClass::FpAdd => 3,
            OpClass::FpMul => 5,
            OpClass::FpDiv => 20,
            OpClass::Copy => 1,
            OpClass::Nop => 1,
        }
    }

    /// Short mnemonic used in disassembly-style output.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpClass::IntAlu => "alu",
            OpClass::IntMul => "mul",
            OpClass::IntDiv => "div",
            OpClass::Load => "ld",
            OpClass::Store => "st",
            OpClass::Branch => "br",
            OpClass::FpAdd => "fadd",
            OpClass::FpMul => "fmul",
            OpClass::FpDiv => "fdiv",
            OpClass::Copy => "copy",
            OpClass::Nop => "nop",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queues_partition_the_classes() {
        for op in OpClass::PROGRAM_CLASSES {
            assert_ne!(
                op.queue(),
                QueueKind::Copy,
                "{op} must not use the copy queue"
            );
        }
        assert_eq!(OpClass::Copy.queue(), QueueKind::Copy);
    }

    #[test]
    fn fp_classes_use_fp_queue() {
        for op in OpClass::PROGRAM_CLASSES {
            assert_eq!(op.is_fp(), op.queue() == QueueKind::Fp);
        }
    }

    #[test]
    fn memory_classes() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(!OpClass::Copy.is_mem());
    }

    #[test]
    fn latencies_are_positive() {
        for op in OpClass::PROGRAM_CLASSES {
            assert!(op.default_latency() >= 1);
        }
        assert_eq!(OpClass::Copy.default_latency(), 1);
    }

    #[test]
    fn queue_indices_are_dense() {
        let mut seen = [false; 3];
        for q in QueueKind::ALL {
            assert!(!seen[q.index()]);
            seen[q.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
