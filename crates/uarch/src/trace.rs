//! Dynamic micro-op traces.
//!
//! The paper's hardware side is "an event-driven simulator that executes
//! traces of IA32 binaries" (Sec. 5.1). A trace here is a stream of
//! [`DynUop`]s: static instructions instantiated with dynamic facts (memory
//! address, branch outcome) and carrying the compiler's [`SteerHint`]
//! (the paper's ISA extension).

use crate::inst::{InstId, SrcList, SteerHint};
use crate::op::OpClass;
use crate::reg::ArchReg;

/// Dynamic branch information attached to branch micro-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// Whether the branch was taken in this dynamic instance.
    pub taken: bool,
    /// A stable identifier for the static branch (PC surrogate), used to
    /// index the branch predictor tables.
    pub pc: u64,
}

/// One dynamic micro-op in a trace.
///
/// The `op`/`srcs`/`dst`/`hint` fields are *copies* of the corresponding
/// [`crate::inst::StaticInst`] fields, duplicated so the simulator's hot
/// loop never chases a pointer into the [`crate::Program`]. The copies have
/// exactly one producer — [`crate::inst::StaticInst::instantiate`] — and
/// serialized trace formats must **not** persist them: on-disk traces store
/// only the dynamic facts (`seq`, `inst`, `mem_addr`, `branch`) and
/// re-derive the static metadata from the embedded program on read, so a
/// replay under a different compiler pass picks up the new hints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynUop {
    /// Sequence number in the dynamic stream (0-based, strictly increasing).
    pub seq: u64,
    /// The static instruction this dynamic op instantiates.
    pub inst: InstId,
    /// Operation class (copied from the static instruction so the simulator
    /// does not need the program at hand).
    pub op: OpClass,
    /// Source registers.
    pub srcs: SrcList,
    /// Destination register, if any.
    pub dst: Option<ArchReg>,
    /// Steering annotation (copied from the static instruction).
    pub hint: SteerHint,
    /// Effective memory address for loads/stores.
    pub mem_addr: Option<u64>,
    /// Branch outcome for branches.
    pub branch: Option<BranchInfo>,
}

impl DynUop {
    /// Build a dynamic op from a static instruction. Delegates to
    /// [`crate::inst::StaticInst::instantiate`], the single source of truth
    /// for the copied static fields.
    pub fn from_static(
        seq: u64,
        inst_id: InstId,
        inst: &crate::inst::StaticInst,
        mem_addr: Option<u64>,
        branch: Option<BranchInfo>,
    ) -> Self {
        inst.instantiate(seq, inst_id, mem_addr, branch)
    }

    /// True if this micro-op's copied static fields agree with `inst` (the
    /// static instruction it claims to instantiate). Trace readers use this
    /// to validate records against the embedded program.
    pub fn consistent_with(&self, inst: &crate::inst::StaticInst) -> bool {
        self.op == inst.op
            && self.srcs == inst.srcs
            && self.dst == inst.dst
            && self.hint == inst.hint
            && self.op.is_mem() == self.mem_addr.is_some()
            && self.op.is_branch() == self.branch.is_some()
    }
}

/// Error returned by [`TraceSource::rewind`]. Typed so batch runners can
/// tell a source that can *never* restart (drop it, or re-open the input)
/// from a transient failure of a rewindable source (report it) — instead
/// of string-matching, or worse, panicking deep inside a driver loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewindError {
    /// This source kind cannot restart its stream at all — the default
    /// behaviour, carrying [`TraceSource::source_kind`] so the error names
    /// the offending implementation.
    Unsupported {
        /// The source kind that refused (e.g. `"TraceExpander"`).
        source: &'static str,
    },
    /// The source supports rewinding but this attempt failed (e.g. an I/O
    /// error seeking a trace file).
    Failed {
        /// Human-readable reason the rewind failed.
        reason: String,
        /// Whether the underlying failure was transient (retrying the
        /// rewind could plausibly succeed). Sources that map a richer
        /// error type (e.g. `TraceError`) should carry its classification
        /// through here.
        transient: bool,
    },
}

impl RewindError {
    /// A transient failure of a rewindable source.
    pub fn new(reason: impl Into<String>) -> Self {
        RewindError::Failed {
            reason: reason.into(),
            transient: true,
        }
    }

    /// A failure of a rewindable source with an explicit transience
    /// classification mapped from the underlying error.
    pub fn failed(reason: impl Into<String>, transient: bool) -> Self {
        RewindError::Failed {
            reason: reason.into(),
            transient,
        }
    }

    /// The "this source kind cannot rewind" error, naming the source.
    pub fn unsupported_by(source: &'static str) -> Self {
        RewindError::Unsupported { source }
    }

    /// Whether retrying the rewind could plausibly succeed.
    /// [`RewindError::Unsupported`] never can — the source kind itself
    /// refuses; [`RewindError::Failed`] carries its mapped classification.
    pub fn is_transient(&self) -> bool {
        match self {
            RewindError::Unsupported { .. } => false,
            RewindError::Failed { transient, .. } => *transient,
        }
    }
}

impl std::fmt::Display for RewindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewindError::Unsupported { source } => {
                write!(f, "trace rewind failed: {source} does not support rewind")
            }
            RewindError::Failed { reason, .. } => write!(f, "trace rewind failed: {reason}"),
        }
    }
}

impl std::error::Error for RewindError {}

/// A source of dynamic micro-ops the simulator pulls from.
///
/// Implementations must be deterministic: repeated full traversals (after
/// re-construction with the same inputs) must yield identical streams.
pub trait TraceSource {
    /// Produce the next micro-op, or `None` at end of trace.
    fn next_uop(&mut self) -> Option<DynUop>;

    /// Optional total length hint (number of micro-ops), when known.
    fn len_hint(&self) -> Option<u64> {
        None
    }

    /// Static micro-op count of `region`, used by the front-end's
    /// trace-cache model. Implementations that know the program should
    /// override this; the default assumes a mid-sized region.
    fn region_uops(&self, _region: u32) -> usize {
        64
    }

    /// Stable name of this source kind, carried by the default
    /// [`TraceSource::rewind`] error so a refusal is attributable.
    /// Implementations should return their type name.
    fn source_kind(&self) -> &'static str {
        "unknown trace source"
    }

    /// Restart the stream from its first micro-op, so one source can feed
    /// many simulations without being rebuilt or re-parsed (the batch
    /// engine's per-worker reuse path). A successful rewind must reproduce
    /// the identical stream. The default errs with
    /// [`RewindError::Unsupported`] naming
    /// [`TraceSource::source_kind`]: not every source can restart, and a
    /// driver that reuses sources across cells must handle the refusal
    /// (not every caller panics — see `EvalDriver`'s per-worker reuse).
    fn rewind(&mut self) -> Result<(), RewindError> {
        Err(RewindError::unsupported_by(self.source_kind()))
    }
}

/// A trace fully materialised in memory (owning its micro-ops; rewindable).
#[derive(Debug, Clone)]
pub struct VecTrace {
    uops: Vec<DynUop>,
    pos: usize,
}

impl VecTrace {
    /// Wrap a vector of micro-ops.
    pub fn new(uops: Vec<DynUop>) -> Self {
        VecTrace { uops, pos: 0 }
    }
}

impl TraceSource for VecTrace {
    fn next_uop(&mut self) -> Option<DynUop> {
        let u = self.uops.get(self.pos).copied();
        self.pos += 1;
        u
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.uops.len() as u64)
    }

    fn source_kind(&self) -> &'static str {
        "VecTrace"
    }

    fn rewind(&mut self) -> Result<(), RewindError> {
        self.pos = 0;
        Ok(())
    }
}

/// A trace borrowed from a slice (cheap to reset; used by tests and
/// benchmarks that replay the same trace under several policies).
#[derive(Debug, Clone)]
pub struct SliceTrace<'a> {
    uops: &'a [DynUop],
    pos: usize,
}

impl<'a> SliceTrace<'a> {
    /// Wrap a slice of micro-ops.
    pub fn new(uops: &'a [DynUop]) -> Self {
        SliceTrace { uops, pos: 0 }
    }

    /// Rewind to the beginning.
    pub fn reset(&mut self) {
        self.pos = 0;
    }
}

impl TraceSource for SliceTrace<'_> {
    fn next_uop(&mut self) -> Option<DynUop> {
        let u = self.uops.get(self.pos).copied();
        self.pos += 1;
        u
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.uops.len() as u64)
    }

    fn source_kind(&self) -> &'static str {
        "SliceTrace"
    }

    fn rewind(&mut self) -> Result<(), RewindError> {
        self.reset();
        Ok(())
    }
}

/// Expand a [`crate::Region`] once into dynamic micro-ops, appending to
/// `out`, starting at sequence number `seq0`; returns the next sequence
/// number. Loads/stores receive addresses from `addr_fn(seq, inst_id)`;
/// branches receive outcomes from `taken_fn(seq, inst_id)`.
///
/// This is the minimal building block used by tests; the full workload
/// expander in `virtclust-workloads` drives it with realistic address and
/// branch models.
pub fn expand_region(
    region: &crate::Region,
    seq0: u64,
    out: &mut Vec<DynUop>,
    mut addr_fn: impl FnMut(u64, InstId) -> u64,
    mut taken_fn: impl FnMut(u64, InstId) -> bool,
) -> u64 {
    let mut seq = seq0;
    for (id, inst) in region.iter_ids() {
        let mem_addr = inst.op.is_mem().then(|| addr_fn(seq, id));
        let branch = inst.op.is_branch().then(|| BranchInfo {
            taken: taken_fn(seq, id),
            pc: (u64::from(id.region) << 32) | u64::from(id.index),
        });
        out.push(DynUop::from_static(seq, id, inst, mem_addr, branch));
        seq += 1;
    }
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::RegionBuilder;

    #[test]
    fn rewind_error_transience_classification() {
        assert!(!RewindError::unsupported_by("TraceExpander").is_transient());
        assert!(RewindError::new("interrupted seek").is_transient());
        assert!(RewindError::failed("interrupted seek", true).is_transient());
        assert!(!RewindError::failed("corrupt header", false).is_transient());
    }

    fn demo_region() -> crate::Region {
        let r = ArchReg::int;
        RegionBuilder::new(0, "demo")
            .alu(r(1), &[r(1), r(2)])
            .load(r(3), r(1))
            .store(r(3), r(4))
            .branch(r(3))
            .build()
    }

    #[test]
    fn expand_region_assigns_sequential_seq_numbers() {
        let region = demo_region();
        let mut out = Vec::new();
        let next = expand_region(&region, 10, &mut out, |s, _| s * 8, |_, _| true);
        assert_eq!(next, 14);
        assert_eq!(out.len(), 4);
        for (i, u) in out.iter().enumerate() {
            assert_eq!(u.seq, 10 + i as u64);
        }
    }

    #[test]
    fn expand_region_attaches_memory_and_branch_facts() {
        let region = demo_region();
        let mut out = Vec::new();
        expand_region(&region, 0, &mut out, |s, _| 0x1000 + s, |_, _| false);
        assert_eq!(out[0].mem_addr, None);
        assert_eq!(out[1].mem_addr, Some(0x1001));
        assert_eq!(out[2].mem_addr, Some(0x1002));
        let b = out[3].branch.expect("branch info");
        assert!(!b.taken);
        assert_eq!(out[3].mem_addr, None);
    }

    #[test]
    fn vec_trace_yields_all_then_none() {
        let region = demo_region();
        let mut uops = Vec::new();
        expand_region(&region, 0, &mut uops, |_, _| 0, |_, _| true);
        let mut t = VecTrace::new(uops.clone());
        assert_eq!(t.len_hint(), Some(4));
        let mut n = 0;
        while let Some(u) = t.next_uop() {
            assert_eq!(u, uops[n]);
            n += 1;
        }
        assert_eq!(n, 4);
        assert!(t.next_uop().is_none());
    }

    #[test]
    fn vec_trace_rewind_replays_identically() {
        let region = demo_region();
        let mut uops = Vec::new();
        expand_region(&region, 0, &mut uops, |_, _| 0, |_, _| true);
        let mut t = VecTrace::new(uops.clone());
        let first: Vec<_> = std::iter::from_fn(|| t.next_uop()).collect();
        t.rewind().unwrap();
        let second: Vec<_> = std::iter::from_fn(|| t.next_uop()).collect();
        assert_eq!(first, second);
        assert_eq!(first, uops);
    }

    #[test]
    fn rewind_defaults_to_unsupported() {
        struct Endless;
        impl TraceSource for Endless {
            fn next_uop(&mut self) -> Option<DynUop> {
                None
            }
            fn source_kind(&self) -> &'static str {
                "Endless"
            }
        }
        let err = Endless.rewind().unwrap_err();
        assert_eq!(
            err,
            RewindError::Unsupported { source: "Endless" },
            "the typed variant names the refusing source kind"
        );
        assert!(
            err.to_string().contains("Endless does not support rewind"),
            "{err}"
        );
    }

    #[test]
    fn slice_trace_reset_replays_identically() {
        let region = demo_region();
        let mut uops = Vec::new();
        expand_region(&region, 0, &mut uops, |s, _| s, |_, _| true);
        let mut t = SliceTrace::new(&uops);
        let first: Vec<_> = std::iter::from_fn(|| t.next_uop()).collect();
        t.reset();
        let second: Vec<_> = std::iter::from_fn(|| t.next_uop()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn instantiate_is_the_single_source_of_static_fields() {
        let region = demo_region();
        for (id, inst) in region.iter_ids() {
            let mem = inst.op.is_mem().then_some(0x40);
            let br = inst
                .op
                .is_branch()
                .then_some(BranchInfo { taken: true, pc: 7 });
            let via_inst = inst.instantiate(3, id, mem, br);
            let via_dyn = DynUop::from_static(3, id, inst, mem, br);
            assert_eq!(via_inst, via_dyn);
            assert!(via_inst.consistent_with(inst));
        }
    }

    #[test]
    fn consistent_with_rejects_mismatched_static_metadata() {
        let region = demo_region();
        let (id, inst) = region.iter_ids().next().unwrap();
        let u = inst.instantiate(0, id, None, None);
        let mut other = *inst;
        other.hint = crate::inst::SteerHint::Static { cluster: 1 };
        assert!(!u.consistent_with(&other));
        let mut wrong_op = *inst;
        wrong_op.op = OpClass::IntMul;
        assert!(!u.consistent_with(&wrong_op));
    }

    #[test]
    fn branch_pc_is_stable_per_static_instruction() {
        let region = demo_region();
        let mut a = Vec::new();
        let mut b = Vec::new();
        expand_region(&region, 0, &mut a, |_, _| 0, |_, _| true);
        expand_region(&region, 100, &mut b, |_, _| 0, |_, _| false);
        assert_eq!(a[3].branch.unwrap().pc, b[3].branch.unwrap().pc);
    }
}
