//! Architectural registers.
//!
//! The paper's machine renames x86 architectural registers into per-cluster
//! physical register files. Steering heuristics only need to know *which*
//! architectural register a micro-op reads or writes and whether it lives in
//! the integer or floating-point space (the backend has separate INT and FP
//! register files, issue queues and functional units). We model a flat
//! x86-like space of 16 integer and 16 floating-point (SSE-style)
//! architectural registers.

use std::fmt;

/// Number of integer architectural registers (x86-64-like: 16 GPRs).
pub const NUM_INT_ARCH_REGS: usize = 16;
/// Number of floating-point architectural registers (SSE-like: 16 XMMs).
pub const NUM_FLT_ARCH_REGS: usize = 16;
/// Total architectural register count across both classes.
pub const NUM_ARCH_REGS: usize = NUM_INT_ARCH_REGS + NUM_FLT_ARCH_REGS;

/// The two register classes of the clustered backend.
///
/// Each cluster has a separate 256-entry INT register file and a 256-entry FP
/// register file (Table 2 of the paper), so every architectural register
/// belongs to exactly one class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// Integer / general-purpose registers.
    Int,
    /// Floating-point / SIMD registers.
    Flt,
}

impl RegClass {
    /// Number of architectural registers in this class.
    #[inline]
    pub fn arch_count(self) -> usize {
        match self {
            RegClass::Int => NUM_INT_ARCH_REGS,
            RegClass::Flt => NUM_FLT_ARCH_REGS,
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "INT"),
            RegClass::Flt => write!(f, "FP"),
        }
    }
}

/// An architectural register: a class plus an index within the class.
///
/// `ArchReg` is the currency of steering: the dependence-based heuristics
/// look up, per architectural register, which cluster will produce (or
/// already holds) its current value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchReg {
    /// Register class (integer or floating-point).
    pub class: RegClass,
    /// Index within the class; must be `< class.arch_count()`.
    pub index: u8,
}

impl ArchReg {
    /// Integer register `r{i}`.
    ///
    /// # Panics
    /// Panics if `i >= NUM_INT_ARCH_REGS`.
    #[inline]
    pub fn int(i: u8) -> Self {
        assert!(
            (i as usize) < NUM_INT_ARCH_REGS,
            "integer register index {i} out of range"
        );
        ArchReg {
            class: RegClass::Int,
            index: i,
        }
    }

    /// Floating-point register `f{i}`.
    ///
    /// # Panics
    /// Panics if `i >= NUM_FLT_ARCH_REGS`.
    #[inline]
    pub fn flt(i: u8) -> Self {
        assert!(
            (i as usize) < NUM_FLT_ARCH_REGS,
            "floating-point register index {i} out of range"
        );
        ArchReg {
            class: RegClass::Flt,
            index: i,
        }
    }

    /// Flat index into a table covering both classes: integer registers come
    /// first, then floating-point registers. Useful for rename/location
    /// tables sized [`NUM_ARCH_REGS`].
    #[inline]
    pub fn flat(self) -> usize {
        match self.class {
            RegClass::Int => self.index as usize,
            RegClass::Flt => NUM_INT_ARCH_REGS + self.index as usize,
        }
    }

    /// Inverse of [`ArchReg::flat`].
    ///
    /// # Panics
    /// Panics if `flat >= NUM_ARCH_REGS`.
    #[inline]
    pub fn from_flat(flat: usize) -> Self {
        assert!(
            flat < NUM_ARCH_REGS,
            "flat register index {flat} out of range"
        );
        if flat < NUM_INT_ARCH_REGS {
            ArchReg {
                class: RegClass::Int,
                index: flat as u8,
            }
        } else {
            ArchReg {
                class: RegClass::Flt,
                index: (flat - NUM_INT_ARCH_REGS) as u8,
            }
        }
    }

    /// Iterator over every architectural register (both classes).
    pub fn all() -> impl Iterator<Item = ArchReg> {
        (0..NUM_ARCH_REGS).map(ArchReg::from_flat)
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.index),
            RegClass::Flt => write!(f, "f{}", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_roundtrip_covers_all_registers() {
        for flat in 0..NUM_ARCH_REGS {
            let r = ArchReg::from_flat(flat);
            assert_eq!(r.flat(), flat);
        }
    }

    #[test]
    fn int_and_flt_flat_ranges_are_disjoint() {
        let max_int = ArchReg::int((NUM_INT_ARCH_REGS - 1) as u8).flat();
        let min_flt = ArchReg::flt(0).flat();
        assert!(max_int < min_flt);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ArchReg::int(3).to_string(), "r3");
        assert_eq!(ArchReg::flt(11).to_string(), "f11");
    }

    #[test]
    fn all_yields_each_register_once() {
        let regs: Vec<_> = ArchReg::all().collect();
        assert_eq!(regs.len(), NUM_ARCH_REGS);
        let mut seen = [false; NUM_ARCH_REGS];
        for r in regs {
            assert!(!seen[r.flat()]);
            seen[r.flat()] = true;
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_index_out_of_range_panics() {
        let _ = ArchReg::int(NUM_INT_ARCH_REGS as u8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flat_index_out_of_range_panics() {
        let _ = ArchReg::from_flat(NUM_ARCH_REGS);
    }

    #[test]
    fn class_counts() {
        assert_eq!(RegClass::Int.arch_count(), NUM_INT_ARCH_REGS);
        assert_eq!(RegClass::Flt.arch_count(), NUM_FLT_ARCH_REGS);
        assert_eq!(NUM_ARCH_REGS, NUM_INT_ARCH_REGS + NUM_FLT_ARCH_REGS);
    }
}
