//! Static instructions and the compiler→hardware steering annotation.

use std::fmt;

use crate::op::OpClass;
use crate::reg::ArchReg;

/// Maximum number of register sources a micro-op can have.
///
/// Three covers every x86-like micro-op we model: a store needs an address
/// base, an index and the data value; everything else needs at most two.
pub const MAX_SRCS: usize = 3;

/// A compact inline list of source registers (at most [`MAX_SRCS`]).
///
/// Micro-ops are created in the billions during trace expansion, so sources
/// are stored inline rather than in a heap-allocated `Vec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SrcList {
    regs: [Option<ArchReg>; MAX_SRCS],
    len: u8,
}

impl SrcList {
    /// Empty source list.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a slice of registers.
    ///
    /// # Panics
    /// Panics if `regs.len() > MAX_SRCS`.
    pub fn from_slice(regs: &[ArchReg]) -> Self {
        assert!(regs.len() <= MAX_SRCS, "too many sources: {}", regs.len());
        let mut s = Self::new();
        for &r in regs {
            s.push(r);
        }
        s
    }

    /// Append a source register.
    ///
    /// # Panics
    /// Panics if the list already holds [`MAX_SRCS`] registers.
    #[inline]
    pub fn push(&mut self, r: ArchReg) {
        assert!((self.len as usize) < MAX_SRCS, "source list full");
        self.regs[self.len as usize] = Some(r);
        self.len += 1;
    }

    /// Number of sources.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if there are no sources.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over the sources in insertion order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.regs[..self.len as usize]
            .iter()
            .map(|r| r.expect("slot below len is Some"))
    }

    /// True if `r` appears among the sources.
    #[inline]
    pub fn contains(&self, r: ArchReg) -> bool {
        self.iter().any(|s| s == r)
    }
}

impl FromIterator<ArchReg> for SrcList {
    fn from_iter<T: IntoIterator<Item = ArchReg>>(iter: T) -> Self {
        let mut s = Self::new();
        for r in iter {
            s.push(r);
        }
        s
    }
}

impl fmt::Display for SrcList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
            first = false;
        }
        Ok(())
    }
}

/// The steering annotation a compiler pass attaches to a static instruction.
///
/// This is the paper's ISA extension: "the x86 instruction set is extended in
/// our simulation framework in order to allow the virtual cluster information
/// to be passed from the compiler to the hardware" (Sec. 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SteerHint {
    /// No annotation; hardware-only policies (OP, one-cluster) ignore hints.
    #[default]
    None,
    /// Software-only placement (OB/SPDI and RHOP): the instruction is bound
    /// to a *physical* cluster chosen at compile time.
    Static {
        /// Physical cluster index the compiler chose.
        cluster: u8,
    },
    /// Hybrid virtual-cluster steering (the paper's contribution): the
    /// instruction belongs to virtual cluster `vc`; if `leader` is set it is
    /// a *chain leader*, telling the hardware to re-evaluate the VC→physical
    /// mapping from the workload counters (Fig. 3 / Fig. 4).
    Vc {
        /// Virtual cluster identifier (`vc_id` in the paper).
        vc: u8,
        /// Chain-leader mark. Non-leaders are "marked with zero" (Fig. 3)
        /// and simply follow the current mapping-table entry.
        leader: bool,
    },
}

impl SteerHint {
    /// The virtual-cluster id, if this is a VC hint.
    #[inline]
    pub fn vc_id(self) -> Option<u8> {
        match self {
            SteerHint::Vc { vc, .. } => Some(vc),
            _ => None,
        }
    }

    /// True if this is a VC hint with the chain-leader mark set.
    #[inline]
    pub fn is_chain_leader(self) -> bool {
        matches!(self, SteerHint::Vc { leader: true, .. })
    }

    /// The static physical-cluster assignment, if this is a static hint.
    #[inline]
    pub fn static_cluster(self) -> Option<u8> {
        match self {
            SteerHint::Static { cluster } => Some(cluster),
            _ => None,
        }
    }
}

/// Identifies a static instruction inside a [`crate::Program`]:
/// region index plus instruction index within the region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId {
    /// Index of the region in `Program::regions`.
    pub region: u32,
    /// Index of the instruction in `Region::insts`.
    pub index: u32,
}

impl InstId {
    /// Construct an id.
    #[inline]
    pub fn new(region: u32, index: u32) -> Self {
        InstId { region, index }
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}:{}", self.region, self.index)
    }
}

/// A static micro-op as the compiler sees it.
///
/// Register operands use architectural names; memory addresses and branch
/// outcomes are dynamic properties supplied by the trace expander.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticInst {
    /// Operation class.
    pub op: OpClass,
    /// Source registers (data dependences flow through these).
    pub srcs: SrcList,
    /// Destination register, if the op produces a register value.
    pub dst: Option<ArchReg>,
    /// Steering annotation set by a compiler pass ([`SteerHint::None`] until
    /// a pass runs).
    pub hint: SteerHint,
}

impl StaticInst {
    /// Create an unannotated instruction.
    pub fn new(op: OpClass, srcs: &[ArchReg], dst: Option<ArchReg>) -> Self {
        StaticInst {
            op,
            srcs: SrcList::from_slice(srcs),
            dst,
            hint: SteerHint::None,
        }
    }

    /// Returns a copy with the given steering hint.
    #[must_use]
    pub fn with_hint(mut self, hint: SteerHint) -> Self {
        self.hint = hint;
        self
    }

    /// Instantiate this static instruction as a dynamic micro-op.
    ///
    /// This is the **single source of truth** for the static fields a
    /// [`crate::DynUop`] carries (`op`, `srcs`, `dst`, `hint`): every code
    /// path that turns a static instruction into a dynamic one — the trace
    /// expander, the replay pipeline, tests — funnels through here, so the
    /// copies can never drift from the program. The fields are copied (not
    /// referenced) deliberately: the simulator touches every micro-op many
    /// times per cycle and an indirection through the `Program` on each
    /// access would wreck locality.
    ///
    /// # Panics
    /// Debug-asserts that `mem_addr`/`branch` presence matches the op class
    /// (memory ops need an address, branches need an outcome).
    pub fn instantiate(
        &self,
        seq: u64,
        id: InstId,
        mem_addr: Option<u64>,
        branch: Option<crate::trace::BranchInfo>,
    ) -> crate::trace::DynUop {
        debug_assert_eq!(
            self.op.is_mem(),
            mem_addr.is_some(),
            "memory ops need an address"
        );
        debug_assert_eq!(
            self.op.is_branch(),
            branch.is_some(),
            "branches need an outcome"
        );
        crate::trace::DynUop {
            seq,
            inst: id,
            op: self.op,
            srcs: self.srcs,
            dst: self.dst,
            hint: self.hint,
            mem_addr,
            branch,
        }
    }
}

impl fmt::Display for StaticInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dst {
            Some(d) => write!(f, "{d} <- {} ({})", self.op, self.srcs),
            None => write!(f, "{} ({})", self.op, self.srcs),
        }?;
        match self.hint {
            SteerHint::None => Ok(()),
            SteerHint::Static { cluster } => write!(f, " [pc={cluster}]"),
            SteerHint::Vc { vc, leader } => {
                write!(f, " [vc={vc}{}]", if leader { ",leader" } else { "" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::ArchReg;

    #[test]
    fn srclist_push_and_iter_preserve_order() {
        let mut s = SrcList::new();
        s.push(ArchReg::int(1));
        s.push(ArchReg::flt(2));
        s.push(ArchReg::int(3));
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![ArchReg::int(1), ArchReg::flt(2), ArchReg::int(3)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "source list full")]
    fn srclist_overflow_panics() {
        let mut s = SrcList::new();
        for i in 0..=MAX_SRCS {
            s.push(ArchReg::int(i as u8));
        }
    }

    #[test]
    fn srclist_contains() {
        let s = SrcList::from_slice(&[ArchReg::int(5), ArchReg::int(7)]);
        assert!(s.contains(ArchReg::int(5)));
        assert!(!s.contains(ArchReg::int(6)));
        assert!(!s.contains(ArchReg::flt(5)));
    }

    #[test]
    fn hint_accessors() {
        assert_eq!(SteerHint::None.vc_id(), None);
        assert_eq!(SteerHint::Static { cluster: 2 }.static_cluster(), Some(2));
        let h = SteerHint::Vc {
            vc: 1,
            leader: true,
        };
        assert_eq!(h.vc_id(), Some(1));
        assert!(h.is_chain_leader());
        assert!(!SteerHint::Vc {
            vc: 1,
            leader: false
        }
        .is_chain_leader());
    }

    #[test]
    fn static_inst_display_mentions_hint() {
        let i = StaticInst::new(
            OpClass::IntAlu,
            &[ArchReg::int(1), ArchReg::int(2)],
            Some(ArchReg::int(0)),
        )
        .with_hint(SteerHint::Vc {
            vc: 1,
            leader: true,
        });
        let s = i.to_string();
        assert!(s.contains("vc=1"), "{s}");
        assert!(s.contains("leader"), "{s}");
    }

    #[test]
    fn inst_id_ordering_is_region_major() {
        assert!(InstId::new(0, 9) < InstId::new(1, 0));
        assert!(InstId::new(1, 0) < InstId::new(1, 1));
    }
}
