//! Static programs: regions of micro-ops as the compiler sees them.
//!
//! The software side of every steering mechanism in the paper operates on
//! *regions* — superblock-like single-entry instruction sequences over which
//! a data-dependence graph is built (the paper's compiler passes run "in the
//! code generation step of the Intel production compiler"). A [`Program`] is
//! a collection of regions; the workload layer decides how often and in what
//! order regions execute.

use std::fmt;

use crate::inst::{InstId, StaticInst, SteerHint};
use crate::op::OpClass;
use crate::reg::ArchReg;

/// A single-entry straight-line region of static micro-ops.
///
/// Control flow inside a region is modelled by [`OpClass::Branch`] micro-ops
/// whose dynamic outcome the trace expander chooses; steering passes treat
/// the region as a scheduling scope, exactly like an acyclic scheduling
/// region in the paper's compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Region index within its program.
    pub id: u32,
    /// Human-readable name (e.g. `"inner_loop"`), for reports and tests.
    pub name: String,
    /// The instructions, in program order.
    pub insts: Vec<StaticInst>,
}

impl Region {
    /// Create an empty region.
    pub fn new(id: u32, name: impl Into<String>) -> Self {
        Region {
            id,
            name: name.into(),
            insts: Vec::new(),
        }
    }

    /// Append an instruction, returning its index within the region.
    pub fn push(&mut self, inst: StaticInst) -> u32 {
        let idx = self.insts.len() as u32;
        self.insts.push(inst);
        idx
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the region has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The [`InstId`] of instruction `index` within this region.
    pub fn inst_id(&self, index: u32) -> InstId {
        debug_assert!((index as usize) < self.insts.len());
        InstId::new(self.id, index)
    }

    /// Iterate `(InstId, &StaticInst)` pairs in program order.
    pub fn iter_ids(&self) -> impl Iterator<Item = (InstId, &StaticInst)> + '_ {
        self.insts
            .iter()
            .enumerate()
            .map(|(i, inst)| (InstId::new(self.id, i as u32), inst))
    }

    /// Clear every steering hint (used before re-running a different pass).
    pub fn clear_hints(&mut self) {
        for inst in &mut self.insts {
            inst.hint = SteerHint::None;
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "region {} `{}` ({} insts):",
            self.id,
            self.name,
            self.insts.len()
        )?;
        for (i, inst) in self.insts.iter().enumerate() {
            writeln!(f, "  {i:4}: {inst}")?;
        }
        Ok(())
    }
}

/// A whole static program: a set of regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Program name (e.g. the benchmark it models).
    pub name: String,
    /// All regions; `regions[i].id == i` is an invariant maintained by
    /// [`Program::add_region`].
    pub regions: Vec<Region>,
}

impl Program {
    /// Create an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            regions: Vec::new(),
        }
    }

    /// Add a region built elsewhere; its `id` is rewritten to its index.
    pub fn add_region(&mut self, mut region: Region) -> u32 {
        let id = self.regions.len() as u32;
        region.id = id;
        self.regions.push(region);
        id
    }

    /// Look up an instruction by id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn inst(&self, id: InstId) -> &StaticInst {
        &self.regions[id.region as usize].insts[id.index as usize]
    }

    /// Mutable instruction lookup (used by compiler passes to set hints).
    pub fn inst_mut(&mut self, id: InstId) -> &mut StaticInst {
        &mut self.regions[id.region as usize].insts[id.index as usize]
    }

    /// Total static instruction count across regions.
    pub fn static_len(&self) -> usize {
        self.regions.iter().map(Region::len).sum()
    }

    /// Clear steering hints across all regions.
    pub fn clear_hints(&mut self) {
        for r in &mut self.regions {
            r.clear_hints();
        }
    }
}

/// Convenience builder for writing regions in tests, examples and workload
/// generators without spelling out [`StaticInst`] every time.
///
/// ```
/// use virtclust_uarch::{RegionBuilder, ArchReg};
/// let r = ArchReg::int;
/// let region = RegionBuilder::new(0, "example")
///     .alu(r(1), &[r(1), r(2)])   // I1: r1 <- r1 + r2
///     .load(r(3), r(1))           // I2: r3 <- load(r1)
///     .load(r(4), r(3))           // I3: r4 <- load(r3)
///     .build();
/// assert_eq!(region.len(), 3);
/// ```
#[derive(Debug)]
pub struct RegionBuilder {
    region: Region,
}

impl RegionBuilder {
    /// Start a new region.
    pub fn new(id: u32, name: impl Into<String>) -> Self {
        RegionBuilder {
            region: Region::new(id, name),
        }
    }

    /// Append an arbitrary instruction.
    #[must_use]
    pub fn inst(mut self, inst: StaticInst) -> Self {
        self.region.push(inst);
        self
    }

    /// Integer ALU op `dst <- f(srcs)`.
    #[must_use]
    pub fn alu(self, dst: ArchReg, srcs: &[ArchReg]) -> Self {
        self.inst(StaticInst::new(OpClass::IntAlu, srcs, Some(dst)))
    }

    /// Integer multiply `dst <- a * b`.
    #[must_use]
    pub fn mul(self, dst: ArchReg, a: ArchReg, b: ArchReg) -> Self {
        self.inst(StaticInst::new(OpClass::IntMul, &[a, b], Some(dst)))
    }

    /// Integer divide `dst <- a / b`.
    #[must_use]
    pub fn div(self, dst: ArchReg, a: ArchReg, b: ArchReg) -> Self {
        self.inst(StaticInst::new(OpClass::IntDiv, &[a, b], Some(dst)))
    }

    /// Load `dst <- mem[addr_base]`.
    #[must_use]
    pub fn load(self, dst: ArchReg, addr_base: ArchReg) -> Self {
        self.inst(StaticInst::new(OpClass::Load, &[addr_base], Some(dst)))
    }

    /// Store `mem[addr_base] <- data`.
    #[must_use]
    pub fn store(self, addr_base: ArchReg, data: ArchReg) -> Self {
        self.inst(StaticInst::new(OpClass::Store, &[addr_base, data], None))
    }

    /// Conditional branch testing `cond`.
    #[must_use]
    pub fn branch(self, cond: ArchReg) -> Self {
        self.inst(StaticInst::new(OpClass::Branch, &[cond], None))
    }

    /// FP add `dst <- a + b`.
    #[must_use]
    pub fn fadd(self, dst: ArchReg, a: ArchReg, b: ArchReg) -> Self {
        self.inst(StaticInst::new(OpClass::FpAdd, &[a, b], Some(dst)))
    }

    /// FP multiply `dst <- a * b`.
    #[must_use]
    pub fn fmul(self, dst: ArchReg, a: ArchReg, b: ArchReg) -> Self {
        self.inst(StaticInst::new(OpClass::FpMul, &[a, b], Some(dst)))
    }

    /// FP divide `dst <- a / b`.
    #[must_use]
    pub fn fdiv(self, dst: ArchReg, a: ArchReg, b: ArchReg) -> Self {
        self.inst(StaticInst::new(OpClass::FpDiv, &[a, b], Some(dst)))
    }

    /// No-op.
    #[must_use]
    pub fn nop(self) -> Self {
        self.inst(StaticInst::new(OpClass::Nop, &[], None))
    }

    /// Finish and return the region.
    pub fn build(self) -> Region {
        self.region
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_inst_region() -> Region {
        // The motivating example from Sec. 2.1 of the paper:
        //   I1: R1 <- R1 + R2
        //   I2: R3 <- Load(R1)
        //   I3: R4 <- Load(R3)
        let r = ArchReg::int;
        RegionBuilder::new(0, "sec2.1")
            .alu(r(1), &[r(1), r(2)])
            .load(r(3), r(1))
            .load(r(4), r(3))
            .build()
    }

    #[test]
    fn builder_produces_expected_ops() {
        let region = three_inst_region();
        assert_eq!(region.insts[0].op, OpClass::IntAlu);
        assert_eq!(region.insts[1].op, OpClass::Load);
        assert_eq!(region.insts[2].op, OpClass::Load);
        assert_eq!(region.insts[1].srcs.iter().next(), Some(ArchReg::int(1)));
        assert_eq!(region.insts[2].dst, Some(ArchReg::int(4)));
    }

    #[test]
    fn program_rewrites_region_ids() {
        let mut p = Program::new("t");
        let a = p.add_region(Region::new(99, "a"));
        let b = p.add_region(Region::new(42, "b"));
        assert_eq!((a, b), (0, 1));
        assert_eq!(p.regions[0].id, 0);
        assert_eq!(p.regions[1].id, 1);
    }

    #[test]
    fn inst_lookup_and_mutation() {
        let mut p = Program::new("t");
        p.add_region(three_inst_region());
        let id = InstId::new(0, 1);
        assert_eq!(p.inst(id).op, OpClass::Load);
        p.inst_mut(id).hint = SteerHint::Vc {
            vc: 1,
            leader: true,
        };
        assert!(p.inst(id).hint.is_chain_leader());
        p.clear_hints();
        assert_eq!(p.inst(id).hint, SteerHint::None);
    }

    #[test]
    fn iter_ids_matches_indices() {
        let region = three_inst_region();
        for (i, (id, _)) in region.iter_ids().enumerate() {
            assert_eq!(id, InstId::new(0, i as u32));
        }
    }

    #[test]
    fn static_len_sums_regions() {
        let mut p = Program::new("t");
        p.add_region(three_inst_region());
        p.add_region(three_inst_region());
        assert_eq!(p.static_len(), 6);
    }
}
