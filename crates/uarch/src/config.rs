//! Machine configuration — the paper's Table 2, as data.
//!
//! Every architectural parameter of the simulated clustered machine lives
//! here so that experiments (2-cluster vs 4-cluster, ablations) are pure
//! configuration changes. [`MachineConfig::default`] reproduces Table 2 for
//! the 2-cluster baseline.

use std::fmt;

use crate::op::OpClass;

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Access (hit) latency in cycles.
    pub hit_latency: u32,
    /// Read ports available per cycle.
    pub read_ports: usize,
    /// Write ports available per cycle.
    pub write_ports: usize,
}

impl CacheConfig {
    /// Number of sets given a line size.
    ///
    /// # Panics
    /// Panics if the geometry does not divide evenly.
    pub fn sets(&self, line_bytes: usize) -> usize {
        let lines = self.size_bytes / line_bytes;
        assert!(
            lines.is_multiple_of(self.ways),
            "cache geometry must divide evenly"
        );
        lines / self.ways
    }
}

/// Per-`OpClass` execution latencies. Memory-op latencies cover address
/// generation only; the cache hierarchy adds access time dynamically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    latencies: [u32; 11],
}

impl LatencyModel {
    fn slot(op: OpClass) -> usize {
        match op {
            OpClass::IntAlu => 0,
            OpClass::IntMul => 1,
            OpClass::IntDiv => 2,
            OpClass::Load => 3,
            OpClass::Store => 4,
            OpClass::Branch => 5,
            OpClass::FpAdd => 6,
            OpClass::FpMul => 7,
            OpClass::FpDiv => 8,
            OpClass::Copy => 9,
            OpClass::Nop => 10,
        }
    }

    /// Latency of `op` in cycles.
    #[inline]
    pub fn of(&self, op: OpClass) -> u32 {
        self.latencies[Self::slot(op)]
    }

    /// Override the latency of one class (builder style).
    #[must_use]
    pub fn with(mut self, op: OpClass, latency: u32) -> Self {
        assert!(latency >= 1, "latencies must be at least 1 cycle");
        self.latencies[Self::slot(op)] = latency;
        self
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        let mut latencies = [1u32; 11];
        for op in OpClass::PROGRAM_CLASSES {
            latencies[Self::slot(op)] = op.default_latency();
        }
        latencies[Self::slot(OpClass::Copy)] = OpClass::Copy.default_latency();
        LatencyModel { latencies }
    }
}

/// Errors detected by [`MachineConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A parameter that must be non-zero was zero.
    Zero(&'static str),
    /// Cache geometry does not divide into whole sets.
    BadCacheGeometry(&'static str),
    /// Cluster count outside the supported range (1..=8).
    BadClusterCount(usize),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Zero(what) => write!(f, "parameter `{what}` must be non-zero"),
            ConfigError::BadCacheGeometry(which) => {
                write!(
                    f,
                    "cache `{which}` geometry does not divide into whole sets"
                )
            }
            ConfigError::BadClusterCount(n) => {
                write!(f, "cluster count {n} unsupported (expected 1..=8)")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full machine configuration (the paper's Table 2).
///
/// Field-by-field provenance is given in the per-field docs; the defaults are
/// the values the paper lists for its baseline machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of physical backend clusters (paper: 2 baseline, 4 scaling).
    pub num_clusters: usize,
    /// Fetch width in micro-ops/cycle (paper: "6 micro-ops/cycle").
    pub fetch_width: usize,
    /// Trace-cache capacity in micro-ops (paper: "24K micro-op trace cache").
    pub trace_cache_uops: usize,
    /// Front-end depth: fetch-to-dispatch latency in cycles (paper: 5).
    pub fetch_to_dispatch: u32,
    /// Decode/rename/steer width for the integer pipe (paper: "3+3").
    pub dispatch_width_int: usize,
    /// Decode/rename/steer width for the FP pipe (paper: "3+3").
    pub dispatch_width_fp: usize,
    /// Reorder-buffer capacity in micro-ops (paper: "256+256 entries",
    /// modelled as a unified buffer — see DESIGN.md deviations).
    pub rob_entries: usize,
    /// Commit width in micro-ops/cycle (paper: "commit 3+3").
    pub commit_width: usize,
    /// Per-cluster integer issue-queue entries (paper: 48).
    pub iq_int_entries: usize,
    /// Integer issues per cluster per cycle (paper: 2).
    pub iq_int_issue: usize,
    /// Per-cluster FP issue-queue entries (paper: 48).
    pub iq_fp_entries: usize,
    /// FP issues per cluster per cycle (paper: 2).
    pub iq_fp_issue: usize,
    /// Per-cluster copy-queue entries (paper: 24).
    pub copy_queue_entries: usize,
    /// Copy issues per cluster per cycle (paper: 1).
    pub copy_issue: usize,
    /// Per-cluster integer physical registers (paper: 256).
    pub int_regs_per_cluster: usize,
    /// Per-cluster FP physical registers (paper: 256).
    pub fp_regs_per_cluster: usize,
    /// Inter-cluster link latency in cycles (paper: 1, point-to-point).
    pub copy_latency: u32,
    /// Copies a link direction can start per cycle (paper: 1 copy/cycle).
    pub copies_per_link_per_cycle: usize,
    /// Unified load/store-queue entries (paper: 256).
    pub lsq_entries: usize,
    /// Cache line size in bytes (not in Table 2; 64 B is the era's norm).
    pub line_bytes: usize,
    /// L1 data cache (paper: 32 KB, 4-way, 3-cycle hit, 2R/1W ports).
    pub l1: CacheConfig,
    /// Unified L2 (paper: 2 MB, 16-way, 13-cycle hit, 1R/1W ports).
    pub l2: CacheConfig,
    /// Main-memory latency in cycles (paper: "≥ 500 cycle miss").
    pub mem_latency: u32,
    /// Functional-unit latencies.
    pub latencies: LatencyModel,
    /// log2 of gshare predictor table entries (branch handling is a
    /// trace-driven approximation; see DESIGN.md deviations).
    pub predictor_log2_entries: u32,
    /// Occupancy fraction above which a cluster counts as "busy" for the
    /// occupancy-aware (OP) policy's stall-over-steer decision (and the VC
    /// mapper's congestion-triggered remaps). Not in Table 2; 0.85 keeps
    /// stall-over-steer from head-of-line-blocking dispatch when the
    /// alternative cluster still has a usable margin of queue space.
    pub busy_occupancy_threshold: f64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            num_clusters: 2,
            fetch_width: 6,
            trace_cache_uops: 24 * 1024,
            fetch_to_dispatch: 5,
            dispatch_width_int: 3,
            dispatch_width_fp: 3,
            rob_entries: 512,
            commit_width: 6,
            iq_int_entries: 48,
            iq_int_issue: 2,
            iq_fp_entries: 48,
            iq_fp_issue: 2,
            copy_queue_entries: 24,
            copy_issue: 1,
            int_regs_per_cluster: 256,
            fp_regs_per_cluster: 256,
            copy_latency: 1,
            copies_per_link_per_cycle: 1,
            lsq_entries: 256,
            line_bytes: 64,
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 4,
                hit_latency: 3,
                read_ports: 2,
                write_ports: 1,
            },
            l2: CacheConfig {
                size_bytes: 2 * 1024 * 1024,
                ways: 16,
                hit_latency: 13,
                read_ports: 1,
                write_ports: 1,
            },
            mem_latency: 500,
            latencies: LatencyModel::default(),
            predictor_log2_entries: 14,
            busy_occupancy_threshold: 0.85,
        }
    }
}

impl MachineConfig {
    /// The paper's baseline 2-cluster machine (Table 2).
    pub fn paper_2cluster() -> Self {
        Self::default()
    }

    /// The paper's 4-cluster scaling configuration (Sec. 5.4): identical
    /// per-cluster resources, four clusters.
    pub fn paper_4cluster() -> Self {
        Self::default().with_clusters(4)
    }

    /// An 8-cluster extrapolation of the paper's scaling study (ROADMAP
    /// "8-cluster runs"): identical per-cluster resources, eight clusters —
    /// the maximum the cluster bit-masks support. Exercises location and
    /// wakeup masks beyond 4 bits.
    pub fn paper_8cluster() -> Self {
        Self::default().with_clusters(8)
    }

    /// Return a copy with a different cluster count.
    #[must_use]
    pub fn with_clusters(mut self, n: usize) -> Self {
        self.num_clusters = n;
        self
    }

    /// Total dispatch width (INT pipe + FP pipe).
    #[inline]
    pub fn dispatch_width(&self) -> usize {
        self.dispatch_width_int + self.dispatch_width_fp
    }

    /// Validate internal consistency; call once before simulation.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_clusters == 0 || self.num_clusters > 8 {
            return Err(ConfigError::BadClusterCount(self.num_clusters));
        }
        macro_rules! nz {
            ($($f:ident),*) => {$(
                if self.$f == 0 { return Err(ConfigError::Zero(stringify!($f))); }
            )*};
        }
        nz!(
            fetch_width,
            dispatch_width_int,
            dispatch_width_fp,
            rob_entries,
            commit_width,
            iq_int_entries,
            iq_int_issue,
            iq_fp_entries,
            iq_fp_issue,
            copy_queue_entries,
            copy_issue,
            int_regs_per_cluster,
            fp_regs_per_cluster,
            copies_per_link_per_cycle,
            lsq_entries,
            line_bytes
        );
        // Latencies that feed the simulator's event calendar. Completions
        // are scheduled at `now + latency` and the calendar requires
        // strictly-future events (`SimSession::schedule` asserts
        // `at > now`); a zero here would mean same-cycle delivery, which
        // the event-driven core — and the idle-cycle skipping built on
        // top of it — never supports.
        if self.l1.hit_latency == 0 {
            return Err(ConfigError::Zero("l1.hit_latency"));
        }
        if self.l2.hit_latency == 0 {
            return Err(ConfigError::Zero("l2.hit_latency"));
        }
        if self.mem_latency == 0 {
            return Err(ConfigError::Zero("mem_latency"));
        }
        if !self
            .l1
            .size_bytes
            .is_multiple_of(self.line_bytes * self.l1.ways)
        {
            return Err(ConfigError::BadCacheGeometry("L1"));
        }
        if !self
            .l2
            .size_bytes
            .is_multiple_of(self.line_bytes * self.l2.ways)
        {
            return Err(ConfigError::BadCacheGeometry("L2"));
        }
        if !(0.0..=1.0).contains(&self.busy_occupancy_threshold) {
            return Err(ConfigError::Zero("busy_occupancy_threshold"));
        }
        Ok(())
    }

    /// Render the configuration as the paper's Table 2 (markdown).
    pub fn table2_markdown(&self) -> String {
        let mut s = String::new();
        s.push_str("| Section | Parameter | Value |\n|---|---|---|\n");
        let mut row = |sec: &str, p: &str, v: String| {
            s.push_str(&format!("| {sec} | {p} | {v} |\n"));
        };
        row(
            "Front-end",
            "Fetch",
            format!(
                "{}K micro-op trace cache, {} micro-ops/cycle, {} cycle fetch-to-dispatch",
                self.trace_cache_uops / 1024,
                self.fetch_width,
                self.fetch_to_dispatch
            ),
        );
        row(
            "Front-end",
            "Decode, rename and steer",
            format!(
                "{}+{} micro-ops/cycle, 1 cycle latency",
                self.dispatch_width_int, self.dispatch_width_fp
            ),
        );
        row(
            "Front-end",
            "Reorder Buffer",
            format!(
                "{} entries, commit {} micro-ops/cycle",
                self.rob_entries, self.commit_width
            ),
        );
        row(
            "Back-end (per cluster)",
            "Issue queues",
            format!(
                "{}-entry INT {}/cycle, {}-entry FP {}/cycle, {}-entry COPY {}/cycle",
                self.iq_int_entries,
                self.iq_int_issue,
                self.iq_fp_entries,
                self.iq_fp_issue,
                self.copy_queue_entries,
                self.copy_issue
            ),
        );
        row(
            "Back-end (per cluster)",
            "Register file",
            format!(
                "{}-entry INT, {}-entry FP",
                self.int_regs_per_cluster, self.fp_regs_per_cluster
            ),
        );
        row(
            "Back-end",
            "Inter-cluster communication",
            format!(
                "bi-directional point-to-point links, {} cycle latency, {} copy/cycle",
                self.copy_latency, self.copies_per_link_per_cycle
            ),
        );
        row(
            "Memory",
            "L1 data cache",
            format!(
                "{}KB, {}-way, {} cycle hit, {} read ports, {} write port(s), {}-entry LSQ",
                self.l1.size_bytes / 1024,
                self.l1.ways,
                self.l1.hit_latency,
                self.l1.read_ports,
                self.l1.write_ports,
                self.lsq_entries
            ),
        );
        row(
            "Memory",
            "L2 unified cache",
            format!(
                "{}MB, {}-way, {} cycle hit, >= {} cycle miss",
                self.l2.size_bytes / (1024 * 1024),
                self.l2.ways,
                self.l2.hit_latency,
                self.mem_latency
            ),
        );
        row("Clusters", "Count", format!("{}", self.num_clusters));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_table2() {
        let c = MachineConfig::default();
        assert_eq!(c.num_clusters, 2);
        assert_eq!(c.fetch_width, 6);
        assert_eq!(c.trace_cache_uops, 24 * 1024);
        assert_eq!(c.fetch_to_dispatch, 5);
        assert_eq!((c.dispatch_width_int, c.dispatch_width_fp), (3, 3));
        assert_eq!(c.rob_entries, 512);
        assert_eq!(c.commit_width, 6);
        assert_eq!((c.iq_int_entries, c.iq_int_issue), (48, 2));
        assert_eq!((c.iq_fp_entries, c.iq_fp_issue), (48, 2));
        assert_eq!((c.copy_queue_entries, c.copy_issue), (24, 1));
        assert_eq!(c.int_regs_per_cluster, 256);
        assert_eq!(c.fp_regs_per_cluster, 256);
        assert_eq!(c.copy_latency, 1);
        assert_eq!(c.lsq_entries, 256);
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l1.ways, 4);
        assert_eq!(c.l1.hit_latency, 3);
        assert_eq!(c.l2.size_bytes, 2 * 1024 * 1024);
        assert_eq!(c.l2.ways, 16);
        assert_eq!(c.l2.hit_latency, 13);
        assert_eq!(c.mem_latency, 500);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn four_cluster_config_only_changes_cluster_count() {
        let base = MachineConfig::paper_2cluster();
        let four = MachineConfig::paper_4cluster();
        assert_eq!(four.num_clusters, 4);
        assert!(four.validate().is_ok());
        assert_eq!(four.with_clusters(2), base);
    }

    #[test]
    fn eight_cluster_config_only_changes_cluster_count() {
        let eight = MachineConfig::paper_8cluster();
        assert_eq!(eight.num_clusters, 8);
        assert!(eight.validate().is_ok());
        assert_eq!(eight.with_clusters(2), MachineConfig::paper_2cluster());
    }

    #[test]
    fn validate_rejects_zero_and_bad_geometry() {
        let c = MachineConfig {
            fetch_width: 0,
            ..Default::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::Zero("fetch_width")));

        let mut c = MachineConfig {
            num_clusters: 0,
            ..Default::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::BadClusterCount(0)));
        c.num_clusters = 9;
        assert_eq!(c.validate(), Err(ConfigError::BadClusterCount(9)));

        let mut c = MachineConfig::default();
        c.l1.size_bytes = 1000; // not divisible by 64B * 4 ways
        assert_eq!(c.validate(), Err(ConfigError::BadCacheGeometry("L1")));
    }

    #[test]
    fn validate_rejects_zero_event_latencies() {
        // The event calendar requires strictly-future completions; a zero
        // cache or memory latency would schedule a same-cycle event.
        let mut c = MachineConfig::default();
        c.l1.hit_latency = 0;
        assert_eq!(c.validate(), Err(ConfigError::Zero("l1.hit_latency")));

        let mut c = MachineConfig::default();
        c.l2.hit_latency = 0;
        assert_eq!(c.validate(), Err(ConfigError::Zero("l2.hit_latency")));

        let c = MachineConfig {
            mem_latency: 0,
            ..Default::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::Zero("mem_latency")));
    }

    #[test]
    fn cache_sets_computed_from_geometry() {
        let c = MachineConfig::default();
        assert_eq!(c.l1.sets(c.line_bytes), 32 * 1024 / 64 / 4);
        assert_eq!(c.l2.sets(c.line_bytes), 2 * 1024 * 1024 / 64 / 16);
    }

    #[test]
    fn latency_model_override() {
        let lat = LatencyModel::default().with(OpClass::IntMul, 4);
        assert_eq!(lat.of(OpClass::IntMul), 4);
        assert_eq!(lat.of(OpClass::IntAlu), 1);
    }

    #[test]
    fn table2_render_contains_key_values() {
        let md = MachineConfig::default().table2_markdown();
        assert!(md.contains("24K micro-op trace cache"));
        assert!(md.contains("48-entry INT"));
        assert!(md.contains("2MB"));
        assert!(md.contains(">= 500 cycle miss"));
    }

    #[test]
    fn dispatch_width_sums_pipes() {
        assert_eq!(MachineConfig::default().dispatch_width(), 6);
    }
}
