//! Dependence-graph construction over a region.
//!
//! Nodes are the region's static instructions (indexed by their position in
//! program order); edges are register def→use dependences plus, optionally,
//! conservative memory-order dependences (store→load, store→store on the
//! same region). Because a def always precedes its uses within a region,
//! edges point forward in program order — program order is a topological
//! order, a property the analyses exploit.

use virtclust_uarch::{ArchReg, LatencyModel, OpClass, Region, NUM_ARCH_REGS};

/// The kind of dependence an edge represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// True register data dependence (def → use).
    Data,
    /// Conservative memory ordering (store → later load/store).
    Memory,
}

/// A node in the dependence graph: one static instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DdgNode {
    /// Instruction index within the region (also the node id).
    pub index: u32,
    /// Operation class.
    pub op: OpClass,
    /// Static execution latency used by compile-time cost models.
    pub latency: u32,
}

/// A directed dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DdgEdge {
    /// Producer node id.
    pub from: u32,
    /// Consumer node id.
    pub to: u32,
    /// Register carrying the value for [`DepKind::Data`] edges.
    pub reg: Option<ArchReg>,
    /// Dependence kind.
    pub kind: DepKind,
}

/// A data-dependence graph over one region.
#[derive(Debug, Clone)]
pub struct Ddg {
    nodes: Vec<DdgNode>,
    edges: Vec<DdgEdge>,
    succs: Vec<Vec<u32>>,
    preds: Vec<Vec<u32>>,
}

impl Ddg {
    /// Build the DDG of `region` with register dependences only.
    pub fn from_region(region: &Region, lat: &LatencyModel) -> Self {
        Self::build(region, lat, false)
    }

    /// Build the DDG of `region` including conservative memory-order edges:
    /// every store depends on the previous store, and every load depends on
    /// the most recent store. (The hardware disambiguates by address at run
    /// time; compile-time passes that want to be safe use this variant.)
    pub fn from_region_with_mem(region: &Region, lat: &LatencyModel) -> Self {
        Self::build(region, lat, true)
    }

    fn build(region: &Region, lat: &LatencyModel, mem_edges: bool) -> Self {
        let n = region.insts.len();
        let mut nodes = Vec::with_capacity(n);
        let mut edges = Vec::new();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];

        // Last writer of each architectural register, by flat index.
        let mut last_writer: [Option<u32>; NUM_ARCH_REGS] = [None; NUM_ARCH_REGS];
        let mut last_store: Option<u32> = None;

        let push_edge = |edges: &mut Vec<DdgEdge>,
                         succs: &mut Vec<Vec<u32>>,
                         preds: &mut Vec<Vec<u32>>,
                         e: DdgEdge| {
            // Deduplicate identical (from, to) pairs: multiple registers
            // between the same pair still mean one scheduling dependence,
            // but keep the edge list exact for communication counting.
            if !succs[e.from as usize].contains(&e.to) {
                succs[e.from as usize].push(e.to);
                preds[e.to as usize].push(e.from);
            }
            edges.push(e);
        };

        for (i, inst) in region.insts.iter().enumerate() {
            let i = i as u32;
            nodes.push(DdgNode {
                index: i,
                op: inst.op,
                latency: lat.of(inst.op),
            });

            for src in inst.srcs.iter() {
                if let Some(w) = last_writer[src.flat()] {
                    push_edge(
                        &mut edges,
                        &mut succs,
                        &mut preds,
                        DdgEdge {
                            from: w,
                            to: i,
                            reg: Some(src),
                            kind: DepKind::Data,
                        },
                    );
                }
            }

            if mem_edges && inst.op.is_mem() {
                if let Some(s) = last_store {
                    push_edge(
                        &mut edges,
                        &mut succs,
                        &mut preds,
                        DdgEdge {
                            from: s,
                            to: i,
                            reg: None,
                            kind: DepKind::Memory,
                        },
                    );
                }
                if inst.op == OpClass::Store {
                    last_store = Some(i);
                }
            } else if inst.op == OpClass::Store {
                last_store = Some(i);
            }

            if let Some(dst) = inst.dst {
                last_writer[dst.flat()] = Some(i);
            }
        }

        Ddg {
            nodes,
            edges,
            succs,
            preds,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// The nodes, indexed by instruction position.
    #[inline]
    pub fn nodes(&self) -> &[DdgNode] {
        &self.nodes
    }

    /// All edges (may contain parallel edges for distinct registers).
    #[inline]
    pub fn edges(&self) -> &[DdgEdge] {
        &self.edges
    }

    /// Unique successor node ids of `i`.
    #[inline]
    pub fn succs(&self, i: u32) -> &[u32] {
        &self.succs[i as usize]
    }

    /// Unique predecessor node ids of `i`.
    #[inline]
    pub fn preds(&self, i: u32) -> &[u32] {
        &self.preds[i as usize]
    }

    /// Node ids with no predecessors (DDG roots).
    pub fn roots(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.n() as u32).filter(|&i| self.preds(i).is_empty())
    }

    /// Node ids with no successors (DDG leaves).
    pub fn leaves(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.n() as u32).filter(|&i| self.succs(i).is_empty())
    }

    /// A topological order of the nodes. Because every dependence points
    /// forward in program order, program order itself is topological.
    pub fn topo_order(&self) -> impl DoubleEndedIterator<Item = u32> {
        0..self.n() as u32
    }

    /// Latency of node `i` (convenience accessor).
    #[inline]
    pub fn latency(&self, i: u32) -> u32 {
        self.nodes[i as usize].latency
    }

    /// Verify structural invariants (edges forward in program order,
    /// adjacency consistent with the edge list). Used by tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        for e in &self.edges {
            if e.from >= e.to {
                return Err(format!("edge {}->{} not forward", e.from, e.to));
            }
            if !self.succs[e.from as usize].contains(&e.to) {
                return Err(format!("edge {}->{} missing from succs", e.from, e.to));
            }
            if !self.preds[e.to as usize].contains(&e.from) {
                return Err(format!("edge {}->{} missing from preds", e.from, e.to));
            }
        }
        for (i, ss) in self.succs.iter().enumerate() {
            for &s in ss {
                if !self.preds[s as usize].contains(&(i as u32)) {
                    return Err(format!("succ {i}->{s} lacks mirror pred"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtclust_uarch::RegionBuilder;

    fn r(i: u8) -> ArchReg {
        ArchReg::int(i)
    }

    /// The Sec. 2.1 example: I1: r1 <- r1+r2; I2: r3 <- load(r1); I3: r4 <- load(r3).
    fn sec21_region() -> Region {
        RegionBuilder::new(0, "sec2.1")
            .alu(r(1), &[r(1), r(2)])
            .load(r(3), r(1))
            .load(r(4), r(3))
            .build()
    }

    #[test]
    fn sec21_chain_has_expected_edges() {
        let ddg = Ddg::from_region(&sec21_region(), &LatencyModel::default());
        assert_eq!(ddg.n(), 3);
        assert_eq!(ddg.succs(0), &[1]);
        assert_eq!(ddg.succs(1), &[2]);
        assert!(ddg.succs(2).is_empty());
        assert_eq!(ddg.roots().collect::<Vec<_>>(), vec![0]);
        assert_eq!(ddg.leaves().collect::<Vec<_>>(), vec![2]);
        ddg.check_invariants().unwrap();
    }

    #[test]
    fn redefinition_breaks_dependence() {
        // i0 writes r1; i1 overwrites r1; i2 reads r1 -> depends only on i1.
        let region = RegionBuilder::new(0, "redef")
            .alu(r(1), &[r(2)])
            .alu(r(1), &[r(3)])
            .alu(r(4), &[r(1)])
            .build();
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        assert!(ddg.succs(0).is_empty());
        assert_eq!(ddg.succs(1), &[2]);
    }

    #[test]
    fn two_sources_from_same_producer_are_one_scheduling_edge() {
        let region = RegionBuilder::new(0, "dup")
            .alu(r(1), &[r(2)])
            .mul(r(3), r(1), r(1))
            .build();
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        assert_eq!(ddg.succs(0), &[1]);
        // ...but both register reads appear in the edge list.
        assert_eq!(
            ddg.edges()
                .iter()
                .filter(|e| e.from == 0 && e.to == 1)
                .count(),
            2
        );
    }

    #[test]
    fn memory_edges_connect_stores_and_loads() {
        let region = RegionBuilder::new(0, "mem")
            .store(r(1), r(2))
            .load(r(3), r(4))
            .store(r(5), r(6))
            .build();
        let plain = Ddg::from_region(&region, &LatencyModel::default());
        assert!(plain.succs(0).is_empty(), "no register deps here");
        let mem = Ddg::from_region_with_mem(&region, &LatencyModel::default());
        assert_eq!(mem.succs(0), &[1, 2]);
        assert_eq!(
            mem.edges()
                .iter()
                .filter(|e| e.kind == DepKind::Memory)
                .count(),
            2
        );
        mem.check_invariants().unwrap();
    }

    #[test]
    fn independent_chains_have_no_cross_edges() {
        let region = RegionBuilder::new(0, "par")
            .alu(r(1), &[r(1)])
            .alu(r(2), &[r(2)])
            .alu(r(1), &[r(1)])
            .alu(r(2), &[r(2)])
            .build();
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        assert_eq!(ddg.succs(0), &[2]);
        assert_eq!(ddg.succs(1), &[3]);
        assert_eq!(ddg.roots().count(), 2);
        assert_eq!(ddg.leaves().count(), 2);
    }

    #[test]
    fn latencies_come_from_model() {
        let lat = LatencyModel::default().with(OpClass::IntAlu, 7);
        let region = RegionBuilder::new(0, "lat").alu(r(1), &[r(2)]).build();
        let ddg = Ddg::from_region(&region, &lat);
        assert_eq!(ddg.latency(0), 7);
    }

    #[test]
    fn empty_region_builds_empty_graph() {
        let region = Region::new(0, "empty");
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        assert_eq!(ddg.n(), 0);
        assert_eq!(ddg.edges().len(), 0);
        ddg.check_invariants().unwrap();
    }
}
