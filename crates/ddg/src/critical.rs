//! Critical-path analysis: the paper's depth/height computation.
//!
//! Sec. 4.2: *"This computation requires two traversals of a DDG: one for
//! computing the depth and another for computing the height of each node
//! in the DDG. The criticality of each node in the DDG is then defined to
//! be the sum of its depth and height."*
//!
//! Definitions used here (standard dataflow form, latency-weighted):
//!
//! * `depth[i]`  — earliest start time of `i`: the longest latency-weighted
//!   path from any root up to (but excluding) `i`;
//! * `height[i]` — the longest latency-weighted path from `i` (inclusive)
//!   to any leaf;
//! * `criticality[i] = depth[i] + height[i]` — the length of the longest
//!   path through `i`; nodes with `criticality == cp_length` lie on a
//!   critical path;
//! * `slack[i] = cp_length - criticality[i]` — how far `i` can slip without
//!   lengthening the schedule (RHOP's node/edge weights derive from this).

use crate::graph::Ddg;

/// Result of critical-path analysis over a [`Ddg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Criticality {
    /// Earliest start time per node (longest path from roots, exclusive).
    pub depth: Vec<u64>,
    /// Longest path to a leaf per node (inclusive of the node's latency).
    pub height: Vec<u64>,
    /// `depth + height` per node.
    pub criticality: Vec<u64>,
    /// Length of the critical path (max criticality; 0 for empty graphs).
    pub cp_length: u64,
}

impl Criticality {
    /// Run the two traversals over `ddg`.
    pub fn compute(ddg: &Ddg) -> Self {
        let n = ddg.n();
        let mut depth = vec![0u64; n];
        let mut height = vec![0u64; n];

        // Forward traversal (program order is topological): depth.
        for i in ddg.topo_order() {
            let di = depth[i as usize];
            let complete = di + u64::from(ddg.latency(i));
            for &s in ddg.succs(i) {
                if depth[s as usize] < complete {
                    depth[s as usize] = complete;
                }
            }
        }

        // Backward traversal: height.
        for i in ddg.topo_order().rev() {
            let mut h = 0u64;
            for &s in ddg.succs(i) {
                h = h.max(height[s as usize]);
            }
            height[i as usize] = h + u64::from(ddg.latency(i));
        }

        let criticality: Vec<u64> = depth.iter().zip(&height).map(|(&d, &h)| d + h).collect();
        let cp_length = criticality.iter().copied().max().unwrap_or(0);

        Criticality {
            depth,
            height,
            criticality,
            cp_length,
        }
    }

    /// Slack of node `i`: `cp_length - criticality[i]`.
    #[inline]
    pub fn slack(&self, i: u32) -> u64 {
        self.cp_length - self.criticality[i as usize]
    }

    /// True if node `i` lies on a critical path.
    #[inline]
    pub fn is_critical(&self, i: u32) -> bool {
        self.criticality[i as usize] == self.cp_length
    }

    /// Node ids sorted by descending criticality, ties broken by program
    /// order. This is the visit order of the paper's top-down VC partition
    /// ("takes into account the criticality of the instructions").
    pub fn by_criticality(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.criticality.len() as u32).collect();
        order.sort_by(|&a, &b| {
            self.criticality[b as usize]
                .cmp(&self.criticality[a as usize])
                .then(a.cmp(&b))
        });
        order
    }

    /// Number of nodes analysed.
    #[inline]
    pub fn n(&self) -> usize {
        self.criticality.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtclust_uarch::{ArchReg, LatencyModel, Region, RegionBuilder};

    fn r(i: u8) -> ArchReg {
        ArchReg::int(i)
    }

    fn chain3() -> Region {
        // alu(1) -> load(1+cache…; static latency 1) -> load; all latency 1 statically
        RegionBuilder::new(0, "chain")
            .alu(r(1), &[r(1), r(2)])
            .load(r(3), r(1))
            .load(r(4), r(3))
            .build()
    }

    #[test]
    fn chain_depths_accumulate_latency() {
        let ddg = Ddg::from_region(&chain3(), &LatencyModel::default());
        let c = Criticality::compute(&ddg);
        // latencies: alu=1, load=1 (AGU only at compile time)
        assert_eq!(c.depth, vec![0, 1, 2]);
        assert_eq!(c.height, vec![3, 2, 1]);
        assert_eq!(c.criticality, vec![3, 3, 3]);
        assert_eq!(c.cp_length, 3);
        assert!(c.is_critical(0) && c.is_critical(1) && c.is_critical(2));
        assert_eq!(c.slack(1), 0);
    }

    #[test]
    fn diamond_assigns_slack_to_short_arm() {
        // n0 -> n1 (mul, lat 3) -> n3 ; n0 -> n2 (alu, lat 1) -> n3
        let region = RegionBuilder::new(0, "diamond")
            .alu(r(1), &[r(1)])
            .mul(r(2), r(1), r(1))
            .alu(r(3), &[r(1)])
            .alu(r(4), &[r(2), r(3)])
            .build();
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        let c = Criticality::compute(&ddg);
        assert_eq!(c.cp_length, 1 + 3 + 1);
        assert!(c.is_critical(0));
        assert!(c.is_critical(1));
        assert!(!c.is_critical(2), "short arm has slack");
        assert!(c.is_critical(3));
        assert_eq!(c.slack(2), 2);
    }

    #[test]
    fn independent_nodes_have_their_own_path_lengths() {
        let region = RegionBuilder::new(0, "indep")
            .mul(r(1), r(1), r(1)) // lat 3
            .alu(r(2), &[r(2)]) // lat 1
            .build();
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        let c = Criticality::compute(&ddg);
        assert_eq!(c.cp_length, 3);
        assert!(c.is_critical(0));
        assert!(!c.is_critical(1));
        assert_eq!(c.slack(1), 2);
    }

    #[test]
    fn by_criticality_orders_critical_first() {
        let region = RegionBuilder::new(0, "order")
            .alu(r(2), &[r(2)])
            .mul(r(1), r(1), r(1))
            .alu(r(3), &[r(1)])
            .build();
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        let c = Criticality::compute(&ddg);
        let order = c.by_criticality();
        // critical chain is 1 -> 2 (3+1 = 4); node 0 has criticality 1.
        assert_eq!(order[0], 1);
        assert_eq!(order[1], 2);
        assert_eq!(order[2], 0);
    }

    #[test]
    fn empty_graph_is_fine() {
        let ddg = Ddg::from_region(&Region::new(0, "e"), &LatencyModel::default());
        let c = Criticality::compute(&ddg);
        assert_eq!(c.cp_length, 0);
        assert_eq!(c.n(), 0);
        assert!(c.by_criticality().is_empty());
    }

    #[test]
    fn criticality_is_depth_plus_height_everywhere() {
        let region = RegionBuilder::new(0, "mix")
            .alu(r(1), &[r(1)])
            .mul(r(2), r(1), r(1))
            .load(r(3), r(2))
            .alu(r(4), &[r(4)])
            .store(r(3), r(4))
            .build();
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        let c = Criticality::compute(&ddg);
        for i in 0..c.n() as u32 {
            assert_eq!(
                c.criticality[i as usize],
                c.depth[i as usize] + c.height[i as usize]
            );
            assert!(c.slack(i) <= c.cp_length);
        }
    }
}
