//! Partition containers and quality metrics.
//!
//! Every steering pass ultimately produces a partition of a region's nodes
//! into `k` parts (virtual clusters for VC, physical clusters for OB/RHOP).
//! The two quality metrics the paper's Sec. 5.3 analyses trade off are both
//! defined here: the **edge cut** (a static proxy for copy instructions) and
//! the **imbalance** (a static proxy for issue-queue allocation stalls).

use crate::graph::Ddg;

/// An assignment of `n` nodes to `k` parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    parts: Vec<u32>,
    k: u32,
}

impl Partition {
    /// All nodes start in part 0.
    pub fn new(n: usize, k: u32) -> Self {
        assert!(k >= 1, "at least one part required");
        Partition {
            parts: vec![0; n],
            k,
        }
    }

    /// Wrap an existing assignment.
    ///
    /// # Panics
    /// Panics if any entry is `>= k`.
    pub fn from_assign(parts: Vec<u32>, k: u32) -> Self {
        assert!(k >= 1, "at least one part required");
        assert!(parts.iter().all(|&p| p < k), "assignment out of range");
        Partition { parts, k }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.parts.len()
    }

    /// Number of parts.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Part of node `i`.
    #[inline]
    pub fn part(&self, i: u32) -> u32 {
        self.parts[i as usize]
    }

    /// Raw assignment slice.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.parts
    }

    /// Move node `i` to part `p`.
    ///
    /// # Panics
    /// Panics if `p >= k`.
    #[inline]
    pub fn set(&mut self, i: u32, p: u32) {
        assert!(p < self.k, "part {p} out of range (k={})", self.k);
        self.parts[i as usize] = p;
    }

    /// Node count per part.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k as usize];
        for &p in &self.parts {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Sum of `weight[i]` per part.
    pub fn weights(&self, weight: &[f64]) -> Vec<f64> {
        assert_eq!(weight.len(), self.parts.len());
        let mut w = vec![0.0; self.k as usize];
        for (i, &p) in self.parts.iter().enumerate() {
            w[p as usize] += weight[i];
        }
        w
    }

    /// Number of DDG edges whose endpoints lie in different parts — the
    /// compile-time proxy for the copy instructions the hardware will have
    /// to generate. Parallel edges (distinct registers) count separately,
    /// since each distinct value needs its own copy.
    pub fn edge_cut(&self, ddg: &Ddg) -> usize {
        ddg.edges()
            .iter()
            .filter(|e| self.parts[e.from as usize] != self.parts[e.to as usize])
            .count()
    }

    /// Imbalance of `weight` across parts: `max_part / mean_part - 1`
    /// (0.0 means perfectly balanced). Empty partitions return 0.0.
    pub fn imbalance(&self, weight: &[f64]) -> f64 {
        let w = self.weights(weight);
        let total: f64 = w.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let mean = total / w.len() as f64;
        let max = w.iter().cloned().fold(0.0f64, f64::max);
        max / mean - 1.0
    }

    /// Verify that every node is assigned a valid part. (Trivially true by
    /// construction; exists so property tests can assert it after passes.)
    pub fn is_valid(&self) -> bool {
        self.parts.iter().all(|&p| p < self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Ddg;
    use virtclust_uarch::{ArchReg, LatencyModel, RegionBuilder};

    fn r(i: u8) -> ArchReg {
        ArchReg::int(i)
    }

    fn chain4() -> Ddg {
        let region = RegionBuilder::new(0, "c4")
            .alu(r(1), &[r(1)])
            .alu(r(1), &[r(1)])
            .alu(r(1), &[r(1)])
            .alu(r(1), &[r(1)])
            .build();
        Ddg::from_region(&region, &LatencyModel::default())
    }

    #[test]
    fn edge_cut_counts_cross_part_edges() {
        let ddg = chain4();
        let mut p = Partition::new(4, 2);
        assert_eq!(p.edge_cut(&ddg), 0);
        p.set(2, 1);
        p.set(3, 1);
        assert_eq!(p.edge_cut(&ddg), 1); // only edge 1->2 crosses
        p.set(1, 1);
        p.set(2, 0);
        assert_eq!(p.edge_cut(&ddg), 3); // 0->1, 1->2, 2->3 all cross
    }

    #[test]
    fn parallel_edges_count_separately_in_cut() {
        let region = RegionBuilder::new(0, "dup")
            .alu(r(1), &[r(2)])
            .mul(r(3), r(1), r(1))
            .build();
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        let mut p = Partition::new(2, 2);
        p.set(1, 1);
        assert_eq!(p.edge_cut(&ddg), 2);
    }

    #[test]
    fn sizes_and_weights() {
        let mut p = Partition::new(4, 2);
        p.set(3, 1);
        assert_eq!(p.sizes(), vec![3, 1]);
        let w = p.weights(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(w, vec![6.0, 4.0]);
    }

    #[test]
    fn imbalance_zero_when_even() {
        let mut p = Partition::new(4, 2);
        p.set(1, 1);
        p.set(3, 1);
        assert!(p.imbalance(&[1.0; 4]).abs() < 1e-12);
        // All in one part: max = total, mean = total/2 -> imbalance 1.0
        let p1 = Partition::new(4, 2);
        assert!((p1.imbalance(&[1.0; 4]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_assign_validates() {
        let p = Partition::from_assign(vec![0, 1, 1, 0], 2);
        assert_eq!(p.part(1), 1);
        assert!(p.is_valid());
    }

    #[test]
    #[should_panic(expected = "assignment out of range")]
    fn from_assign_rejects_out_of_range() {
        let _ = Partition::from_assign(vec![0, 2], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_rejects_out_of_range() {
        let mut p = Partition::new(2, 2);
        p.set(0, 2);
    }

    #[test]
    fn zero_weight_imbalance_is_zero() {
        let p = Partition::new(3, 2);
        assert_eq!(p.imbalance(&[0.0; 3]), 0.0);
    }
}
