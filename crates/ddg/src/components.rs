//! Union-find and weakly-connected components.
//!
//! Chain identification (Sec. 4.2, "Identification of chains and chain
//! leads") groups the instructions of one virtual cluster into *chains* —
//! the weakly-connected components of the VC-induced subgraph. The first
//! member of each component in program order becomes the chain leader.

use crate::graph::Ddg;

/// A classic union-find (disjoint-set) structure with path compression and
/// union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    sets: usize,
}

impl UnionFind {
    /// Create `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Find the representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets containing `a` and `b`; returns true if they were
    /// previously distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.sets -= 1;
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Weakly-connected components of the subgraph of `ddg` induced by the nodes
/// for which `in_subgraph(node)` is true.
///
/// Returns one `Vec<u32>` per component, nodes in ascending program order,
/// components ordered by their first (leader) node. The paper's chain
/// leaders are exactly `component[0]` of each returned component.
pub fn weakly_connected_components(
    ddg: &Ddg,
    mut in_subgraph: impl FnMut(u32) -> bool,
) -> Vec<Vec<u32>> {
    let n = ddg.n();
    let mut uf = UnionFind::new(n);
    let mut included = vec![false; n];
    for i in 0..n as u32 {
        included[i as usize] = in_subgraph(i);
    }
    for i in 0..n as u32 {
        if !included[i as usize] {
            continue;
        }
        for &s in ddg.succs(i) {
            if included[s as usize] {
                uf.union(i, s);
            }
        }
    }

    // Gather components keyed by representative, preserving program order.
    let mut comp_of_root: Vec<Option<usize>> = vec![None; n];
    let mut comps: Vec<Vec<u32>> = Vec::new();
    for i in 0..n as u32 {
        if !included[i as usize] {
            continue;
        }
        let root = uf.find(i) as usize;
        let slot = match comp_of_root[root] {
            Some(s) => s,
            None => {
                comp_of_root[root] = Some(comps.len());
                comps.push(Vec::new());
                comps.len() - 1
            }
        };
        comps[slot].push(i);
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Ddg;
    use virtclust_uarch::{ArchReg, LatencyModel, RegionBuilder};

    fn r(i: u8) -> ArchReg {
        ArchReg::int(i)
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0), "already merged");
        assert_eq!(uf.set_count(), 3);
        assert!(uf.same(0, 1));
        assert!(!uf.same(1, 2));
        assert!(uf.union(1, 4));
        assert!(uf.same(0, 3));
        assert_eq!(uf.set_count(), 2);
    }

    #[test]
    fn components_of_two_chains() {
        // chain A: 0 -> 2 ; chain B: 1 -> 3
        let region = RegionBuilder::new(0, "t")
            .alu(r(1), &[r(1)])
            .alu(r(2), &[r(2)])
            .alu(r(1), &[r(1)])
            .alu(r(2), &[r(2)])
            .build();
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        let comps = weakly_connected_components(&ddg, |_| true);
        assert_eq!(comps, vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn subgraph_filter_splits_components() {
        // 0 -> 1 -> 2, but exclude node 1: components {0}, {2}.
        let region = RegionBuilder::new(0, "t")
            .alu(r(1), &[r(1)])
            .alu(r(1), &[r(1)])
            .alu(r(2), &[r(1)])
            .build();
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        let comps = weakly_connected_components(&ddg, |i| i != 1);
        assert_eq!(comps, vec![vec![0], vec![2]]);
    }

    #[test]
    fn components_ordered_by_leader() {
        let region = RegionBuilder::new(0, "t")
            .alu(r(1), &[r(1)]) // comp A leader
            .alu(r(2), &[r(2)]) // comp B leader
            .alu(r(2), &[r(2)])
            .alu(r(1), &[r(1)])
            .build();
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        let comps = weakly_connected_components(&ddg, |_| true);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0][0], 0);
        assert_eq!(comps[1][0], 1);
        for c in &comps {
            assert!(c.windows(2).all(|w| w[0] < w[1]), "ascending order");
        }
    }

    #[test]
    fn empty_subgraph_has_no_components() {
        let region = RegionBuilder::new(0, "t").alu(r(1), &[r(1)]).build();
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        assert!(weakly_connected_components(&ddg, |_| false).is_empty());
    }
}
