//! # virtclust-ddg
//!
//! Data-dependence-graph (DDG) machinery shared by every *software* steering
//! pass in the reproduction of Cai et al., IPDPS 2008:
//!
//! * [`graph::Ddg`] — build a dependence graph over a
//!   [`virtclust_uarch::Region`] (register def→use edges, optional
//!   conservative memory-order edges);
//! * [`critical`] — the paper's two-traversal depth/height computation and
//!   node criticality (Sec. 4.2, "Computation of critical paths");
//! * [`components`] — union-find and weakly-connected components (chain
//!   identification groups each virtual cluster's connected subgraphs);
//! * [`partition`] — partition containers plus the cut/balance metrics every
//!   partitioner optimises;
//! * [`coarsen`] — multilevel coarsening (heavy-edge matching + projection),
//!   the substrate for the RHOP baseline's coarsen/refine scheme.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coarsen;
pub mod components;
pub mod critical;
pub mod graph;
pub mod partition;

pub use coarsen::{coarsen_once, coarsen_until, CoarseLevel, Hierarchy, WGraph};
pub use components::{weakly_connected_components, UnionFind};
pub use critical::Criticality;
pub use graph::{Ddg, DdgEdge, DdgNode, DepKind};
pub use partition::Partition;
