//! Multilevel graph coarsening — the substrate of the RHOP baseline.
//!
//! RHOP [Chu, Fan, Mahlke, PLDI'03] applies a multilevel graph-partitioning
//! scheme [Karypis & Kumar] to cluster assignment: a **coarsening** phase
//! repeatedly merges strongly-related node pairs (heavy-edge matching over
//! slack-derived weights) until roughly one coarse node per cluster remains,
//! and a **refinement** phase walks back down the hierarchy improving the
//! partition with boundary moves. This module provides the weighted graph,
//! the matching-based coarsener and the partition projection; the RHOP pass
//! in `virtclust-compiler` adds the weights and the refinement heuristic.

use crate::graph::{Ddg, DdgEdge};

/// An undirected weighted graph with node weights; parallel edges are merged
/// by summing their weights.
#[derive(Debug, Clone, PartialEq)]
pub struct WGraph {
    node_w: Vec<f64>,
    adj: Vec<Vec<(u32, f64)>>,
}

impl WGraph {
    /// Create a graph with the given node weights and no edges.
    pub fn new(node_w: Vec<f64>) -> Self {
        let n = node_w.len();
        WGraph {
            node_w,
            adj: vec![Vec::new(); n],
        }
    }

    /// Build the undirected weighted view of a DDG. `edge_w` maps each DDG
    /// edge to a weight; weights of parallel/opposite edges accumulate.
    pub fn from_ddg(ddg: &Ddg, node_w: Vec<f64>, mut edge_w: impl FnMut(&DdgEdge) -> f64) -> Self {
        assert_eq!(node_w.len(), ddg.n());
        let mut g = WGraph::new(node_w);
        for e in ddg.edges() {
            g.add_edge(e.from, e.to, edge_w(e));
        }
        g
    }

    /// Add (or accumulate onto) the undirected edge `a — b`.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range endpoints.
    pub fn add_edge(&mut self, a: u32, b: u32, w: f64) {
        assert_ne!(a, b, "self-loops are not allowed");
        assert!((a as usize) < self.n() && (b as usize) < self.n());
        for &mut (ref t, ref mut ew) in &mut self.adj[a as usize] {
            if *t == b {
                *ew += w;
                for &mut (t2, ref mut ew2) in &mut self.adj[b as usize] {
                    if t2 == a {
                        *ew2 += w;
                        return;
                    }
                }
                unreachable!("asymmetric adjacency");
            }
        }
        self.adj[a as usize].push((b, w));
        self.adj[b as usize].push((a, w));
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.node_w.len()
    }

    /// Weight of node `i`.
    #[inline]
    pub fn node_weight(&self, i: u32) -> f64 {
        self.node_w[i as usize]
    }

    /// All node weights.
    #[inline]
    pub fn node_weights(&self) -> &[f64] {
        &self.node_w
    }

    /// Neighbours of `i` with edge weights.
    #[inline]
    pub fn neighbors(&self, i: u32) -> &[(u32, f64)] {
        &self.adj[i as usize]
    }

    /// Sum of all node weights.
    pub fn total_node_weight(&self) -> f64 {
        self.node_w.iter().sum()
    }

    /// Sum of all edge weights (each undirected edge counted once).
    pub fn total_edge_weight(&self) -> f64 {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(i, ns)| ns.iter().filter(move |(t, _)| (*t as usize) > i))
            .map(|&(_, w)| w)
            .sum()
    }

    /// Weight of the edge `a — b`, or 0.0 if absent.
    pub fn edge_weight(&self, a: u32, b: u32) -> f64 {
        self.adj[a as usize]
            .iter()
            .find(|&&(t, _)| t == b)
            .map_or(0.0, |&(_, w)| w)
    }

    /// Weighted edge cut of an assignment `parts` (cross-part undirected
    /// edges, each counted once).
    pub fn cut(&self, parts: &[u32]) -> f64 {
        assert_eq!(parts.len(), self.n());
        let mut cut = 0.0;
        for (i, ns) in self.adj.iter().enumerate() {
            for &(t, w) in ns {
                if (t as usize) > i && parts[i] != parts[t as usize] {
                    cut += w;
                }
            }
        }
        cut
    }
}

/// One coarsening step: the coarse graph plus the fine→coarse node map.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    /// The coarser graph.
    pub graph: WGraph,
    /// `map[fine] = coarse` node index.
    pub map: Vec<u32>,
}

/// Coarsen `g` once by heavy-edge matching.
///
/// Nodes are visited in ascending index order (deterministic); each
/// unmatched node is merged with its unmatched neighbour of maximum edge
/// weight (ties broken towards the smaller index). Returns `None` when no
/// pair could be matched (the graph cannot shrink further).
pub fn coarsen_once(g: &WGraph) -> Option<CoarseLevel> {
    let n = g.n();
    let mut mate: Vec<Option<u32>> = vec![None; n];
    let mut matched_any = false;

    for i in 0..n as u32 {
        if mate[i as usize].is_some() {
            continue;
        }
        let mut best: Option<(u32, f64)> = None;
        for &(t, w) in g.neighbors(i) {
            if mate[t as usize].is_some() || t == i {
                continue;
            }
            let better = match best {
                None => true,
                Some((bt, bw)) => w > bw || (w == bw && t < bt),
            };
            if better {
                best = Some((t, w));
            }
        }
        if let Some((t, _)) = best {
            mate[i as usize] = Some(t);
            mate[t as usize] = Some(i);
            matched_any = true;
        }
    }

    if !matched_any {
        return None;
    }

    // Assign coarse ids: pairs get one id (at the smaller endpoint's visit),
    // singletons keep their own.
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for i in 0..n as u32 {
        if map[i as usize] != u32::MAX {
            continue;
        }
        map[i as usize] = next;
        if let Some(m) = mate[i as usize] {
            map[m as usize] = next;
        }
        next += 1;
    }

    // Build the coarse graph.
    let coarse_n = next as usize;
    let mut node_w = vec![0.0; coarse_n];
    for i in 0..n {
        node_w[map[i] as usize] += g.node_weight(i as u32);
    }
    let mut coarse = WGraph::new(node_w);
    for i in 0..n as u32 {
        for &(t, w) in g.neighbors(i) {
            if t <= i {
                continue; // visit each undirected edge once
            }
            let (ci, ct) = (map[i as usize], map[t as usize]);
            if ci != ct {
                coarse.add_edge(ci, ct, w);
            }
        }
    }

    Some(CoarseLevel { graph: coarse, map })
}

/// A full coarsening hierarchy. `graphs[0]` is the original graph;
/// `maps[l]` maps nodes of `graphs[l]` to nodes of `graphs[l + 1]`.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    graphs: Vec<WGraph>,
    maps: Vec<Vec<u32>>,
}

impl Hierarchy {
    /// Number of levels (≥ 1; level 0 is the original graph).
    pub fn num_levels(&self) -> usize {
        self.graphs.len()
    }

    /// Graph at `level`.
    pub fn graph(&self, level: usize) -> &WGraph {
        &self.graphs[level]
    }

    /// The coarsest graph.
    pub fn coarsest(&self) -> &WGraph {
        self.graphs
            .last()
            .expect("hierarchy has at least one level")
    }

    /// The fine→coarse map from `level` to `level + 1`.
    pub fn map(&self, level: usize) -> &[u32] {
        &self.maps[level]
    }

    /// Project a partition of `graphs[level + 1]` down to `graphs[level]`.
    pub fn project(&self, level: usize, coarse_parts: &[u32]) -> Vec<u32> {
        assert_eq!(coarse_parts.len(), self.graphs[level + 1].n());
        self.maps[level]
            .iter()
            .map(|&c| coarse_parts[c as usize])
            .collect()
    }

    /// Project a partition of the coarsest graph all the way to level 0.
    pub fn project_to_finest(&self, mut parts: Vec<u32>) -> Vec<u32> {
        assert_eq!(parts.len(), self.coarsest().n());
        for level in (0..self.maps.len()).rev() {
            parts = self.project(level, &parts);
        }
        parts
    }
}

/// Coarsen `g` until at most `target_nodes` remain (or no further matching
/// is possible). The paper: "the coarsening stage … stops coarsening
/// instructions when the number of coarse nodes equals the number of
/// clusters in the machine."
pub fn coarsen_until(g: WGraph, target_nodes: usize) -> Hierarchy {
    let target = target_nodes.max(1);
    let mut graphs = vec![g];
    let mut maps = Vec::new();
    while graphs.last().expect("non-empty").n() > target {
        match coarsen_once(graphs.last().expect("non-empty")) {
            Some(CoarseLevel { graph, map }) => {
                maps.push(map);
                graphs.push(graph);
            }
            None => break,
        }
    }
    Hierarchy { graphs, maps }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A path graph 0—1—2—3 with heavier middle edge.
    fn path4() -> WGraph {
        let mut g = WGraph::new(vec![1.0; 4]);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 5.0);
        g.add_edge(2, 3, 1.0);
        g
    }

    #[test]
    fn add_edge_merges_parallel() {
        let mut g = WGraph::new(vec![1.0; 2]);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 0, 2.5);
        assert_eq!(g.edge_weight(0, 1), 3.5);
        assert_eq!(g.neighbors(0).len(), 1);
        assert_eq!(g.total_edge_weight(), 3.5);
    }

    #[test]
    fn heavy_edge_matching_prefers_heavy_pair() {
        let g = path4();
        let level = coarsen_once(&g).expect("must match");
        // node 0 is visited first; its only unmatched neighbor is 1 -> (0,1)
        // matched; then 2 matches 3.
        assert_eq!(level.map, vec![0, 0, 1, 1]);
        assert_eq!(level.graph.n(), 2);
        assert_eq!(level.graph.node_weight(0), 2.0);
        // the surviving coarse edge carries the 1-2 weight
        assert_eq!(level.graph.edge_weight(0, 1), 5.0);
    }

    #[test]
    fn coarsen_preserves_total_node_weight() {
        let g = path4();
        let total = g.total_node_weight();
        let h = coarsen_until(g, 1);
        for l in 0..h.num_levels() {
            assert!((h.graph(l).total_node_weight() - total).abs() < 1e-9);
        }
        assert!(h.coarsest().n() <= 2);
    }

    #[test]
    fn isolated_nodes_stop_coarsening() {
        let g = WGraph::new(vec![1.0; 3]); // no edges at all
        assert!(coarsen_once(&g).is_none());
        let h = coarsen_until(g, 1);
        assert_eq!(h.num_levels(), 1);
        assert_eq!(h.coarsest().n(), 3);
    }

    #[test]
    fn projection_roundtrip() {
        let g = path4();
        let h = coarsen_until(g, 2);
        let coarse_parts: Vec<u32> = (0..h.coarsest().n() as u32).collect();
        let fine = h.project_to_finest(coarse_parts);
        assert_eq!(fine.len(), 4);
        // Nodes merged together must share a part.
        let mut level0_map = [0u32; 4];
        let mut cur: Vec<u32> = (0..4).collect();
        for l in 0..h.num_levels() - 1 {
            for v in cur.iter_mut() {
                *v = h.map(l)[*v as usize];
            }
            if l == h.num_levels() - 2 {
                level0_map.copy_from_slice(&cur);
            }
        }
        for i in 0..4 {
            for j in 0..4 {
                if level0_map[i] == level0_map[j] {
                    assert_eq!(fine[i], fine[j]);
                }
            }
        }
    }

    #[test]
    fn cut_counts_cross_part_weight_once() {
        let g = path4();
        assert_eq!(g.cut(&[0, 0, 1, 1]), 5.0);
        assert_eq!(g.cut(&[0, 0, 0, 0]), 0.0);
        assert_eq!(g.cut(&[0, 1, 0, 1]), 7.0);
    }

    #[test]
    fn coarsen_until_respects_target() {
        let mut g = WGraph::new(vec![1.0; 8]);
        for i in 0..7u32 {
            g.add_edge(i, i + 1, 1.0);
        }
        let h = coarsen_until(g, 2);
        assert!(h.coarsest().n() <= 4, "halving each level: 8 -> 4 -> 2");
        assert!(h.coarsest().n() >= 2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut g = WGraph::new(vec![1.0; 2]);
        g.add_edge(1, 1, 1.0);
    }
}
