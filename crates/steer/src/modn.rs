//! Mod-N steering [Baniasadi & Moshovos, MICRO'00 — the paper's ref. 3]:
//! send every run of N consecutive micro-ops to the next cluster in
//! round-robin order.
//!
//! Historically the simplest hardware distribution heuristic for clustered
//! superscalars: perfect long-run balance, zero dependence awareness. It is
//! not part of the paper's Table 3 but is the classic point of comparison
//! for *why* dependence-based steering (OP) and chain-based steering (VC)
//! exist at all — Mod-N pays a copy for nearly every cross-slice
//! dependence.

use virtclust_sim::{SteerDecision, SteerView, SteeringPolicy};
use virtclust_uarch::DynUop;

/// Round-robin steering with a configurable slice length.
///
/// The slice index is derived from the micro-op's program-order sequence
/// number (`uop.seq / n`), not from a call counter: "N consecutive
/// micro-ops" is a program-order property, so the decision is a pure
/// function of the micro-op and the policy declares
/// [`SteeringPolicy::steer_is_pure`]. (A call counter would also rotate on
/// the re-steers of a stalled front micro-op — a simulation artifact, not
/// part of the published heuristic.)
#[derive(Debug, Clone)]
pub struct ModN {
    n: u64,
}

impl ModN {
    /// Steer in slices of `n` micro-ops (Mod-3 was the published sweet
    /// spot for 4-cluster machines).
    pub fn new(n: u64) -> Self {
        assert!(n >= 1, "slice length must be positive");
        ModN { n }
    }

    /// Slice length.
    pub fn slice_len(&self) -> u64 {
        self.n
    }
}

impl SteeringPolicy for ModN {
    fn name(&self) -> String {
        format!("mod-{}", self.n)
    }

    fn steer(&mut self, uop: &DynUop, view: &SteerView<'_>) -> SteerDecision {
        let slice = uop.seq / self.n;
        SteerDecision::Cluster((slice % view.num_clusters() as u64) as u8)
    }

    fn steer_is_pure(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtclust_sim::{simulate, RunLimits};
    use virtclust_uarch::{ArchReg, MachineConfig, RegionBuilder, SliceTrace};

    fn r(i: u8) -> ArchReg {
        ArchReg::int(i)
    }

    fn serial_trace(len: usize) -> Vec<virtclust_uarch::DynUop> {
        let mut b = RegionBuilder::new(0, "serial");
        for _ in 0..len {
            b = b.alu(r(1), &[r(1)]);
        }
        let region = b.build();
        let mut uops = Vec::new();
        virtclust_uarch::trace::expand_region(&region, 0, &mut uops, |_, _| 0, |_, _| true);
        uops
    }

    #[test]
    fn slices_rotate_round_robin() {
        let uops = serial_trace(12);
        let mut trace = SliceTrace::new(&uops);
        let stats = simulate(
            &MachineConfig::default(),
            &mut trace,
            &mut ModN::new(3),
            &RunLimits::unlimited(),
        );
        // 12 uops in slices of 3 over 2 clusters: 6 per cluster.
        assert_eq!(stats.clusters[0].dispatched, 6);
        assert_eq!(stats.clusters[1].dispatched, 6);
    }

    #[test]
    fn serial_chain_pays_one_copy_per_slice_boundary() {
        let uops = serial_trace(12);
        let mut trace = SliceTrace::new(&uops);
        let stats = simulate(
            &MachineConfig::default(),
            &mut trace,
            &mut ModN::new(3),
            &RunLimits::unlimited(),
        );
        // 4 slice boundaries in 12 uops -> 3 cluster switches after the
        // first slice, each forcing a copy of the chain value.
        assert_eq!(stats.copies_generated, 3);
    }

    #[test]
    fn dependence_blind_is_worse_than_dependence_aware() {
        let uops = serial_trace(400);
        let run = |policy: &mut dyn SteeringPolicy| {
            let mut trace = SliceTrace::new(&uops);
            simulate(
                &MachineConfig::default(),
                &mut trace,
                policy,
                &RunLimits::unlimited(),
            )
        };
        let modn = run(&mut ModN::new(3));
        let op = run(&mut crate::OccupancyAware::new());
        assert!(modn.copies_generated > op.copies_generated);
        assert!(modn.cycles > op.cycles, "Mod-N must lose on a serial chain");
    }

    #[test]
    fn decision_is_a_pure_function_of_the_sequence_number() {
        // Two fresh runs over the same trace must distribute identically —
        // and the policy advertises purity so stall spans can skip.
        let p = ModN::new(2);
        assert!(p.steer_is_pure());
        assert_eq!(p.slice_len(), 2);
        let uops = serial_trace(8);
        let run = || {
            let mut trace = SliceTrace::new(&uops);
            simulate(
                &MachineConfig::default(),
                &mut trace,
                &mut ModN::new(2),
                &RunLimits::unlimited(),
            )
        };
        assert_eq!(run(), run());
    }
}
