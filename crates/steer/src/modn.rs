//! Mod-N steering [Baniasadi & Moshovos, MICRO'00 — the paper's ref. 3]:
//! send every run of N consecutive micro-ops to the next cluster in
//! round-robin order.
//!
//! Historically the simplest hardware distribution heuristic for clustered
//! superscalars: perfect long-run balance, zero dependence awareness. It is
//! not part of the paper's Table 3 but is the classic point of comparison
//! for *why* dependence-based steering (OP) and chain-based steering (VC)
//! exist at all — Mod-N pays a copy for nearly every cross-slice
//! dependence.

use virtclust_sim::{SteerDecision, SteerView, SteeringPolicy};
use virtclust_uarch::DynUop;

/// Round-robin steering with a configurable slice length.
#[derive(Debug, Clone)]
pub struct ModN {
    n: u64,
    count: u64,
    cluster: u8,
}

impl ModN {
    /// Steer in slices of `n` micro-ops (Mod-3 was the published sweet
    /// spot for 4-cluster machines).
    pub fn new(n: u64) -> Self {
        assert!(n >= 1, "slice length must be positive");
        ModN {
            n,
            count: 0,
            cluster: 0,
        }
    }

    /// Slice length.
    pub fn slice_len(&self) -> u64 {
        self.n
    }
}

impl SteeringPolicy for ModN {
    fn name(&self) -> String {
        format!("mod-{}", self.n)
    }

    fn steer(&mut self, _uop: &DynUop, view: &SteerView<'_>) -> SteerDecision {
        if self.count == self.n {
            self.count = 0;
            self.cluster = (self.cluster + 1) % view.num_clusters() as u8;
        }
        self.count += 1;
        SteerDecision::Cluster(self.cluster)
    }

    fn reset(&mut self) {
        self.count = 0;
        self.cluster = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtclust_sim::{simulate, RunLimits};
    use virtclust_uarch::{ArchReg, MachineConfig, RegionBuilder, SliceTrace};

    fn r(i: u8) -> ArchReg {
        ArchReg::int(i)
    }

    fn serial_trace(len: usize) -> Vec<virtclust_uarch::DynUop> {
        let mut b = RegionBuilder::new(0, "serial");
        for _ in 0..len {
            b = b.alu(r(1), &[r(1)]);
        }
        let region = b.build();
        let mut uops = Vec::new();
        virtclust_uarch::trace::expand_region(&region, 0, &mut uops, |_, _| 0, |_, _| true);
        uops
    }

    #[test]
    fn slices_rotate_round_robin() {
        let uops = serial_trace(12);
        let mut trace = SliceTrace::new(&uops);
        let stats = simulate(
            &MachineConfig::default(),
            &mut trace,
            &mut ModN::new(3),
            &RunLimits::unlimited(),
        );
        // 12 uops in slices of 3 over 2 clusters: 6 per cluster.
        assert_eq!(stats.clusters[0].dispatched, 6);
        assert_eq!(stats.clusters[1].dispatched, 6);
    }

    #[test]
    fn serial_chain_pays_one_copy_per_slice_boundary() {
        let uops = serial_trace(12);
        let mut trace = SliceTrace::new(&uops);
        let stats = simulate(
            &MachineConfig::default(),
            &mut trace,
            &mut ModN::new(3),
            &RunLimits::unlimited(),
        );
        // 4 slice boundaries in 12 uops -> 3 cluster switches after the
        // first slice, each forcing a copy of the chain value.
        assert_eq!(stats.copies_generated, 3);
    }

    #[test]
    fn dependence_blind_is_worse_than_dependence_aware() {
        let uops = serial_trace(400);
        let run = |policy: &mut dyn SteeringPolicy| {
            let mut trace = SliceTrace::new(&uops);
            simulate(
                &MachineConfig::default(),
                &mut trace,
                policy,
                &RunLimits::unlimited(),
            )
        };
        let modn = run(&mut ModN::new(3));
        let op = run(&mut crate::OccupancyAware::new());
        assert!(modn.copies_generated > op.copies_generated);
        assert!(modn.cycles > op.cycles, "Mod-N must lose on a serial chain");
    }

    #[test]
    fn reset_restarts_the_rotation() {
        let mut p = ModN::new(2);
        p.count = 1;
        p.cluster = 1;
        p.reset();
        assert_eq!(p.count, 0);
        assert_eq!(p.cluster, 0);
        assert_eq!(p.slice_len(), 2);
    }
}
