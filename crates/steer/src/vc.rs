//! The hardware half of the paper's contribution: mapping virtual clusters
//! to physical clusters at run time (Fig. 4).
//!
//! *"The only hardware required is: (1) a set of counters that indicates the
//! distribution of instructions among clusters; and (2) a small table to
//! keep track of the mapping between virtual clusters and physical
//! clusters."*
//!
//! When a decoded micro-op carries the chain-leader mark, the workload
//! counters are consulted and the leader's virtual cluster is remapped to
//! the least-loaded physical cluster; all following non-leader micro-ops of
//! that virtual cluster look the mapping table up. No dependence checking,
//! no voting, no serialization — steering one micro-op never requires
//! knowing where the previous one went.

use virtclust_sim::{SteerDecision, SteerView, SteeringPolicy};
use virtclust_uarch::DynUop;

/// The virtual-cluster → physical-cluster mapper.
#[derive(Debug, Clone)]
pub struct VcMapper {
    num_vcs: usize,
    table: Vec<Option<u8>>,
    remap_threshold: u32,
    remaps: u64,
    migrations: u64,
    unannotated: u64,
}

impl VcMapper {
    /// Default remap hysteresis (in-flight micro-ops of advantage another
    /// cluster must show before a chain leader moves its VC). Without
    /// hysteresis, loop-carried chains ping-pong between clusters and every
    /// migration pays copies for the carried values — the mapping decision
    /// in the paper's Fig. 4 ("map to the less loaded cluster") needs this
    /// dead-band to be usable, and `bench`'s ablation sweeps it.
    pub const DEFAULT_REMAP_THRESHOLD: u32 = 12;

    /// Create a mapper for programs compiled with `num_vcs` virtual
    /// clusters. (The paper fixes this in hardware and exposes it to the
    /// compiler through the ISA; 2 VCs is the paper's best configuration on
    /// both 2- and 4-cluster machines.)
    pub fn new(num_vcs: usize) -> Self {
        Self::with_threshold(num_vcs, Self::DEFAULT_REMAP_THRESHOLD)
    }

    /// Create a mapper with an explicit remap hysteresis (0 = remap on
    /// every leader, the literal reading of Fig. 4).
    pub fn with_threshold(num_vcs: usize, remap_threshold: u32) -> Self {
        assert!(num_vcs >= 1, "need at least one virtual cluster");
        VcMapper {
            num_vcs,
            table: vec![None; num_vcs],
            remap_threshold,
            remaps: 0,
            migrations: 0,
            unannotated: 0,
        }
    }

    /// How many leader decisions actually *moved* a VC to a different
    /// cluster (a subset of [`VcMapper::remaps`]).
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Number of virtual clusters (mapping-table entries).
    pub fn num_vcs(&self) -> usize {
        self.num_vcs
    }

    /// How many times a chain leader updated the mapping table.
    pub fn remaps(&self) -> u64 {
        self.remaps
    }

    /// Micro-ops seen without a VC annotation (treated as VC 0 followers).
    pub fn unannotated(&self) -> u64 {
        self.unannotated
    }

    /// Default mapping before any leader updates an entry: VC `i` starts on
    /// physical cluster `i mod num_clusters`, the natural power-on state.
    fn default_map(&self, vc: usize, num_clusters: usize) -> u8 {
        (vc % num_clusters) as u8
    }
}

impl SteeringPolicy for VcMapper {
    fn name(&self) -> String {
        format!("VC({}→)", self.num_vcs)
    }

    fn steer(&mut self, uop: &DynUop, view: &SteerView<'_>) -> SteerDecision {
        let (vc, leader) = match uop.hint {
            virtclust_uarch::SteerHint::Vc { vc, leader } => (vc as usize % self.num_vcs, leader),
            _ => {
                self.unannotated += 1;
                (0, false)
            }
        };
        if leader {
            // Fig. 4: on a chain leader, read the workload counters and map
            // this VC to the less loaded physical cluster. "Load" is judged
            // by what actually throttles a cluster — the occupancy of the
            // issue queue this chain will dispatch into — backed by the
            // in-flight counters; hysteresis keeps marginal imbalances from
            // migrating loop-carried chains (every migration pays copies
            // for the carried values).
            let kind = uop.op.queue();
            let n = view.num_clusters() as u8;
            let least = view.least_loaded();
            let target = (0..n)
                .min_by_key(|&c| (view.occupancy(c, kind), view.inflight(c), c))
                .expect("at least one cluster");
            let c = match self.table[vc] {
                Some(cur) => {
                    let congested = view.is_busy(cur, kind)
                        && view.occupancy(target, kind) < view.occupancy(cur, kind);
                    let imbalanced = view.inflight(cur)
                        > view.inflight(least).saturating_add(self.remap_threshold);
                    if congested || imbalanced {
                        if cur != target {
                            self.migrations += 1;
                        }
                        target
                    } else {
                        cur
                    }
                }
                None => target,
            };
            self.table[vc] = Some(c);
            self.remaps += 1;
            SteerDecision::Cluster(c)
        } else {
            let c = self.table[vc].unwrap_or_else(|| self.default_map(vc, view.num_clusters()));
            SteerDecision::Cluster(c)
        }
    }

    fn reset(&mut self) {
        self.table = vec![None; self.num_vcs];
        self.remaps = 0;
        self.migrations = 0;
        self.unannotated = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtclust_sim::{simulate, RunLimits};
    use virtclust_uarch::{ArchReg, MachineConfig, RegionBuilder, SliceTrace, SteerHint};

    fn r(i: u8) -> ArchReg {
        ArchReg::int(i)
    }

    /// Two independent chains annotated as two VCs, leaders at iteration
    /// heads. The mapper must put them on different clusters (balance) and
    /// keep each chain internally copy-free.
    fn two_chain_region() -> virtclust_uarch::Region {
        let mut region = RegionBuilder::new(0, "2vc")
            .alu(r(1), &[r(1)]) // VC0 leader
            .alu(r(2), &[r(2)]) // VC1 leader
            .alu(r(1), &[r(1)]) // VC0
            .alu(r(2), &[r(2)]) // VC1
            .build();
        region.insts[0].hint = SteerHint::Vc {
            vc: 0,
            leader: true,
        };
        region.insts[1].hint = SteerHint::Vc {
            vc: 1,
            leader: true,
        };
        region.insts[2].hint = SteerHint::Vc {
            vc: 0,
            leader: false,
        };
        region.insts[3].hint = SteerHint::Vc {
            vc: 1,
            leader: false,
        };
        region
    }

    #[test]
    fn followers_obey_their_leaders_mapping() {
        let region = two_chain_region();
        let mut uops = Vec::new();
        let mut seq = 0;
        for _ in 0..100 {
            seq = virtclust_uarch::trace::expand_region(
                &region,
                seq,
                &mut uops,
                |_, _| 0,
                |_, _| true,
            );
        }
        let mut trace = SliceTrace::new(&uops);
        let mut policy = VcMapper::new(2);
        let stats = simulate(
            &MachineConfig::default(),
            &mut trace,
            &mut policy,
            &RunLimits::unlimited(),
        );
        assert_eq!(stats.committed_uops, 400);
        // At least one remap per dynamic leader; a leader stalled at
        // dispatch is re-steered the next cycle, so remaps can exceed it.
        assert!(policy.remaps() >= 200, "remaps={}", policy.remaps());
        assert_eq!(policy.unannotated(), 0);
        // Two independent chains: good balance and few copies. Copies can
        // still occur when a whole VC migrates between clusters.
        assert!(
            stats.dispatch_imbalance() < 0.5,
            "imbalance={}",
            stats.dispatch_imbalance()
        );
        let copy_rate = stats.copies_generated as f64 / stats.committed_uops as f64;
        assert!(
            copy_rate < 0.2,
            "chain-internal values never move, rate={copy_rate}"
        );
    }

    #[test]
    fn non_leader_before_any_leader_uses_default_mapping() {
        let mut region = RegionBuilder::new(0, "follower-first")
            .alu(r(1), &[r(1)])
            .build();
        region.insts[0].hint = SteerHint::Vc {
            vc: 1,
            leader: false,
        };
        let mut uops = Vec::new();
        virtclust_uarch::trace::expand_region(&region, 0, &mut uops, |_, _| 0, |_, _| true);
        let mut trace = SliceTrace::new(&uops);
        let stats = simulate(
            &MachineConfig::default(),
            &mut trace,
            &mut VcMapper::new(2),
            &RunLimits::unlimited(),
        );
        assert_eq!(stats.clusters[1].dispatched, 1, "VC1 defaults to cluster 1");
    }

    #[test]
    fn unannotated_uops_are_counted_and_routed() {
        let region = RegionBuilder::new(0, "bare").alu(r(1), &[r(1)]).build();
        let mut uops = Vec::new();
        virtclust_uarch::trace::expand_region(&region, 0, &mut uops, |_, _| 0, |_, _| true);
        let mut trace = SliceTrace::new(&uops);
        let mut policy = VcMapper::new(2);
        let _ = simulate(
            &MachineConfig::default(),
            &mut trace,
            &mut policy,
            &RunLimits::unlimited(),
        );
        assert_eq!(policy.unannotated(), 1);
    }

    #[test]
    fn two_vcs_on_four_clusters_use_at_most_two_at_a_time() {
        // VC(2→4): the mapping table has 2 entries, so at any instant at
        // most 2 of the 4 clusters receive new work — but remaps can move
        // chains to any cluster over time.
        let region = two_chain_region();
        let mut uops = Vec::new();
        let mut seq = 0;
        for _ in 0..50 {
            seq = virtclust_uarch::trace::expand_region(
                &region,
                seq,
                &mut uops,
                |_, _| 0,
                |_, _| true,
            );
        }
        let mut trace = SliceTrace::new(&uops);
        let stats = simulate(
            &MachineConfig::paper_4cluster(),
            &mut trace,
            &mut VcMapper::new(2),
            &RunLimits::unlimited(),
        );
        assert_eq!(stats.committed_uops, 200);
        assert_eq!(stats.clusters.len(), 4);
    }

    #[test]
    fn reset_clears_table_and_counters() {
        let mut p = VcMapper::new(2);
        p.remaps = 5;
        p.unannotated = 2;
        p.table[0] = Some(1);
        p.reset();
        assert_eq!(p.remaps(), 0);
        assert_eq!(p.unannotated(), 0);
        assert!(p.table.iter().all(Option::is_none));
    }
}
