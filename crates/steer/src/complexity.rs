//! The steering-unit complexity model behind the paper's Table 1.
//!
//! Table 1 compares, qualitatively, which hardware components each scheme
//! needs:
//!
//! | component                   | hardware-only (OP) | hybrid (VC) |
//! |-----------------------------|--------------------|-------------|
//! | dependence check            | yes                | no          |
//! | workload balance management | yes                | yes         |
//! | vote unit                   | yes                | no          |
//! | copy generator              | yes                | yes         |
//!
//! This module also produces a rough *quantitative* estimate (storage bits,
//! comparator count, serialization depth) so the claim "the hybrid scheme
//! removes most of the steering complexity" becomes a number. The estimates
//! use simple structural formulas — table entries × entry width, one
//! comparator per simultaneous compare — not a synthesis flow; they are for
//! *relative* comparison between schemes, matching how the paper argues.

use virtclust_uarch::{MachineConfig, NUM_ARCH_REGS};

/// Which steering-unit components a scheme requires (a row set of Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComplexityProfile {
    /// Scheme name as in Table 3.
    pub name: &'static str,
    /// Dependence checking: a table mapping each architectural register to
    /// the cluster that holds/produces its value, read per source operand.
    pub dependence_check: bool,
    /// Workload balance management: per-cluster occupancy/in-flight
    /// counters.
    pub workload_balance: bool,
    /// Vote unit: combines input locations + balance into a destination,
    /// serialized across the decode bundle.
    pub vote_unit: bool,
    /// Copy generator: compares each source's location against the chosen
    /// destination and inserts copy micro-ops.
    pub copy_generator: bool,
    /// VC→PC mapping table (hybrid scheme only).
    pub mapping_table: bool,
    /// Whether the destination decision of micro-op *i* depends on the
    /// decision of micro-op *i−1* in the same bundle (the serialization the
    /// paper says "may not meet the cycle time").
    pub serialized: bool,
}

impl ComplexityProfile {
    /// The hardware-only occupancy-aware scheme (`OP`): everything, and
    /// serialized within the bundle.
    pub fn hardware_op() -> Self {
        ComplexityProfile {
            name: "OP (hardware-only)",
            dependence_check: true,
            workload_balance: true,
            vote_unit: true,
            copy_generator: true,
            mapping_table: false,
            serialized: true,
        }
    }

    /// The paper's hybrid virtual-clustering scheme: dependence checking
    /// and voting removed; balance counters, mapping table and copy
    /// generator remain; no serialization.
    pub fn hybrid_vc() -> Self {
        ComplexityProfile {
            name: "VC (hybrid)",
            dependence_check: false,
            workload_balance: true,
            vote_unit: false,
            copy_generator: true,
            mapping_table: true,
            serialized: false,
        }
    }

    /// Software-only schemes (OB, RHOP): the hardware only follows the
    /// static assignment; the copy generator remains.
    pub fn software_only() -> Self {
        ComplexityProfile {
            name: "OB/RHOP (software-only)",
            dependence_check: false,
            workload_balance: false,
            vote_unit: false,
            copy_generator: true,
            mapping_table: false,
            serialized: false,
        }
    }

    /// The one-cluster straw-man: nothing at all (and no copies, so no copy
    /// generator either).
    pub fn one_cluster() -> Self {
        ComplexityProfile {
            name: "one-cluster",
            dependence_check: false,
            workload_balance: false,
            vote_unit: false,
            copy_generator: false,
            mapping_table: false,
            serialized: false,
        }
    }

    /// Quantitative estimate for a given machine configuration.
    pub fn estimate(&self, cfg: &MachineConfig, num_vcs: usize) -> ComplexityEstimate {
        let clusters = cfg.num_clusters as u64;
        let cluster_bits = (64 - (clusters.max(2) - 1).leading_zeros()) as u64;
        let width = cfg.dispatch_width() as u64;
        let max_srcs = virtclust_uarch::inst::MAX_SRCS as u64;

        let mut bits = 0u64;
        let mut comparators = 0u64;
        let mut ports = 0u64;

        if self.dependence_check {
            // One location entry per architectural register; in a clustered
            // machine the location is a cluster *set* (values can be
            // replicated), so `clusters` bits per entry.
            bits += NUM_ARCH_REGS as u64 * clusters;
            // Read per source of every bundle slot, written per destination.
            ports += width * max_srcs + width;
        }
        if self.workload_balance {
            // The paper: counters = clusters − 1 suffice for the hybrid
            // scheme (relative balance); the full scheme keeps one per
            // cluster. 16-bit counters cover the in-flight window.
            let n_counters = if self.mapping_table {
                clusters - 1
            } else {
                clusters
            };
            bits += n_counters * 16;
            comparators += clusters - 1; // min-tree over counters
        }
        if self.vote_unit {
            // Per bundle slot: compare each source's location set against
            // each cluster, plus the balance tie-break.
            comparators += width * max_srcs * clusters + width * (clusters - 1);
        }
        if self.mapping_table {
            bits += num_vcs as u64 * cluster_bits;
            ports += width; // one lookup per bundle slot
        }
        if self.copy_generator {
            // Compare each source location against the destination cluster.
            comparators += width * max_srcs;
        }

        let serial_stages = if self.serialized { width } else { 1 };

        ComplexityEstimate {
            table_bits: bits,
            comparators,
            ports,
            serial_stages,
        }
    }
}

/// Rough structural cost of a steering unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComplexityEstimate {
    /// Storage bits in steering-owned tables (location table, counters,
    /// mapping table).
    pub table_bits: u64,
    /// Simultaneous comparators in the decision logic.
    pub comparators: u64,
    /// Table read/write ports required per cycle.
    pub ports: u64,
    /// Dependent decision stages per cycle (1 = fully parallel decode;
    /// `dispatch_width` = fully serialized, the OP problem).
    pub serial_stages: u64,
}

fn yn(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

/// Render the paper's Table 1 (plus the quantitative extension) as markdown
/// for the given configuration.
pub fn table1_markdown(cfg: &MachineConfig, num_vcs: usize) -> String {
    let profiles = [
        ComplexityProfile::hardware_op(),
        ComplexityProfile::hybrid_vc(),
        ComplexityProfile::software_only(),
    ];
    let mut out = String::new();
    out.push_str("| steering algorithm |");
    for p in &profiles {
        out.push_str(&format!(" {} |", p.name));
    }
    out.push('\n');
    out.push_str("|---|---|---|---|\n");
    type RowGetter = fn(&ComplexityProfile) -> bool;
    let rows: [(&str, RowGetter); 4] = [
        ("dependence check", |p| p.dependence_check),
        ("workload balance management", |p| p.workload_balance),
        ("vote unit", |p| p.vote_unit),
        ("copy generator", |p| p.copy_generator),
    ];
    for (label, get) in rows {
        out.push_str(&format!("| {label} |"));
        for p in &profiles {
            out.push_str(&format!(" {} |", yn(get(p))));
        }
        out.push('\n');
    }
    out.push('\n');
    out.push_str("Quantitative estimate (structural):\n\n");
    out.push_str(
        "| scheme | table bits | comparators | ports | serial stages |\n|---|---|---|---|---|\n",
    );
    for p in &profiles {
        let e = p.estimate(cfg, num_vcs);
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            p.name, e.table_bits, e.comparators, e.ports, e.serial_stages
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_qualitative_rows_match_paper() {
        let op = ComplexityProfile::hardware_op();
        let vc = ComplexityProfile::hybrid_vc();
        assert!(op.dependence_check && !vc.dependence_check);
        assert!(op.workload_balance && vc.workload_balance);
        assert!(op.vote_unit && !vc.vote_unit);
        assert!(op.copy_generator && vc.copy_generator);
        assert!(op.serialized && !vc.serialized);
        assert!(vc.mapping_table && !op.mapping_table);
    }

    #[test]
    fn hybrid_is_strictly_cheaper_than_hardware_only() {
        let cfg = MachineConfig::default();
        let op = ComplexityProfile::hardware_op().estimate(&cfg, 2);
        let vc = ComplexityProfile::hybrid_vc().estimate(&cfg, 2);
        assert!(vc.table_bits < op.table_bits);
        assert!(vc.comparators < op.comparators);
        assert!(vc.ports < op.ports);
        assert!(vc.serial_stages < op.serial_stages);
        assert_eq!(op.serial_stages, cfg.dispatch_width() as u64);
        assert_eq!(vc.serial_stages, 1);
    }

    #[test]
    fn mapping_table_grows_with_vcs_and_clusters() {
        let cfg2 = MachineConfig::paper_2cluster();
        let cfg4 = MachineConfig::paper_4cluster();
        let a = ComplexityProfile::hybrid_vc().estimate(&cfg2, 2);
        let b = ComplexityProfile::hybrid_vc().estimate(&cfg2, 4);
        assert!(b.table_bits > a.table_bits, "more VC entries");
        let c = ComplexityProfile::hybrid_vc().estimate(&cfg4, 4);
        assert!(c.table_bits > b.table_bits, "wider entries for 4 clusters");
    }

    #[test]
    fn one_cluster_needs_nothing() {
        let e = ComplexityProfile::one_cluster().estimate(&MachineConfig::default(), 2);
        assert_eq!(e.table_bits, 0);
        assert_eq!(e.comparators, 0);
        assert_eq!(e.ports, 0);
        assert_eq!(e.serial_stages, 1);
    }

    #[test]
    fn markdown_renders_all_rows() {
        let md = table1_markdown(&MachineConfig::default(), 2);
        for needle in [
            "dependence check",
            "workload balance",
            "vote unit",
            "copy generator",
            "serial stages",
        ] {
            assert!(md.contains(needle), "missing `{needle}` in:\n{md}");
        }
    }
}
