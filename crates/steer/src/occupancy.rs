//! The occupancy-aware hardware-only steering policy (the paper's `OP`
//! baseline, from [González, Latorre, González, WMPI'04]), plus its
//! *parallel* variant used for the Sec. 2.1 complexity motivation.
//!
//! Heuristic: an instruction is *"distributed to a cluster holding most of
//! its inputs. In case of a tie, it is sent to the least loaded cluster."*
//! Occupancy-awareness: *"stalls the steering unit if the preferred cluster
//! cannot be chosen (due to lack of resources) and the other ones are busy"*
//! — i.e. stalling beats dumping a dependent instruction on a far cluster.
//!
//! The **sequential** mode reads up-to-date value locations (each decision
//! sees the effects of all earlier ones — the expensive serialized hardware
//! the paper wants to remove). The **parallel** mode reads the stale
//! bundle-entry snapshot, the cheap renaming-style implementation that
//! mis-steers dependent bundles (Sec. 2.1: 2 copies where sequential needs
//! none).
//!
//! The queue occupancies this policy consults
//! ([`SteerView::occupancy`]/[`SteerView::is_busy`]) are cached counters
//! the simulator maintains at every issue-queue insert and remove — per
//! decision they cost a read, not a walk over the queues (the
//! per-dispatched-uop occupancy rebuild was removed alongside the
//! event-driven wakeup/select refactor in `virtclust-sim`).

use virtclust_sim::{cluster_bit, SteerDecision, SteerView, SteeringPolicy};
use virtclust_uarch::DynUop;

/// Which location information the dependence heuristic reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocationMode {
    /// Up-to-date locations (sequential steering; the paper's `OP`).
    Sequential,
    /// Bundle-entry snapshot (parallel steering straw-man of Sec. 2.1).
    ParallelStale,
}

/// The occupancy-aware dependence-based steering policy.
#[derive(Debug, Clone)]
pub struct OccupancyAware {
    mode: LocationMode,
    stall_over_steer: bool,
}

impl OccupancyAware {
    /// The paper's `OP` configuration: sequential, occupancy-aware.
    pub fn new() -> Self {
        OccupancyAware {
            mode: LocationMode::Sequential,
            stall_over_steer: true,
        }
    }

    /// The parallel (stale-information) variant of Sec. 2.1.
    pub fn parallel() -> Self {
        OccupancyAware {
            mode: LocationMode::ParallelStale,
            stall_over_steer: true,
        }
    }

    /// Dependence steering *without* stall-over-steer: when the preferred
    /// cluster is full the micro-op is dumped on any cluster with space.
    /// This is the pre-[15]/[24] behaviour those papers improved on —
    /// an ablation of the "stalling beats steering" insight.
    pub fn without_stall() -> Self {
        OccupancyAware {
            mode: LocationMode::Sequential,
            stall_over_steer: false,
        }
    }

    /// The location mode in use.
    pub fn mode(&self) -> LocationMode {
        self.mode
    }

    /// Count, per cluster, how many of `uop`'s source reads are satisfied
    /// locally.
    fn input_counts(&self, uop: &DynUop, view: &SteerView<'_>) -> [u32; 8] {
        let mut counts = [0u32; 8];
        for src in uop.srcs.iter() {
            let mask = match self.mode {
                LocationMode::Sequential => view.location(src),
                LocationMode::ParallelStale => view.location_stale(src),
            };
            for (c, count) in counts.iter_mut().enumerate().take(view.num_clusters()) {
                if mask & cluster_bit(c as u8) != 0 {
                    *count += 1;
                }
            }
        }
        counts
    }
}

impl Default for OccupancyAware {
    fn default() -> Self {
        Self::new()
    }
}

impl SteeringPolicy for OccupancyAware {
    fn name(&self) -> String {
        match (self.mode, self.stall_over_steer) {
            (LocationMode::Sequential, true) => "OP".into(),
            (LocationMode::Sequential, false) => "OP-nostall".into(),
            (LocationMode::ParallelStale, _) => "OP-parallel".into(),
        }
    }

    fn steer(&mut self, uop: &DynUop, view: &SteerView<'_>) -> SteerDecision {
        let n = view.num_clusters();
        let counts = self.input_counts(uop, view);

        // Preferred cluster: most inputs, ties to the least-loaded cluster,
        // then to the lowest index.
        let preferred = (0..n as u8)
            .min_by_key(|&c| (std::cmp::Reverse(counts[c as usize]), view.inflight(c), c))
            .expect("at least one cluster");

        let kind = uop.op.queue();
        if view.has_queue_space(preferred, kind) {
            return SteerDecision::Cluster(preferred);
        }

        // Preferred cluster lacks resources. Steer to the best non-busy
        // alternative with space; if every alternative is busy, stall —
        // "it is better to stall the processor frontend". The no-stall
        // ablation takes any cluster with space regardless of busyness.
        let alt = (0..n as u8)
            .filter(|&c| {
                c != preferred
                    && view.has_queue_space(c, kind)
                    && (!self.stall_over_steer || !view.is_busy(c, kind))
            })
            .min_by_key(|&c| (std::cmp::Reverse(counts[c as usize]), view.inflight(c), c));
        match alt {
            Some(c) => SteerDecision::Cluster(c),
            None => SteerDecision::Stall,
        }
    }

    // `mode` and `stall_over_steer` are configuration, fixed for the
    // policy's lifetime: the decision is a function of the micro-op and
    // the view alone.
    fn steer_is_pure(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtclust_sim::{simulate, Machine, RunLimits};
    use virtclust_uarch::{ArchReg, MachineConfig, RegionBuilder, SliceTrace};

    fn r(i: u8) -> ArchReg {
        ArchReg::int(i)
    }

    /// The Sec. 2.1 example (mirrored so the tie-break picks cluster 0):
    ///   I1: r1 <- r1 + r2   (tie: r1 in c1, r2 in c0 -> least loaded/lowest)
    ///   I2: r3 <- load(r1)
    ///   I3: r4 <- load(r3)
    /// Sequential steering keeps the chain together after I1 (1 copy total,
    /// for I1's remote input); parallel steering bounces I2 and I3 using
    /// stale locations (2 extra copies — the paper's "two copies").
    fn sec21_uops() -> Vec<virtclust_uarch::DynUop> {
        let region = RegionBuilder::new(0, "sec2.1")
            .alu(r(1), &[r(1), r(2)])
            .load(r(3), r(1))
            .load(r(4), r(3))
            .build();
        let mut uops = Vec::new();
        virtclust_uarch::trace::expand_region(&region, 0, &mut uops, |_, _| 0x100, |_, _| true);
        uops
    }

    fn run_sec21(policy: &mut dyn SteeringPolicy) -> virtclust_sim::SimStats {
        let uops = sec21_uops();
        let mut trace = SliceTrace::new(&uops);
        let mut m = Machine::new(&MachineConfig::default());
        // Initial placements (mirror of the paper's): r1 in cluster 1,
        // r2 and r3 in cluster 0, both clusters idle.
        m.place_register(r(1), 1);
        m.place_register(r(2), 0);
        m.place_register(r(3), 0);
        m.run(&mut trace, policy, &RunLimits::unlimited())
    }

    #[test]
    fn sec21_sequential_keeps_chain_together() {
        let stats = run_sec21(&mut OccupancyAware::new());
        assert_eq!(stats.committed_uops, 3);
        assert_eq!(
            stats.copies_generated, 1,
            "only I1's remote input needs a copy; the chain stays put"
        );
    }

    #[test]
    fn sec21_parallel_generates_two_extra_copies() {
        let stats = run_sec21(&mut OccupancyAware::parallel());
        assert_eq!(stats.committed_uops, 3);
        assert_eq!(
            stats.copies_generated, 3,
            "stale locations bounce I2 and I3: the paper's 2 extra copies"
        );
    }

    #[test]
    fn dependence_steering_prefers_input_cluster() {
        // A value parked in cluster 1; a long chain of consumers must all
        // land in cluster 1 and generate no copies.
        let region = RegionBuilder::new(0, "chain")
            .alu(r(2), &[r(1)])
            .alu(r(3), &[r(2)])
            .alu(r(4), &[r(3)])
            .build();
        let mut uops = Vec::new();
        virtclust_uarch::trace::expand_region(&region, 0, &mut uops, |_, _| 0, |_, _| true);
        let mut trace = SliceTrace::new(&uops);
        let mut m = Machine::new(&MachineConfig::default());
        m.place_register(r(1), 1);
        let stats = m.run(
            &mut trace,
            &mut OccupancyAware::new(),
            &RunLimits::unlimited(),
        );
        assert_eq!(stats.copies_generated, 0);
        assert_eq!(
            stats.clusters[1].dispatched, 3,
            "whole chain follows r1 to cluster 1"
        );
        assert_eq!(stats.clusters[0].dispatched, 0);
    }

    #[test]
    fn balances_independent_streams() {
        // Many independent single-uop chains: ties everywhere, so the
        // least-loaded tie-break must spread them.
        let mut b = RegionBuilder::new(0, "indep");
        for i in 0..8u8 {
            b = b.alu(r(i % 8), &[r(i % 8)]);
        }
        let region = b.build();
        let mut uops = Vec::new();
        let mut seq = 0;
        for _ in 0..200 {
            seq = virtclust_uarch::trace::expand_region(
                &region,
                seq,
                &mut uops,
                |_, _| 0,
                |_, _| true,
            );
        }
        let mut trace = SliceTrace::new(&uops);
        let stats = simulate(
            &MachineConfig::default(),
            &mut trace,
            &mut OccupancyAware::new(),
            &RunLimits::unlimited(),
        );
        assert!(
            stats.dispatch_imbalance() < 0.8,
            "both clusters must see work, imbalance={}",
            stats.dispatch_imbalance()
        );
    }

    #[test]
    fn parallel_mode_never_beats_sequential_on_dependent_code() {
        // Serial dependent chain crossing registers: sequential OP should
        // generate no more copies than the stale-information variant.
        let region = RegionBuilder::new(0, "serial")
            .alu(r(1), &[r(1), r(2)])
            .alu(r(2), &[r(1)])
            .alu(r(3), &[r(2)])
            .alu(r(1), &[r(3), r(2)])
            .build();
        let mut uops = Vec::new();
        let mut seq = 0;
        for _ in 0..100 {
            seq = virtclust_uarch::trace::expand_region(
                &region,
                seq,
                &mut uops,
                |_, _| 0,
                |_, _| true,
            );
        }
        let run = |p: &mut dyn SteeringPolicy| {
            let mut trace = SliceTrace::new(&uops);
            simulate(
                &MachineConfig::default(),
                &mut trace,
                p,
                &RunLimits::unlimited(),
            )
        };
        let seq_stats = run(&mut OccupancyAware::new());
        let par_stats = run(&mut OccupancyAware::parallel());
        assert!(
            seq_stats.copies_generated <= par_stats.copies_generated,
            "sequential {} vs parallel {}",
            seq_stats.copies_generated,
            par_stats.copies_generated
        );
        assert!(seq_stats.cycles <= par_stats.cycles + 5);
    }
}
