//! The trivial hardware policies: `one-cluster` and the static-assignment
//! follower used by the software-only configurations (OB/SPDI and RHOP).

use virtclust_sim::{SteerDecision, SteerView, SteeringPolicy};
use virtclust_uarch::DynUop;

/// The paper's `one-cluster` configuration: *"Every instruction goes to one
/// cluster."* Zero communication, worst-possible balance — the lower bound
/// that shows how much the `OP` baseline gains from clustering at all.
#[derive(Debug, Clone, Default)]
pub struct OneCluster;

impl OneCluster {
    /// Create the policy.
    pub fn new() -> Self {
        OneCluster
    }
}

impl SteeringPolicy for OneCluster {
    fn name(&self) -> String {
        "one-cluster".into()
    }

    fn steer(&mut self, _uop: &DynUop, _view: &SteerView<'_>) -> SteerDecision {
        SteerDecision::Cluster(0)
    }

    fn steer_is_pure(&self) -> bool {
        true
    }
}

/// Hardware side of the **software-only** schemes (`OB` = SPDI static
/// placement / dynamic issue, and `RHOP`): the compiler bound every static
/// instruction to a physical cluster; the hardware merely obeys
/// (`SteerHint::Static`), performing no dependence checking and no voting.
///
/// Micro-ops without a static hint (possible if a region was never compiled)
/// fall back to cluster 0 and are counted in
/// [`StaticFollow::unannotated`].
///
/// The decision is a pure function of `(uop, view)`, and the hint-less
/// counter is a per-micro-op-idempotent cursor (each distinct `uop.seq` is
/// counted once no matter how many times the simulator consults the policy
/// for it), so the policy declares
/// [`SteeringPolicy::steer_is_pure`] — which is what lets the simulator
/// skip OB/RHOP dispatch-stall spans and consume the epoch-batched
/// dispatch plan instead of re-steering every stalled cycle.
#[derive(Debug, Clone, Default)]
pub struct StaticFollow {
    unannotated: u64,
    /// Sequence number of the last hint-less micro-op counted — the cursor
    /// that makes the count idempotent per micro-op. Re-steers of a
    /// stalled front micro-op and idle-span probe calls repeat the same
    /// `uop.seq`, and the dispatch pipeline only ever revisits the
    /// *current* front micro-op, so one slot suffices.
    last_unannotated: Option<u64>,
}

impl StaticFollow {
    /// Create the policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct micro-ops seen without a static-cluster annotation.
    pub fn unannotated(&self) -> u64 {
        self.unannotated
    }
}

impl SteeringPolicy for StaticFollow {
    fn name(&self) -> String {
        "static-follow".into()
    }

    fn steer(&mut self, uop: &DynUop, view: &SteerView<'_>) -> SteerDecision {
        match uop.hint.static_cluster() {
            Some(c) => SteerDecision::Cluster(c % view.num_clusters() as u8),
            None => {
                if self.last_unannotated != Some(uop.seq) {
                    self.unannotated += 1;
                    self.last_unannotated = Some(uop.seq);
                }
                SteerDecision::Cluster(0)
            }
        }
    }

    fn reset(&mut self) {
        self.unannotated = 0;
        self.last_unannotated = None;
    }

    fn steer_is_pure(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtclust_sim::{simulate, RunLimits};
    use virtclust_uarch::{ArchReg, MachineConfig, RegionBuilder, SliceTrace, SteerHint};

    fn r(i: u8) -> ArchReg {
        ArchReg::int(i)
    }

    #[test]
    fn one_cluster_uses_only_cluster_zero() {
        let region = RegionBuilder::new(0, "t")
            .alu(r(1), &[r(1)])
            .alu(r(2), &[r(1)])
            .build();
        let mut uops = Vec::new();
        let mut seq = 0;
        for _ in 0..50 {
            seq = virtclust_uarch::trace::expand_region(
                &region,
                seq,
                &mut uops,
                |_, _| 0,
                |_, _| true,
            );
        }
        let mut trace = SliceTrace::new(&uops);
        let stats = simulate(
            &MachineConfig::default(),
            &mut trace,
            &mut OneCluster::new(),
            &RunLimits::unlimited(),
        );
        assert_eq!(stats.copies_generated, 0);
        assert_eq!(stats.clusters[1].dispatched, 0);
        assert_eq!(stats.clusters[0].dispatched, 100);
    }

    #[test]
    fn static_follow_obeys_annotations() {
        let mut region = RegionBuilder::new(0, "t")
            .alu(r(1), &[r(1)])
            .alu(r(2), &[r(2)])
            .build();
        region.insts[0].hint = SteerHint::Static { cluster: 1 };
        region.insts[1].hint = SteerHint::Static { cluster: 0 };
        let mut uops = Vec::new();
        let mut seq = 0;
        for _ in 0..30 {
            seq = virtclust_uarch::trace::expand_region(
                &region,
                seq,
                &mut uops,
                |_, _| 0,
                |_, _| true,
            );
        }
        let mut trace = SliceTrace::new(&uops);
        let mut policy = StaticFollow::new();
        let stats = simulate(
            &MachineConfig::default(),
            &mut trace,
            &mut policy,
            &RunLimits::unlimited(),
        );
        assert_eq!(stats.clusters[1].dispatched, 30);
        assert_eq!(stats.clusters[0].dispatched, 30);
        assert_eq!(policy.unannotated(), 0);
    }

    #[test]
    fn static_follow_counts_missing_hints_and_falls_back() {
        let region = RegionBuilder::new(0, "bare").alu(r(1), &[r(1)]).build();
        let mut uops = Vec::new();
        virtclust_uarch::trace::expand_region(&region, 0, &mut uops, |_, _| 0, |_, _| true);
        let mut trace = SliceTrace::new(&uops);
        let mut policy = StaticFollow::new();
        let stats = simulate(
            &MachineConfig::default(),
            &mut trace,
            &mut policy,
            &RunLimits::unlimited(),
        );
        assert_eq!(stats.clusters[0].dispatched, 1);
        assert_eq!(policy.unannotated(), 1);
    }

    #[test]
    fn static_follow_clamps_out_of_range_clusters() {
        let mut region = RegionBuilder::new(0, "t").alu(r(1), &[r(1)]).build();
        region.insts[0].hint = SteerHint::Static { cluster: 7 }; // 2-cluster machine
        let mut uops = Vec::new();
        virtclust_uarch::trace::expand_region(&region, 0, &mut uops, |_, _| 0, |_, _| true);
        let mut trace = SliceTrace::new(&uops);
        let stats = simulate(
            &MachineConfig::default(),
            &mut trace,
            &mut StaticFollow::new(),
            &RunLimits::unlimited(),
        );
        assert_eq!(stats.clusters[1].dispatched, 1, "7 % 2 == 1");
    }
}
