//! # virtclust-steer
//!
//! Steering policies for the clustered out-of-order machine of Cai et al.,
//! IPDPS 2008 — the hardware half of every configuration in the paper's
//! Table 3:
//!
//! | Config       | Type              | Implementation |
//! |--------------|-------------------|----------------|
//! | `OP`         | hardware-only     | [`OccupancyAware`] (sequential, stall-over-steer) |
//! | `one-cluster`| hardware-only     | [`OneCluster`] |
//! | `OB`         | software-only     | [`StaticFollow`] over SPDI annotations |
//! | `RHOP`       | software-only     | [`StaticFollow`] over RHOP annotations |
//! | `VC`         | **hybrid**        | [`VcMapper`] over virtual-cluster annotations |
//!
//! plus [`OccupancyAware::parallel`], the renaming-style *parallel* steering
//! straw-man of Sec. 2.1 (it reads only stale bundle-entry locations), and
//! the [`complexity`] model behind the paper's Table 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complexity;
pub mod modn;
pub mod occupancy;
pub mod simple;
pub mod vc;

pub use complexity::{table1_markdown, ComplexityEstimate, ComplexityProfile};
pub use modn::ModN;
pub use occupancy::{LocationMode, OccupancyAware};
pub use simple::{OneCluster, StaticFollow};
pub use vc::VcMapper;
