//! The software side of the paper's contribution: partitioning a region's
//! DDG into virtual clusters at compile time (Fig. 2).
//!
//! The three steps of Fig. 2:
//!
//! 1. **Computation of critical paths** — two DDG traversals give each node
//!    its depth and height; criticality = depth + height
//!    ([`virtclust_ddg::Criticality`]).
//! 2. **Partition of DDG into virtual clusters** — a top-down traversal
//!    assigns each instruction to the VC with the best expected benefit,
//!    where benefit is estimated completion time from dependences, static
//!    latencies and resource contention ([`crate::cost::GreedyPlacer`]).
//! 3. **Identification of chains and chain leaders** — connected groups per
//!    VC ([`crate::chains::identify_chains`]); leaders get the special mark
//!    that tells the hardware to re-read the workload counters.
//!
//! The pass writes `SteerHint::Vc { vc, leader }` on every instruction.

use virtclust_ddg::{Criticality, Ddg, Partition};
use virtclust_uarch::{LatencyModel, Program, Region, SteerHint};

use crate::chains::identify_chains;
use crate::cost::{GreedyPlacer, PlacerConfig};

/// Configuration of the virtual-cluster partitioning pass.
#[derive(Debug, Clone, Copy)]
pub struct VcConfig {
    /// Number of virtual clusters (paper: fixed by hardware, exposed via
    /// the ISA; 2 performs best on both machine sizes).
    pub num_vcs: u32,
    /// Optional maximum chain length (None = unbounded, the paper's
    /// behaviour; Some(n) is an ablation knob adding remap points).
    pub max_chain_len: Option<usize>,
    /// Cost-model knobs.
    pub placer: PlacerConfig,
}

impl VcConfig {
    /// Default configuration for `num_vcs` virtual clusters.
    ///
    /// Uses the shared completion-time cost model with its machine-matched
    /// defaults (2-wide issue, copy penalty = link + queueing). Earlier a
    /// deliberately communication-averse tuning was tried here
    /// (`copy_penalty = 6`, `balance_weight = 0.15`) on the theory that the
    /// hardware mapper would fix the resulting imbalance at run time; on
    /// the simulated machine that trade loses — the inflated virtual
    /// clusters stuff one issue queue and dispatch stalls eat more cycles
    /// than the saved copies — so VC now partitions with the same balance
    /// appetite as the baselines and leaves only *runtime* imbalance to the
    /// mapper.
    pub fn new(num_vcs: u32) -> Self {
        VcConfig {
            num_vcs,
            max_chain_len: None,
            placer: PlacerConfig::new(num_vcs),
        }
    }
}

/// Partition one region and return the (partition, chain count) for
/// inspection; annotations are written into the region.
pub fn partition_region(
    region: &mut Region,
    lat: &LatencyModel,
    cfg: &VcConfig,
) -> (Partition, usize) {
    let ddg = Ddg::from_region(region, lat);
    let crit = Criticality::compute(&ddg);
    let parts = GreedyPlacer::new(cfg.placer).place(&ddg, &crit);
    let chains = identify_chains(&ddg, &parts, cfg.max_chain_len);

    // Mark everything as a follower first, then raise the leaders.
    for (i, inst) in region.insts.iter_mut().enumerate() {
        inst.hint = SteerHint::Vc {
            vc: parts.part(i as u32) as u8,
            leader: false,
        };
    }
    for chain in &chains {
        let leader = chain.leader() as usize;
        region.insts[leader].hint = SteerHint::Vc {
            vc: chain.vc as u8,
            leader: true,
        };
    }
    let n_chains = chains.len();
    (parts, n_chains)
}

/// Run the full Fig. 2 pass over every region of `program`.
pub fn partition_into_virtual_clusters(program: &mut Program, lat: &LatencyModel, cfg: &VcConfig) {
    for region in &mut program.regions {
        let _ = partition_region(region, lat, cfg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtclust_uarch::{ArchReg, RegionBuilder};

    fn r(i: u8) -> ArchReg {
        ArchReg::int(i)
    }

    fn two_chain_region() -> Region {
        let mut b = RegionBuilder::new(0, "2chains");
        for _ in 0..6 {
            b = b.alu(r(1), &[r(1)]).alu(r(2), &[r(2)]);
        }
        b.build()
    }

    #[test]
    fn every_instruction_gets_a_vc_hint() {
        let mut region = two_chain_region();
        partition_region(&mut region, &LatencyModel::default(), &VcConfig::new(2));
        for inst in &region.insts {
            assert!(inst.hint.vc_id().is_some(), "unannotated instruction");
            assert!(inst.hint.vc_id().unwrap() < 2);
        }
    }

    #[test]
    fn independent_chains_get_different_vcs_with_one_leader_each() {
        let mut region = two_chain_region();
        let (parts, n_chains) =
            partition_region(&mut region, &LatencyModel::default(), &VcConfig::new(2));
        // Chain r1 = even indices, chain r2 = odd indices.
        let vc_a = parts.part(0);
        let vc_b = parts.part(1);
        assert_ne!(vc_a, vc_b, "independent chains should split");
        assert_eq!(n_chains, 2);
        let leaders: Vec<usize> = region
            .insts
            .iter()
            .enumerate()
            .filter(|(_, i)| i.hint.is_chain_leader())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(leaders, vec![0, 1], "first instruction of each chain leads");
    }

    #[test]
    fn serial_chain_gets_single_vc_and_single_leader() {
        let mut b = RegionBuilder::new(0, "serial");
        for _ in 0..10 {
            b = b.alu(r(1), &[r(1)]);
        }
        let mut region = b.build();
        let (parts, n_chains) =
            partition_region(&mut region, &LatencyModel::default(), &VcConfig::new(2));
        let vc0 = parts.part(0);
        assert!((0..10u32).all(|i| parts.part(i) == vc0));
        assert_eq!(n_chains, 1);
        assert_eq!(
            region
                .insts
                .iter()
                .filter(|i| i.hint.is_chain_leader())
                .count(),
            1
        );
    }

    #[test]
    fn leaders_vc_matches_their_own_partition() {
        let mut region = two_chain_region();
        let (parts, _) = partition_region(&mut region, &LatencyModel::default(), &VcConfig::new(2));
        for (i, inst) in region.insts.iter().enumerate() {
            assert_eq!(
                inst.hint.vc_id().unwrap() as u32,
                parts.part(i as u32),
                "hint and partition disagree at {i}"
            );
        }
    }

    #[test]
    fn max_chain_len_inserts_extra_leaders() {
        let mut b = RegionBuilder::new(0, "serial");
        for _ in 0..12 {
            b = b.alu(r(1), &[r(1)]);
        }
        let mut region = b.build();
        let mut cfg = VcConfig::new(2);
        cfg.max_chain_len = Some(4);
        partition_region(&mut region, &LatencyModel::default(), &cfg);
        assert_eq!(
            region
                .insts
                .iter()
                .filter(|i| i.hint.is_chain_leader())
                .count(),
            3,
            "12 / 4 leaders"
        );
    }

    #[test]
    fn whole_program_pass_annotates_all_regions() {
        let mut p = Program::new("prog");
        p.add_region(two_chain_region());
        p.add_region(two_chain_region());
        partition_into_virtual_clusters(&mut p, &LatencyModel::default(), &VcConfig::new(2));
        for region in &p.regions {
            assert!(region.insts.iter().all(|i| i.hint.vc_id().is_some()));
        }
    }
}
