//! Chains and chain leaders (paper Sec. 4.2, Fig. 3).
//!
//! *"We refer to a group of instructions in the same virtual cluster that
//! are mapped into the same physical cluster as chains. The chain leader is
//! defined as the first instruction of a chain. Special codes are generated
//! for chain leaders in order to notify the hardware when to update the
//! mapping table between virtual clusters and physical clusters."*
//!
//! A chain must move between physical clusters *as a unit* — its members
//! are data-dependent on each other, so splitting it would manufacture
//! copies. Independent subgraphs of the same virtual cluster, however, are
//! safe remap points. Chains are therefore the weakly-connected components
//! of the subgraph induced by each virtual cluster, ordered by their first
//! instruction; that first instruction is the leader (nodes A, B and E in
//! the paper's Fig. 3).

use virtclust_ddg::{weakly_connected_components, Ddg, Partition};

/// One chain: a virtual cluster id plus the member instructions (ascending
/// program order; `members[0]` is the chain leader).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// The virtual cluster the chain belongs to.
    pub vc: u32,
    /// Member node ids in ascending program order.
    pub members: Vec<u32>,
}

impl Chain {
    /// The chain leader (first member in program order).
    pub fn leader(&self) -> u32 {
        self.members[0]
    }

    /// Number of member instructions.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Chains are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Identify the chains of a virtual-cluster partition.
///
/// `max_chain_len` optionally splits long components: a fresh leader is
/// inserted every `max_chain_len` members, giving the hardware more remap
/// opportunities at the cost of potential intra-chain copies (an ablation
/// knob; the paper uses unbounded chains within a region).
pub fn identify_chains(ddg: &Ddg, parts: &Partition, max_chain_len: Option<usize>) -> Vec<Chain> {
    let mut chains = Vec::new();
    for vc in 0..parts.k() {
        for comp in weakly_connected_components(ddg, |i| parts.part(i) == vc) {
            match max_chain_len {
                Some(maxlen) if maxlen >= 1 => {
                    for piece in comp.chunks(maxlen) {
                        chains.push(Chain {
                            vc,
                            members: piece.to_vec(),
                        });
                    }
                }
                _ => chains.push(Chain { vc, members: comp }),
            }
        }
    }
    // Order chains by leader so iteration matches program order.
    chains.sort_by_key(|c| c.leader());
    chains
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtclust_ddg::Partition;
    use virtclust_uarch::{ArchReg, LatencyModel, RegionBuilder};

    fn r(i: u8) -> ArchReg {
        ArchReg::int(i)
    }

    /// The paper's Fig. 3 shape: two virtual clusters; VC0 holds a connected
    /// chain led by A; VC1 holds two disconnected pieces led by B and E.
    #[test]
    fn fig3_like_graph_has_three_chains() {
        // A(0) -> C(2) -> D(3)      [VC 0]
        // B(1) -> (feeds D via r4)  [VC 1]
        // E(4) -> F(5)              [VC 1], independent of B
        let region = RegionBuilder::new(0, "fig3")
            .alu(r(1), &[r(1)]) // A
            .alu(r(4), &[r(9)]) // B
            .alu(r(2), &[r(1)]) // C
            .alu(r(3), &[r(2), r(4)]) // D
            .alu(r(5), &[r(8)]) // E
            .alu(r(6), &[r(5)]) // F
            .build();
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        let parts = Partition::from_assign(vec![0, 1, 0, 0, 1, 1], 2);
        let chains = identify_chains(&ddg, &parts, None);
        assert_eq!(chains.len(), 3);
        let leaders: Vec<u32> = chains.iter().map(Chain::leader).collect();
        assert_eq!(leaders, vec![0, 1, 4], "A, B and E lead");
        assert_eq!(chains[0].members, vec![0, 2, 3]);
        assert_eq!(chains[1].members, vec![1]);
        assert_eq!(chains[2].members, vec![4, 5]);
    }

    #[test]
    fn chains_partition_every_node_exactly_once() {
        let mut b = RegionBuilder::new(0, "mix");
        for i in 0..12u8 {
            b = b.alu(r(i % 6), &[r(i % 6)]);
        }
        let region = b.build();
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        let assign: Vec<u32> = (0..12).map(|i| (i % 2) as u32).collect();
        let parts = Partition::from_assign(assign, 2);
        let chains = identify_chains(&ddg, &parts, None);
        let mut seen = [false; 12];
        for c in &chains {
            for &m in &c.members {
                assert!(!seen[m as usize], "node {m} in two chains");
                seen[m as usize] = true;
                assert_eq!(parts.part(m), c.vc);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn max_chain_len_splits_long_components() {
        let mut b = RegionBuilder::new(0, "long");
        for _ in 0..9 {
            b = b.alu(r(1), &[r(1)]);
        }
        let region = b.build();
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        let parts = Partition::new(9, 1);
        let unbounded = identify_chains(&ddg, &parts, None);
        assert_eq!(unbounded.len(), 1);
        let split = identify_chains(&ddg, &parts, Some(4));
        assert_eq!(split.len(), 3, "9 nodes / 4 per chain");
        assert_eq!(split[0].members.len(), 4);
        assert_eq!(split[2].members.len(), 1);
        assert_eq!(
            split.iter().map(Chain::leader).collect::<Vec<_>>(),
            vec![0, 4, 8]
        );
    }

    #[test]
    fn leaders_are_program_order_minima_of_their_chain() {
        let region = RegionBuilder::new(0, "t")
            .alu(r(1), &[r(9)])
            .alu(r(2), &[r(1)])
            .alu(r(3), &[r(8)])
            .build();
        let ddg = Ddg::from_region(&region, &LatencyModel::default());
        let parts = Partition::from_assign(vec![0, 0, 0], 1);
        let chains = identify_chains(&ddg, &parts, None);
        for c in &chains {
            assert!(c.members.iter().all(|&m| m >= c.leader()));
        }
    }
}
