//! The static completion-time cost model shared by the compile-time
//! placement passes.
//!
//! Sec. 4.2 of the paper: *"for each instruction, the benefit of assigning
//! the instruction to all possible VCs is computed and the cluster with the
//! best benefit is selected. In order to compute such expected benefit, the
//! completion time of the instruction is used … estimated based on the
//! dependences, the latencies, and the resource contention in the intended
//! cluster."*
//!
//! [`GreedyPlacer`] walks the DDG top-down (program order is topological)
//! and, per instruction, estimates its completion time on every candidate
//! target (virtual cluster for the VC pass, physical cluster for SPDI):
//!
//! * **dependences** — operands produced on another target pay the copy
//!   latency;
//! * **latencies** — static latencies from the machine's latency model;
//! * **resource contention** — each target issues `issue_width` ops/cycle,
//!   so accumulated work delays the start time;
//! * **criticality** — instructions with slack also pay a load-balance
//!   penalty, so slack is spent on balance while zero-slack (critical)
//!   instructions stay with their producers. This is how "the criticality
//!   of the instructions" enters the benefit function.

use virtclust_ddg::{Criticality, Ddg, Partition};

/// Tuning knobs of the greedy placement cost model.
#[derive(Debug, Clone, Copy)]
pub struct PlacerConfig {
    /// Number of targets (virtual clusters or physical clusters).
    pub k: u32,
    /// Per-target issue bandwidth assumed by the resource model
    /// (ops/cycle; the paper's clusters issue 2 INT + 2 FP).
    pub issue_width: u64,
    /// Penalty in cycles for consuming an operand produced on another
    /// target (the copy latency plus expected queueing).
    pub copy_penalty: u64,
    /// Weight of the load-balance term for fully slackful instructions
    /// (scaled down to zero for critical ones).
    pub balance_weight: f64,
}

impl PlacerConfig {
    /// Defaults matching the paper's machine: 2-wide issue per cluster,
    /// 1-cycle links (plus one expected queueing cycle).
    pub fn new(k: u32) -> Self {
        assert!(k >= 1);
        PlacerConfig {
            k,
            issue_width: 2,
            copy_penalty: 2,
            balance_weight: 0.5,
        }
    }
}

/// Greedy top-down completion-time placer.
#[derive(Debug)]
pub struct GreedyPlacer {
    cfg: PlacerConfig,
}

impl GreedyPlacer {
    /// Create a placer.
    pub fn new(cfg: PlacerConfig) -> Self {
        GreedyPlacer { cfg }
    }

    /// Partition `ddg` into `cfg.k` targets. `crit` must come from the same
    /// graph.
    pub fn place(&self, ddg: &Ddg, crit: &Criticality) -> Partition {
        let k = self.cfg.k as usize;
        let n = ddg.n();
        let mut parts = Partition::new(n, self.cfg.k);
        if n == 0 {
            return parts;
        }
        // Per-node estimated completion time, per-target accumulated work.
        let mut completion = vec![0u64; n];
        let mut load = vec![0u64; k];
        let cp = crit.cp_length.max(1);

        for i in ddg.topo_order() {
            let lat = u64::from(ddg.latency(i));
            let slack_frac = crit.slack(i) as f64 / cp as f64;

            let mut best_t = 0u32;
            let mut best_score = f64::INFINITY;
            let mut best_load = u64::MAX;
            let mut best_completion = 0u64;
            #[allow(clippy::needless_range_loop)] // t indexes two arrays
            for t in 0..k {
                // Dependence-ready time, with copy penalty for remote
                // producers.
                let mut ready = 0u64;
                for &p in ddg.preds(i) {
                    let mut c = completion[p as usize];
                    if parts.part(p) != t as u32 {
                        c += self.cfg.copy_penalty;
                    }
                    ready = ready.max(c);
                }
                // Resource contention: target t has `load[t]` work and
                // issues issue_width per cycle.
                let resource = load[t] / self.cfg.issue_width;
                let completion_est = ready.max(resource) + lat;
                // Balance term, active only when the instruction has slack.
                let score =
                    completion_est as f64 + self.cfg.balance_weight * slack_frac * load[t] as f64;
                // Strictly better score wins; equal scores go to the
                // least-loaded target (the tie-break that spreads
                // independent chains).
                if score < best_score || (score == best_score && load[t] < best_load) {
                    best_score = score;
                    best_load = load[t];
                    best_t = t as u32;
                    best_completion = completion_est;
                }
            }
            parts.set(i, best_t);
            completion[i as usize] = best_completion;
            load[best_t as usize] += lat;
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtclust_ddg::Criticality;
    use virtclust_uarch::{ArchReg, LatencyModel, RegionBuilder};

    fn r(i: u8) -> ArchReg {
        ArchReg::int(i)
    }

    fn place(region: &virtclust_uarch::Region, k: u32) -> (Ddg, Partition) {
        let ddg = Ddg::from_region(region, &LatencyModel::default());
        let crit = Criticality::compute(&ddg);
        let parts = GreedyPlacer::new(PlacerConfig::new(k)).place(&ddg, &crit);
        (ddg, parts)
    }

    #[test]
    fn serial_chain_stays_on_one_target() {
        let mut b = RegionBuilder::new(0, "chain");
        for _ in 0..10 {
            b = b.alu(r(1), &[r(1)]);
        }
        let (ddg, parts) = place(&b.build(), 2);
        assert_eq!(parts.edge_cut(&ddg), 0, "no reason to split a serial chain");
    }

    #[test]
    fn two_independent_chains_split_across_targets() {
        let mut b = RegionBuilder::new(0, "2chains");
        for _ in 0..8 {
            b = b.alu(r(1), &[r(1)]).alu(r(2), &[r(2)]);
        }
        let (ddg, parts) = place(&b.build(), 2);
        assert_eq!(parts.edge_cut(&ddg), 0, "chains are independent");
        let sizes = parts.sizes();
        assert_eq!(sizes, vec![8, 8], "each chain gets its own target");
    }

    #[test]
    fn wide_independent_work_is_balanced() {
        let mut b = RegionBuilder::new(0, "wide");
        for i in 0..16u8 {
            b = b.alu(r(i % 16), &[r(i % 16)]);
        }
        let (_, parts) = place(&b.build(), 4);
        let sizes = parts.sizes();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(
            max - min <= 2,
            "independent ops spread evenly, sizes={sizes:?}"
        );
    }

    #[test]
    fn critical_path_not_cut_even_under_load_imbalance() {
        // One long critical chain plus slackful independent ops: the chain
        // must stay whole; the independents absorb the imbalance.
        let mut b = RegionBuilder::new(0, "crit");
        for _ in 0..6 {
            b = b.mul(r(1), r(1), r(1)); // latency 3 each -> critical
        }
        for i in 2..8u8 {
            b = b.alu(r(i), &[r(i)]); // slackful
        }
        let (ddg, parts) = place(&b.build(), 2);
        // The multiply chain is nodes 0..6: all same part.
        let chain_part = parts.part(0);
        for i in 1..6u32 {
            assert_eq!(parts.part(i), chain_part, "critical chain cut at {i}");
        }
        assert_eq!(ddg.n(), 12);
    }

    #[test]
    fn single_target_puts_everything_together() {
        let region = RegionBuilder::new(0, "one")
            .alu(r(1), &[r(1)])
            .alu(r(2), &[r(2)])
            .build();
        let (_, parts) = place(&region, 1);
        assert!(parts.as_slice().iter().all(|&p| p == 0));
    }

    #[test]
    fn empty_region_is_fine() {
        let region = virtclust_uarch::Region::new(0, "empty");
        let (_, parts) = place(&region, 2);
        assert_eq!(parts.n(), 0);
    }
}
