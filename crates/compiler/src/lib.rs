//! # virtclust-compiler
//!
//! The compiler half of every *software* steering scheme evaluated in
//! Cai et al., IPDPS 2008. The paper implements these passes "in the code
//! generation step of the Intel production compiler"; here they run over
//! [`virtclust_uarch::Program`] regions and communicate with the hardware by
//! writing [`virtclust_uarch::SteerHint`] annotations (the paper's ISA
//! extension).
//!
//! * [`vc`] — the contribution's software side (Fig. 2): criticality-driven
//!   partitioning of each region's DDG into **virtual clusters**, followed
//!   by chain identification and chain-leader marking (Fig. 3);
//! * [`spdi`] — the `OB` baseline: SPDI-style operation-based static
//!   placement onto *physical* clusters [Nagarajan et al., PACT'04];
//! * [`rhop`] — the `RHOP` baseline: slack-weighted multilevel graph
//!   partitioning with boundary refinement [Chu, Fan, Mahlke, PLDI'03];
//! * [`cost`] — the shared static completion-time model (dependences +
//!   static latencies + resource contention, Sec. 4.2);
//! * [`chains`] — chains and chain leaders;
//! * [`driver`] — [`driver::SoftwarePass`], the one-call entry point that
//!   annotates a whole program for a given configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chains;
pub mod cost;
pub mod driver;
pub mod rhop;
pub mod spdi;
pub mod vc;

pub use chains::{identify_chains, Chain};
pub use cost::{GreedyPlacer, PlacerConfig};
pub use driver::SoftwarePass;
pub use rhop::{RhopConfig, RhopPartitioner};
pub use spdi::spdi_place;
pub use vc::{partition_into_virtual_clusters, VcConfig};
