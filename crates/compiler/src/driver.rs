//! One-call driver applying a software steering pass to a whole program.

use virtclust_uarch::{LatencyModel, Program};

use crate::rhop::{rhop_place, RhopConfig};
use crate::spdi::spdi_place;
use crate::vc::{partition_into_virtual_clusters, VcConfig};

/// Which compile-time pass (if any) annotates the program — the software
/// side of each configuration in the paper's Table 3.
#[derive(Debug, Clone, Copy)]
pub enum SoftwarePass {
    /// No annotations (hardware-only configurations: OP, one-cluster).
    None,
    /// SPDI operation-based placement onto physical clusters (`OB`).
    Ob {
        /// Number of physical clusters to place for.
        clusters: u32,
    },
    /// Multilevel slack-weighted partitioning onto physical clusters
    /// (`RHOP`).
    Rhop {
        /// Number of physical clusters to partition for.
        clusters: u32,
    },
    /// The paper's virtual-cluster partitioning (`VC`).
    Vc(VcConfig),
}

impl SoftwarePass {
    /// Apply the pass to `program` (clearing any previous annotations).
    pub fn apply(&self, program: &mut Program, lat: &LatencyModel) {
        program.clear_hints();
        match *self {
            SoftwarePass::None => {}
            SoftwarePass::Ob { clusters } => spdi_place(program, lat, clusters),
            SoftwarePass::Rhop { clusters } => rhop_place(program, lat, &RhopConfig::new(clusters)),
            SoftwarePass::Vc(cfg) => partition_into_virtual_clusters(program, lat, &cfg),
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> String {
        match self {
            SoftwarePass::None => "none".into(),
            SoftwarePass::Ob { clusters } => format!("OB({clusters})"),
            SoftwarePass::Rhop { clusters } => format!("RHOP({clusters})"),
            SoftwarePass::Vc(cfg) => format!("VC({} vcs)", cfg.num_vcs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtclust_uarch::{ArchReg, RegionBuilder, SteerHint};

    fn r(i: u8) -> ArchReg {
        ArchReg::int(i)
    }

    fn program() -> Program {
        let mut p = Program::new("t");
        let mut b = RegionBuilder::new(0, "body");
        for _ in 0..4 {
            b = b.alu(r(1), &[r(1)]).alu(r(2), &[r(2)]);
        }
        p.add_region(b.build());
        p
    }

    #[test]
    fn none_pass_leaves_no_hints() {
        let mut p = program();
        SoftwarePass::Vc(crate::vc::VcConfig::new(2)).apply(&mut p, &LatencyModel::default());
        SoftwarePass::None.apply(&mut p, &LatencyModel::default());
        assert!(p.regions[0].insts.iter().all(|i| i.hint == SteerHint::None));
    }

    #[test]
    fn ob_and_rhop_write_static_hints() {
        for pass in [
            SoftwarePass::Ob { clusters: 2 },
            SoftwarePass::Rhop { clusters: 2 },
        ] {
            let mut p = program();
            pass.apply(&mut p, &LatencyModel::default());
            assert!(
                p.regions[0]
                    .insts
                    .iter()
                    .all(|i| i.hint.static_cluster().is_some()),
                "pass {} left unannotated instructions",
                pass.name()
            );
        }
    }

    #[test]
    fn vc_pass_writes_vc_hints_with_leaders() {
        let mut p = program();
        SoftwarePass::Vc(crate::vc::VcConfig::new(2)).apply(&mut p, &LatencyModel::default());
        assert!(p.regions[0].insts.iter().all(|i| i.hint.vc_id().is_some()));
        assert!(p.regions[0].insts.iter().any(|i| i.hint.is_chain_leader()));
    }

    #[test]
    fn reapplying_a_pass_replaces_hints() {
        let mut p = program();
        SoftwarePass::Ob { clusters: 2 }.apply(&mut p, &LatencyModel::default());
        SoftwarePass::Vc(crate::vc::VcConfig::new(2)).apply(&mut p, &LatencyModel::default());
        assert!(p.regions[0].insts.iter().all(|i| i.hint.vc_id().is_some()));
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(SoftwarePass::None.name(), "none");
        assert_eq!(SoftwarePass::Ob { clusters: 4 }.name(), "OB(4)");
        assert_eq!(SoftwarePass::Rhop { clusters: 2 }.name(), "RHOP(2)");
        assert!(SoftwarePass::Vc(crate::vc::VcConfig::new(2))
            .name()
            .contains("VC"));
    }
}
