//! The `OB` baseline: SPDI-style operation-based static placement
//! [Nagarajan, Kushwaha, Burger, McKinley, Lin, Keckler — PACT'04].
//!
//! Static Placement / Dynamic Issue: the compiler maps every static
//! instruction to a *physical* execution resource, balancing estimated load
//! against communication, and the hardware issues dynamically but never
//! re-places. The placement uses the same static completion-time model as
//! the VC pass ([`crate::cost::GreedyPlacer`]) — the decisive difference
//! between OB and the hybrid scheme is precisely that OB's target is
//! physical and final, with no runtime remapping when the static load
//! estimate turns out wrong (Sec. 3.2 of the paper).

use virtclust_ddg::{Criticality, Ddg, Partition};
use virtclust_uarch::{LatencyModel, Program, Region, SteerHint};

use crate::cost::{GreedyPlacer, PlacerConfig};

/// Place one region onto `clusters` physical clusters, writing
/// `SteerHint::Static` annotations. Returns the partition for inspection.
pub fn spdi_place_region(region: &mut Region, lat: &LatencyModel, clusters: u32) -> Partition {
    let ddg = Ddg::from_region(region, lat);
    let crit = Criticality::compute(&ddg);
    let parts = GreedyPlacer::new(PlacerConfig::new(clusters)).place(&ddg, &crit);
    for (i, inst) in region.insts.iter_mut().enumerate() {
        inst.hint = SteerHint::Static {
            cluster: parts.part(i as u32) as u8,
        };
    }
    parts
}

/// Run SPDI placement over every region of `program`.
pub fn spdi_place(program: &mut Program, lat: &LatencyModel, clusters: u32) {
    for region in &mut program.regions {
        let _ = spdi_place_region(region, lat, clusters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtclust_uarch::{ArchReg, RegionBuilder};

    fn r(i: u8) -> ArchReg {
        ArchReg::int(i)
    }

    #[test]
    fn every_instruction_gets_a_static_hint_in_range() {
        let mut region = RegionBuilder::new(0, "t")
            .alu(r(1), &[r(1)])
            .alu(r(2), &[r(2)])
            .alu(r(3), &[r(1), r(2)])
            .build();
        spdi_place_region(&mut region, &LatencyModel::default(), 2);
        for inst in &region.insts {
            let c = inst.hint.static_cluster().expect("annotated");
            assert!(c < 2);
        }
    }

    #[test]
    fn dependent_pair_shares_a_cluster() {
        let mut region = RegionBuilder::new(0, "dep")
            .alu(r(1), &[r(9)])
            .alu(r(2), &[r(1)])
            .build();
        let parts = spdi_place_region(&mut region, &LatencyModel::default(), 4);
        assert_eq!(parts.part(0), parts.part(1));
    }

    #[test]
    fn independent_heavy_chains_use_both_clusters() {
        let mut b = RegionBuilder::new(0, "2heavy");
        for _ in 0..8 {
            b = b.alu(r(1), &[r(1)]).alu(r(2), &[r(2)]);
        }
        let mut region = b.build();
        let parts = spdi_place_region(&mut region, &LatencyModel::default(), 2);
        let sizes = parts.sizes();
        assert!(
            sizes.iter().all(|&s| s > 0),
            "both clusters used: {sizes:?}"
        );
    }

    #[test]
    fn whole_program_annotation() {
        let mut p = Program::new("prog");
        p.add_region(RegionBuilder::new(0, "a").alu(r(1), &[r(1)]).build());
        p.add_region(RegionBuilder::new(0, "b").alu(r(2), &[r(2)]).build());
        spdi_place(&mut p, &LatencyModel::default(), 2);
        for region in &p.regions {
            assert!(region
                .insts
                .iter()
                .all(|i| i.hint.static_cluster().is_some()));
        }
    }
}
