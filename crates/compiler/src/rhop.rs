//! The `RHOP` baseline: region-based hierarchical operation partitioning
//! [Chu, Fan, Mahlke — PLDI'03], a multilevel graph-partitioning approach
//! to cluster assignment.
//!
//! Per the paper's description (Sec. 3.3): *"In RHOP, the weights are
//! assigned to nodes and edges in the data dependence graphs based on slack
//! information computed from the static latencies of the instructions. The
//! coarsening stage in RHOP tends to group the operations on the critical
//! path together and it stops coarsening instructions when the number of
//! coarse nodes equals the number of clusters in the machine. The refinement
//! stage traverses back through the coarsening step and makes improvements
//! to the initial partition based on metrics such as the workload per
//! cluster and total system workload."*
//!
//! Implementation: edge weights grow as endpoint slack shrinks (so
//! heavy-edge matching coarsens critical producer–consumer pairs first);
//! node weights are static latencies (workload); the initial partition is a
//! longest-processing-time assignment of coarse nodes; refinement walks the
//! hierarchy down performing greedy boundary moves that reduce cut weight
//! subject to a workload-balance tolerance.

use virtclust_ddg::{coarsen_until, Criticality, Ddg, Partition, WGraph};
use virtclust_uarch::{LatencyModel, Program, Region, SteerHint};

/// RHOP configuration.
#[derive(Debug, Clone, Copy)]
pub struct RhopConfig {
    /// Number of physical clusters to partition for.
    pub clusters: u32,
    /// Allowed workload imbalance during refinement: a move is legal while
    /// the destination stays below `(1 + tolerance) × average` load.
    pub balance_tolerance: f64,
    /// Greedy refinement sweeps per hierarchy level.
    pub refine_passes: usize,
    /// Edge-weight bonus multiplier for low-slack (critical) edges.
    pub criticality_bonus: f64,
    /// Weight of the balance term in the refinement gain function: moves
    /// may *increase* the cut when they sufficiently improve workload
    /// balance (RHOP refines on "the workload per cluster and total system
    /// workload", not cut alone).
    pub balance_gain_weight: f64,
}

impl RhopConfig {
    /// Defaults per the published algorithm's spirit. The tight balance
    /// tolerance reflects RHOP's emphasis on workload distribution — the
    /// very property the paper's Sec. 5.3 contrasts with VC: *"VC has worse
    /// workload balance than RHOP in most of the cases"* but wins on copy
    /// count because RHOP's balance constraint cuts dependence chains.
    pub fn new(clusters: u32) -> Self {
        assert!(clusters >= 1);
        RhopConfig {
            clusters,
            balance_tolerance: 0.04,
            refine_passes: 3,
            criticality_bonus: 2.0,
            balance_gain_weight: 6.0,
        }
    }
}

/// The multilevel partitioner.
#[derive(Debug)]
pub struct RhopPartitioner {
    cfg: RhopConfig,
}

impl RhopPartitioner {
    /// Create a partitioner.
    pub fn new(cfg: RhopConfig) -> Self {
        RhopPartitioner { cfg }
    }

    /// Partition `ddg` into `cfg.clusters` parts.
    pub fn partition(&self, ddg: &Ddg, crit: &Criticality) -> Partition {
        let n = ddg.n();
        let k = self.cfg.clusters;
        if n == 0 {
            return Partition::new(0, k);
        }
        if k == 1 {
            return Partition::new(n, 1);
        }

        // Slack-based weights.
        let cp = crit.cp_length.max(1) as f64;
        let node_w: Vec<f64> = (0..n as u32).map(|i| f64::from(ddg.latency(i))).collect();
        let g = WGraph::from_ddg(ddg, node_w, |e| {
            let slack = crit.slack(e.from).min(crit.slack(e.to)) as f64;
            1.0 + self.cfg.criticality_bonus * (1.0 - (slack / cp).min(1.0))
        });

        // Coarsen until #coarse nodes reaches the cluster count.
        let hierarchy = coarsen_until(g, k as usize);

        // Initial partition of the coarsest graph: LPT (heaviest first onto
        // the least-loaded part).
        let coarsest = hierarchy.coarsest();
        let mut order: Vec<u32> = (0..coarsest.n() as u32).collect();
        order.sort_by(|&a, &b| {
            coarsest
                .node_weight(b)
                .partial_cmp(&coarsest.node_weight(a))
                .expect("weights are finite")
                .then(a.cmp(&b))
        });
        let mut parts = vec![0u32; coarsest.n()];
        let mut load = vec![0.0f64; k as usize];
        for i in order {
            let target = (0..k as usize)
                .min_by(|&a, &b| {
                    load[a]
                        .partial_cmp(&load[b])
                        .expect("finite")
                        .then(a.cmp(&b))
                })
                .expect("k >= 1") as u32;
            parts[i as usize] = target;
            load[target as usize] += coarsest.node_weight(i);
        }

        // Uncoarsen with greedy boundary refinement at every level.
        self.refine(coarsest, &mut parts);
        for level in (0..hierarchy.num_levels() - 1).rev() {
            parts = hierarchy.project(level, &parts);
            self.refine(hierarchy.graph(level), &mut parts);
        }

        Partition::from_assign(parts, k)
    }

    /// Greedy boundary-move refinement with a combined gain: weighted-cut
    /// reduction plus a workload-balance term. A move that cuts an edge can
    /// still win when it repairs enough imbalance — which is how RHOP
    /// splits an over-heavy dependence chain across clusters (and why the
    /// paper finds RHOP better balanced but copy-richer than VC, Sec. 5.3).
    fn refine(&self, g: &WGraph, parts: &mut [u32]) {
        let k = self.cfg.clusters as usize;
        let total: f64 = g.total_node_weight();
        let avg = total / k as f64;
        let cap = avg * (1.0 + self.cfg.balance_tolerance);

        let mut load = vec![0.0f64; k];
        for i in 0..g.n() {
            load[parts[i] as usize] += g.node_weight(i as u32);
        }

        for _ in 0..self.cfg.refine_passes {
            let mut moved = false;
            for i in 0..g.n() as u32 {
                let from = parts[i as usize] as usize;
                // Connectivity of `i` to each part.
                let mut conn = vec![0.0f64; k];
                for &(nb, w) in g.neighbors(i) {
                    conn[parts[nb as usize] as usize] += w;
                }
                let w_i = g.node_weight(i);
                let mut best: Option<(usize, f64)> = None;
                for to in 0..k {
                    if to == from || load[to] + w_i > cap {
                        continue;
                    }
                    let cut_gain = conn[to] - conn[from];
                    // Balance gain: positive when the move shrinks the gap
                    // between source and destination loads.
                    let balance_gain = ((load[from] - load[to]) - w_i) / avg.max(1e-9);
                    let gain = cut_gain + self.cfg.balance_gain_weight * balance_gain.min(1.0);
                    let better = match best {
                        None => gain > 0.0,
                        Some((_, bg)) => gain > bg,
                    };
                    if better {
                        best = Some((to, gain));
                    }
                }
                if let Some((to, _)) = best {
                    parts[i as usize] = to as u32;
                    load[from] -= w_i;
                    load[to] += w_i;
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
    }
}

/// Run RHOP over one region, writing `SteerHint::Static` annotations.
pub fn rhop_place_region(region: &mut Region, lat: &LatencyModel, cfg: &RhopConfig) -> Partition {
    let ddg = Ddg::from_region(region, lat);
    let crit = Criticality::compute(&ddg);
    let parts = RhopPartitioner::new(*cfg).partition(&ddg, &crit);
    for (i, inst) in region.insts.iter_mut().enumerate() {
        inst.hint = SteerHint::Static {
            cluster: parts.part(i as u32) as u8,
        };
    }
    parts
}

/// Run RHOP over every region of `program`.
pub fn rhop_place(program: &mut Program, lat: &LatencyModel, cfg: &RhopConfig) {
    for region in &mut program.regions {
        let _ = rhop_place_region(region, lat, cfg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtclust_uarch::{ArchReg, RegionBuilder};

    fn r(i: u8) -> ArchReg {
        ArchReg::int(i)
    }

    fn partition(region: &Region, k: u32) -> (Ddg, Partition) {
        let lat = LatencyModel::default();
        let ddg = Ddg::from_region(region, &lat);
        let crit = Criticality::compute(&ddg);
        let parts = RhopPartitioner::new(RhopConfig::new(k)).partition(&ddg, &crit);
        (ddg, parts)
    }

    #[test]
    fn two_independent_chains_are_cut_free() {
        let mut b = RegionBuilder::new(0, "2chains");
        for _ in 0..8 {
            b = b.alu(r(1), &[r(1)]).alu(r(2), &[r(2)]);
        }
        let (ddg, parts) = partition(&b.build(), 2);
        assert_eq!(parts.edge_cut(&ddg), 0, "independent chains need no cut");
        let sizes = parts.sizes();
        assert_eq!(sizes, vec![8, 8]);
    }

    #[test]
    fn balance_is_enforced_on_wide_graphs() {
        let mut b = RegionBuilder::new(0, "wide");
        for i in 0..16u8 {
            b = b.alu(r(i % 16), &[r(i % 16)]);
        }
        let (_, parts) = partition(&b.build(), 4);
        let sizes = parts.sizes();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 2, "LPT + refinement balances: {sizes:?}");
    }

    #[test]
    fn serial_chain_is_cut_exactly_once_for_balance() {
        // A single serial chain of multiplies is all-critical. RHOP's
        // balance constraint forces it to be split across the two clusters
        // — exactly the behaviour the paper contrasts with VC (which keeps
        // critical chains whole at the expense of imbalance, Sec. 5.3). The
        // coarsening must still limit the damage to ONE scheduling cut.
        let mut b = RegionBuilder::new(0, "crit");
        for _ in 0..8 {
            b = b.mul(r(1), r(1), r(1));
        }
        let (ddg, parts) = partition(&b.build(), 2);
        // Each mul reads r1 twice -> one scheduling cut = 2 register edges.
        assert!(
            parts.edge_cut(&ddg) <= 2,
            "at most one scheduling cut, got {}",
            parts.edge_cut(&ddg)
        );
        let sizes = parts.sizes();
        assert_eq!(sizes, vec![4, 4], "balance constraint enforced");
    }

    #[test]
    fn single_cluster_short_circuits() {
        let region = RegionBuilder::new(0, "t").alu(r(1), &[r(1)]).build();
        let (_, parts) = partition(&region, 1);
        assert!(parts.as_slice().iter().all(|&p| p == 0));
    }

    #[test]
    fn empty_region_is_fine() {
        let region = Region::new(0, "empty");
        let (_, parts) = partition(&region, 2);
        assert_eq!(parts.n(), 0);
    }

    #[test]
    fn annotations_written_and_in_range() {
        let mut region = RegionBuilder::new(0, "t")
            .alu(r(1), &[r(1)])
            .alu(r(2), &[r(2)])
            .alu(r(3), &[r(1), r(2)])
            .build();
        rhop_place_region(&mut region, &LatencyModel::default(), &RhopConfig::new(2));
        for inst in &region.insts {
            assert!(inst.hint.static_cluster().expect("annotated") < 2);
        }
    }

    #[test]
    fn four_cluster_partition_uses_the_machine() {
        let mut b = RegionBuilder::new(0, "4way");
        for i in 0..4u8 {
            for _ in 0..6 {
                b = b.alu(r(i), &[r(i)]);
            }
        }
        let (ddg, parts) = partition(&b.build(), 4);
        assert_eq!(parts.edge_cut(&ddg), 0);
        let sizes = parts.sizes();
        assert!(sizes.iter().all(|&s| s == 6), "{sizes:?}");
    }
}
