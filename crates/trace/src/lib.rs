//! # virtclust-trace
//!
//! Dynamic micro-op traces as first-class, serializable artifacts.
//!
//! The paper's hardware side "executes traces of IA32 binaries" (Sec. 5.1);
//! until this crate, every experiment regenerated its synthetic stream
//! in-process and nothing could be persisted, diffed, imported or replayed.
//! This crate adds a **versioned, self-describing on-disk format** with two
//! interchangeable codecs and the plumbing around it:
//!
//! * **format** — a trace file carries the static [`Program`] (regions,
//!   instructions, steering hints) once, followed by the dynamic stream as
//!   pure dynamic facts (`seq`, instruction id, memory address, branch
//!   outcome). Static metadata is *never* duplicated per record: it is
//!   re-derived from the embedded program on read through
//!   [`StaticInst::instantiate`](virtclust_uarch::StaticInst::instantiate),
//!   the single source of truth — which is precisely what lets one stored
//!   stream be replayed under every steering scheme (clear the hints, run a
//!   different compiler pass, stream the same dynamic facts);
//! * **codecs** — [`Codec::Text`] is line-oriented, human-readable and
//!   diffable (author a trace in an editor, review one in a PR);
//!   [`Codec::Binary`] is a varint-packed form roughly 4× smaller for
//!   multi-million-uop captures. Readers auto-detect the codec;
//! * **streaming** — [`TraceWriter`] appends record by record and
//!   [`TraceReader`] materialises one [`DynUop`](virtclust_uarch::DynUop)
//!   at a time (and implements
//!   [`TraceSource`](virtclust_uarch::TraceSource), so it plugs straight
//!   into the simulator); traces never need to be memory-resident, and a
//!   reader [`rewinds`](TraceReader::rewind) to the first record without
//!   re-parsing, so one parsed trace feeds many simulations;
//! * **capture** — [`capture::record_stream`] /
//!   [`capture::capture_to_file`] record any live `TraceSource` (such as
//!   the synthetic workload expander);
//! * **import** — [`import::parse_kernel`] reads a one-uop-per-line textual
//!   kernel, so externally authored programs enter the pipeline without
//!   touching the generator.
//!
//! ```
//! use virtclust_trace::{capture, Codec, TraceReader, TraceWriter};
//! use virtclust_uarch::{ArchReg, RegionBuilder, Program, VecTrace};
//!
//! // A toy program and its dynamic stream.
//! let r = ArchReg::int;
//! let mut program = Program::new("toy");
//! program.add_region(
//!     RegionBuilder::new(0, "loop").alu(r(1), &[r(1), r(2)]).branch(r(1)).build(),
//! );
//! let mut uops = Vec::new();
//! virtclust_uarch::trace::expand_region(
//!     &program.regions[0], 0, &mut uops, |_, _| 0, |s, _| s % 4 != 3,
//! );
//!
//! // Write it as text, read it back, get the identical stream.
//! let mut buf = Vec::new();
//! let mut w = TraceWriter::new(&mut buf, &program, Codec::Text, None).unwrap();
//! for u in &uops { w.write_uop(u).unwrap(); }
//! w.finish().unwrap();
//! let mut reader = TraceReader::new(std::io::Cursor::new(&buf)).unwrap();
//! assert_eq!(reader.read_all().unwrap(), uops);
//! // Seekable sources rewind without re-parsing the embedded program.
//! reader.rewind().unwrap();
//! assert_eq!(reader.read_all().unwrap(), uops);
//!
//! // Capture helpers record any live TraceSource with a budget.
//! let mut live = VecTrace::new(uops.clone());
//! let mut w = TraceWriter::new(Vec::new(), &program, Codec::Binary, None).unwrap();
//! assert_eq!(capture::record_stream(&mut live, 1, &mut w).unwrap(), 1);
//! ```
//!
//! The replay pipeline that feeds stored traces through the experiment
//! driver (record a SPEC-like point once, replay it under OB / RHOP / OP /
//! VC) lives in `virtclust-core::replay`, on top of this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod capture;
pub mod error;
pub mod frame;
pub mod import;
pub mod reader;
pub mod record;
pub mod text;
pub mod writer;

pub use capture::{capture_to_file, record_stream};
pub use error::{Result, TraceError};
pub use import::{import_kernel_file, parse_kernel};
pub use reader::TraceReader;
pub use record::{default_branch_pc, RawRecord};
pub use writer::TraceWriter;

/// Version of the on-disk format this build reads and writes. Bumped on any
/// incompatible grammar or layout change; readers reject other versions
/// with [`TraceError::Unsupported`].
pub const FORMAT_VERSION: u32 = 1;

/// The two interchangeable encodings of the same format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Codec {
    /// Line-oriented human-readable form — authorable, diffable, greppable.
    #[default]
    Text,
    /// Varint-packed compact form for large captures (~4× smaller).
    Binary,
}

impl Codec {
    /// Conventional file extension (`vct` / `vctb`).
    pub fn extension(self) -> &'static str {
        match self {
            Codec::Text => "vct",
            Codec::Binary => "vctb",
        }
    }
}

impl std::fmt::Display for Codec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Codec::Text => write!(f, "text"),
            Codec::Binary => write!(f, "binary"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_metadata() {
        assert_eq!(Codec::Text.extension(), "vct");
        assert_eq!(Codec::Binary.extension(), "vctb");
        assert_eq!(Codec::Text.to_string(), "text");
        assert_eq!(Codec::default(), Codec::Text);
    }
}
