//! The codec-independent record model.
//!
//! On disk a trace stores only the *dynamic facts* of each micro-op — the
//! sequence number, which static instruction it instantiates, the effective
//! memory address and the branch outcome. The static metadata (`op`,
//! `srcs`, `dst`, `hint`) lives once, in the embedded [`Program`], and is
//! re-attached on read through [`StaticInst::instantiate`] — the single
//! source of truth for those fields. This is what lets a stored stream be
//! replayed under a *different* compiler annotation: clear the embedded
//! program's hints, run another pass, and every materialised micro-op picks
//! up the new ones.

use virtclust_uarch::{BranchInfo, DynUop, InstId, Program, StaticInst};

use crate::error::{Result, TraceError};

/// The PC surrogate both trace producers in the workspace synthesise for a
/// branch at `id` (`(region << 32) | index`). Records whose stored PC equals
/// this default omit it on disk.
#[inline]
pub fn default_branch_pc(id: InstId) -> u64 {
    (u64::from(id.region) << 32) | u64::from(id.index)
}

/// One dynamic record as stored on disk, before materialisation against a
/// program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawRecord {
    /// Sequence number (strictly increasing within a trace).
    pub seq: u64,
    /// Static instruction: region index.
    pub region: u32,
    /// Static instruction: index within the region.
    pub index: u32,
    /// Effective address, for memory micro-ops.
    pub mem_addr: Option<u64>,
    /// Branch outcome, for branch micro-ops.
    pub taken: Option<bool>,
    /// Branch PC surrogate when it differs from [`default_branch_pc`].
    pub pc: Option<u64>,
}

impl RawRecord {
    /// Strip a [`DynUop`] down to its dynamic facts.
    pub fn from_uop(u: &DynUop) -> Self {
        let default_pc = default_branch_pc(u.inst);
        RawRecord {
            seq: u.seq,
            region: u.inst.region,
            index: u.inst.index,
            mem_addr: u.mem_addr,
            taken: u.branch.map(|b| b.taken),
            pc: u.branch.and_then(|b| (b.pc != default_pc).then_some(b.pc)),
        }
    }

    /// The static-instruction id this record references.
    #[inline]
    pub fn inst_id(&self) -> InstId {
        InstId::new(self.region, self.index)
    }

    /// Re-attach static metadata from `program`, validating that the record
    /// is well-formed for the instruction's op class.
    pub fn materialize(&self, program: &Program) -> Result<DynUop> {
        let inst = self.lookup(program)?;
        if inst.op.is_mem() != self.mem_addr.is_some() {
            return Err(TraceError::Inconsistent(format!(
                "record seq {}: op `{}` at {} {} a memory address",
                self.seq,
                inst.op,
                self.inst_id(),
                if inst.op.is_mem() {
                    "requires"
                } else {
                    "must not carry"
                },
            )));
        }
        if inst.op.is_branch() != self.taken.is_some() {
            return Err(TraceError::Inconsistent(format!(
                "record seq {}: op `{}` at {} {} a branch outcome",
                self.seq,
                inst.op,
                self.inst_id(),
                if inst.op.is_branch() {
                    "requires"
                } else {
                    "must not carry"
                },
            )));
        }
        let branch = self.taken.map(|taken| BranchInfo {
            taken,
            pc: self.pc.unwrap_or_else(|| default_branch_pc(self.inst_id())),
        });
        Ok(inst.instantiate(self.seq, self.inst_id(), self.mem_addr, branch))
    }

    /// Look up the static instruction this record references.
    pub fn lookup<'p>(&self, program: &'p Program) -> Result<&'p StaticInst> {
        let region = program.regions.get(self.region as usize).ok_or_else(|| {
            TraceError::Inconsistent(format!(
                "record seq {}: region {} out of range ({} regions)",
                self.seq,
                self.region,
                program.regions.len()
            ))
        })?;
        region.insts.get(self.index as usize).ok_or_else(|| {
            TraceError::Inconsistent(format!(
                "record seq {}: instruction {} out of range in region {} ({} insts)",
                self.seq,
                self.index,
                self.region,
                region.len()
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtclust_uarch::{ArchReg, RegionBuilder};

    fn demo_program() -> Program {
        let r = ArchReg::int;
        let mut p = Program::new("demo");
        p.add_region(
            RegionBuilder::new(0, "body")
                .alu(r(1), &[r(1), r(2)])
                .load(r(3), r(1))
                .branch(r(3))
                .build(),
        );
        p
    }

    #[test]
    fn raw_record_roundtrips_through_materialize() {
        let p = demo_program();
        let mut uops = Vec::new();
        virtclust_uarch::trace::expand_region(
            &p.regions[0],
            0,
            &mut uops,
            |s, _| 0x100 + s * 8,
            |_, _| true,
        );
        for u in &uops {
            let raw = RawRecord::from_uop(u);
            assert_eq!(&raw.materialize(&p).unwrap(), u);
        }
    }

    #[test]
    fn default_pc_is_omitted_and_custom_pc_is_kept() {
        let p = demo_program();
        let id = InstId::new(0, 2);
        let inst = p.inst(id);
        let default = inst.instantiate(
            5,
            id,
            None,
            Some(BranchInfo {
                taken: true,
                pc: default_branch_pc(id),
            }),
        );
        assert_eq!(RawRecord::from_uop(&default).pc, None);
        let custom = inst.instantiate(
            5,
            id,
            None,
            Some(BranchInfo {
                taken: true,
                pc: 0xdead,
            }),
        );
        let raw = RawRecord::from_uop(&custom);
        assert_eq!(raw.pc, Some(0xdead));
        assert_eq!(raw.materialize(&p).unwrap().branch.unwrap().pc, 0xdead);
    }

    #[test]
    fn materialize_rejects_malformed_records() {
        let p = demo_program();
        // Memory op without an address.
        let bad = RawRecord {
            seq: 0,
            region: 0,
            index: 1,
            mem_addr: None,
            taken: None,
            pc: None,
        };
        assert!(bad.materialize(&p).is_err());
        // ALU op with a branch outcome.
        let bad = RawRecord {
            seq: 0,
            region: 0,
            index: 0,
            mem_addr: None,
            taken: Some(true),
            pc: None,
        };
        assert!(bad.materialize(&p).is_err());
        // Out-of-range instruction.
        let bad = RawRecord {
            seq: 0,
            region: 7,
            index: 0,
            mem_addr: None,
            taken: None,
            pc: None,
        };
        assert!(bad.materialize(&p).is_err());
    }
}
