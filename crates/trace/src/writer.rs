//! Streaming trace writer.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use virtclust_uarch::{DynUop, Program};

use crate::error::{Result, TraceError};
use crate::record::RawRecord;
use crate::{binary, text, Codec};

/// Writes a trace incrementally: header and program up front, then one
/// record per [`TraceWriter::write_uop`], then a footer from
/// [`TraceWriter::finish`]. Never buffers the stream, so multi-million-uop
/// traces cost constant memory.
///
/// Dropping a writer without calling `finish` leaves the file without its
/// end marker; readers will reject it as corrupt — which is the right
/// outcome for a half-written trace.
pub struct TraceWriter<W: Write> {
    w: W,
    codec: Codec,
    program: Program,
    count: u64,
    last_seq: Option<u64>,
}

impl TraceWriter<BufWriter<File>> {
    /// Create a trace file at `path` for a stream over `program`.
    ///
    /// `declared_len` is an optional up-front record count, stored in the
    /// header as the reader's [`len_hint`](virtclust_uarch::TraceSource);
    /// the footer written by [`TraceWriter::finish`] is authoritative.
    pub fn create(
        path: impl AsRef<Path>,
        program: &Program,
        codec: Codec,
        declared_len: Option<u64>,
    ) -> Result<Self> {
        let file = File::create(path)?;
        Self::new(BufWriter::new(file), program, codec, declared_len)
    }
}

impl<W: Write> TraceWriter<W> {
    /// Start a trace on an arbitrary byte sink (header and program section
    /// are written immediately).
    pub fn new(
        mut w: W,
        program: &Program,
        codec: Codec,
        declared_len: Option<u64>,
    ) -> Result<Self> {
        match codec {
            Codec::Text => {
                writeln!(w, "{}", text::header_line())?;
                text::write_program_section(&mut w, program)?;
                if let Some(n) = declared_len {
                    writeln!(w, "count {n}")?;
                }
                writeln!(w, "dyn")?;
            }
            Codec::Binary => {
                let section = text::program_section_to_string(program)?;
                binary::write_header(&mut w, &section, declared_len)?;
            }
        }
        Ok(TraceWriter {
            w,
            codec,
            program: program.clone(),
            count: 0,
            last_seq: None,
        })
    }

    /// The codec this writer emits.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Records written so far.
    pub fn written(&self) -> u64 {
        self.count
    }

    /// Append one micro-op.
    ///
    /// Validates that the op really instantiates the writer's program
    /// (static fields match — see
    /// [`DynUop::consistent_with`](virtclust_uarch::DynUop::consistent_with))
    /// and that sequence numbers are strictly increasing, so a trace file
    /// can never silently disagree with its embedded program.
    pub fn write_uop(&mut self, u: &DynUop) -> Result<()> {
        let rec = RawRecord::from_uop(u);
        let inst = rec.lookup(&self.program)?;
        if !u.consistent_with(inst) {
            return Err(TraceError::Inconsistent(format!(
                "micro-op seq {} does not instantiate {} of the embedded program \
                 (static fields differ)",
                u.seq, u.inst
            )));
        }
        if let Some(last) = self.last_seq {
            if u.seq <= last {
                return Err(TraceError::Inconsistent(format!(
                    "sequence numbers must increase strictly: {} after {last}",
                    u.seq
                )));
            }
        }
        self.last_seq = Some(u.seq);
        match self.codec {
            Codec::Text => writeln!(self.w, "{}", text::format_record(&rec))?,
            Codec::Binary => binary::write_record(&mut self.w, &rec)?,
        }
        self.count += 1;
        Ok(())
    }

    /// Write the footer, flush, and return the record count.
    pub fn finish(mut self) -> Result<u64> {
        match self.codec {
            Codec::Text => writeln!(self.w, "end {}", self.count)?,
            Codec::Binary => binary::write_footer(&mut self.w, self.count)?,
        }
        self.w.flush()?;
        Ok(self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtclust_uarch::{ArchReg, InstId, RegionBuilder, SteerHint};

    fn demo_program() -> Program {
        let r = ArchReg::int;
        let mut p = Program::new("demo");
        p.add_region(
            RegionBuilder::new(0, "body")
                .alu(r(1), &[r(1), r(2)])
                .load(r(3), r(1))
                .build(),
        );
        p
    }

    fn uops(p: &Program) -> Vec<DynUop> {
        let mut out = Vec::new();
        virtclust_uarch::trace::expand_region(
            &p.regions[0],
            0,
            &mut out,
            |s, _| s * 8,
            |_, _| true,
        );
        out
    }

    #[test]
    fn writer_counts_and_finishes() {
        let p = demo_program();
        let mut w = TraceWriter::new(Vec::new(), &p, Codec::Text, None).unwrap();
        for u in &uops(&p) {
            w.write_uop(u).unwrap();
        }
        assert_eq!(w.written(), 2);
        assert_eq!(w.finish().unwrap(), 2);
    }

    #[test]
    fn writer_rejects_foreign_uops() {
        let p = demo_program();
        let mut annotated = p.clone();
        annotated.inst_mut(InstId::new(0, 0)).hint = SteerHint::Static { cluster: 1 };
        let mut w = TraceWriter::new(Vec::new(), &p, Codec::Binary, None).unwrap();
        // A uop instantiated from the *annotated* program is inconsistent
        // with the embedded (unannotated) one.
        let foreign = uops(&annotated)[0];
        assert!(matches!(
            w.write_uop(&foreign),
            Err(TraceError::Inconsistent(_))
        ));
    }

    #[test]
    fn writer_rejects_non_monotonic_seq() {
        let p = demo_program();
        let us = uops(&p);
        let mut w = TraceWriter::new(Vec::new(), &p, Codec::Text, None).unwrap();
        w.write_uop(&us[1]).unwrap();
        assert!(matches!(
            w.write_uop(&us[0]),
            Err(TraceError::Inconsistent(_))
        ));
    }
}
