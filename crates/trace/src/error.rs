//! Error type shared by every codec, the importer and the replay plumbing.

use std::fmt;
use std::io;

/// Anything that can go wrong while reading, writing or importing a trace.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A malformed line in the text codec or the kernel importer.
    Parse {
        /// 1-based line number within the input.
        line: u64,
        /// What was wrong with it.
        msg: String,
    },
    /// Structurally invalid binary data (bad magic, truncated record,
    /// varint overflow, record count mismatch…).
    Corrupt(String),
    /// A format version or codec this build does not understand.
    Unsupported(String),
    /// A semantic mismatch: a micro-op that does not belong to the writer's
    /// program, a non-monotonic sequence number, or a replacement program
    /// whose shape differs from the embedded one.
    Inconsistent(String),
}

impl TraceError {
    /// Shorthand for a text-codec parse error.
    pub fn parse(line: u64, msg: impl Into<String>) -> Self {
        TraceError::Parse {
            line,
            msg: msg.into(),
        }
    }

    /// Whether retrying the same operation could plausibly succeed.
    ///
    /// Transient: `Io` failures that name an interrupted/timed-out
    /// syscall (`Interrupted`, `WouldBlock`, `TimedOut`) — the categories
    /// the batch engine's retry policy re-attempts with rebuilt worker
    /// state. Everything else — malformed data (`Parse`, `Corrupt`),
    /// version mismatches (`Unsupported`), semantic mismatches
    /// (`Inconsistent`), and I/O errors like `NotFound` or
    /// `PermissionDenied` — is permanent: the same inputs will fail the
    /// same way.
    pub fn is_transient(&self) -> bool {
        match self {
            TraceError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            _ => false,
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse { line, msg } => write!(f, "trace parse error (line {line}): {msg}"),
            TraceError::Corrupt(msg) => write!(f, "corrupt trace: {msg}"),
            TraceError::Unsupported(msg) => write!(f, "unsupported trace: {msg}"),
            TraceError::Inconsistent(msg) => write!(f, "inconsistent trace: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TraceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_line_number() {
        let e = TraceError::parse(7, "bad register");
        assert!(e.to_string().contains("line 7"), "{e}");
        assert!(e.to_string().contains("bad register"), "{e}");
    }

    #[test]
    fn io_errors_convert() {
        let e: TraceError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, TraceError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn io_source_exposes_the_underlying_kind() {
        let e: TraceError = io::Error::new(io::ErrorKind::Interrupted, "EINTR").into();
        let src = std::error::Error::source(&e).expect("Io carries a source");
        let io_src = src
            .downcast_ref::<io::Error>()
            .expect("source is io::Error");
        assert_eq!(io_src.kind(), io::ErrorKind::Interrupted);
        // Non-Io variants have no source to chase.
        assert!(std::error::Error::source(&TraceError::Corrupt("x".into())).is_none());
    }

    #[test]
    fn transience_follows_the_io_kind() {
        for kind in [
            io::ErrorKind::Interrupted,
            io::ErrorKind::WouldBlock,
            io::ErrorKind::TimedOut,
        ] {
            let e: TraceError = io::Error::new(kind, "flaky").into();
            assert!(e.is_transient(), "{kind:?} is retryable");
        }
        for kind in [io::ErrorKind::NotFound, io::ErrorKind::PermissionDenied] {
            let e: TraceError = io::Error::new(kind, "hard").into();
            assert!(!e.is_transient(), "{kind:?} is permanent");
        }
    }

    #[test]
    fn data_errors_are_never_transient() {
        assert!(!TraceError::parse(3, "junk").is_transient());
        assert!(!TraceError::Corrupt("bad magic".into()).is_transient());
        assert!(!TraceError::Unsupported("v99".into()).is_transient());
        assert!(!TraceError::Inconsistent("seq".into()).is_transient());
    }
}
