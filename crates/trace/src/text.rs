//! The human-readable text codec (and the grammar the kernel importer
//! shares).
//!
//! A text trace is line-oriented and diffable:
//!
//! ```text
//! virtclust-trace 1 text
//! program gzip-1
//! region 0 body
//! i alu r1 = r1 r2
//! i ld r3 = r1 @vc 1 leader
//! i st r1 r3
//! i br r3 @cluster 1
//! count 4
//! dyn
//! u 0 0 0
//! u 1 0 1 m 1000
//! u 2 0 2 m 1008
//! u 3 0 3 b t
//! end 4
//! ```
//!
//! * the **program section** (`program` / `region` / `i` lines) carries the
//!   static side once — instruction lines are `i <mnemonic> [<dst> =]
//!   <src>… [@cluster <n> | @vc <n> [leader]]`;
//! * the **dynamic section** after `dyn` is one micro-op per line: `u <seq>
//!   <region> <index> [m <hex-addr>] [b t|n [pc <hex>]]` — only dynamic
//!   facts, the static metadata is re-derived from the program on read;
//! * `end <n>` closes the stream with the authoritative record count.
//!
//! Lines starting with `#` and blank lines are ignored everywhere, so both
//! traces and imported kernels can be annotated freely.

use std::io::Write;

use virtclust_uarch::{
    ArchReg, OpClass, Program, Region, SrcList, StaticInst, SteerHint, NUM_FLT_ARCH_REGS,
    NUM_INT_ARCH_REGS,
};

use crate::error::{Result, TraceError};
use crate::record::RawRecord;
use crate::FORMAT_VERSION;

/// First token of a text trace's header line (doubles as the magic the
/// reader sniffs to tell the codecs apart).
pub const TEXT_MAGIC: &str = "virtclust-trace";

/// Render the header line (`virtclust-trace 1 text`).
pub fn header_line() -> String {
    format!("{TEXT_MAGIC} {FORMAT_VERSION} text")
}

/// Parse the header line, returning the format version.
pub fn parse_header(line_no: u64, line: &str) -> Result<u32> {
    let mut toks = line.split_whitespace();
    if toks.next() != Some(TEXT_MAGIC) {
        return Err(TraceError::parse(
            line_no,
            format!("expected `{TEXT_MAGIC}` header"),
        ));
    }
    let version: u32 = toks
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| TraceError::parse(line_no, "missing format version"))?;
    if version != FORMAT_VERSION {
        return Err(TraceError::Unsupported(format!(
            "trace format version {version} (this build reads version {FORMAT_VERSION})"
        )));
    }
    match toks.next() {
        Some("text") | None => Ok(version),
        Some(other) => Err(TraceError::parse(
            line_no,
            format!("unknown codec tag `{other}`"),
        )),
    }
}

// ---------------------------------------------------------------------------
// Program section: serialisation.
// ---------------------------------------------------------------------------

fn check_name(kind: &str, name: &str) -> Result<()> {
    if name.contains(['\n', '\r']) {
        return Err(TraceError::Inconsistent(format!(
            "{kind} name {name:?} contains a line break"
        )));
    }
    Ok(())
}

fn format_hint(hint: SteerHint) -> String {
    match hint {
        SteerHint::None => String::new(),
        SteerHint::Static { cluster } => format!(" @cluster {cluster}"),
        SteerHint::Vc { vc, leader } => {
            format!(" @vc {vc}{}", if leader { " leader" } else { "" })
        }
    }
}

fn format_inst(inst: &StaticInst) -> String {
    let mut s = format!("i {}", inst.op.mnemonic());
    if let Some(d) = inst.dst {
        s.push_str(&format!(" {d} ="));
    }
    for r in inst.srcs.iter() {
        s.push_str(&format!(" {r}"));
    }
    s.push_str(&format_hint(inst.hint));
    s
}

/// Write the program section (`program` line, then `region`/`i` lines).
pub fn write_program_section<W: Write>(w: &mut W, program: &Program) -> Result<()> {
    check_name("program", &program.name)?;
    writeln!(w, "program {}", program.name)?;
    for region in &program.regions {
        check_name("region", &region.name)?;
        if region.insts.iter().any(|i| i.op == OpClass::Copy) {
            return Err(TraceError::Inconsistent(format!(
                "region {} contains a copy micro-op; copies are hardware-generated \
                 and never appear in programs or traces",
                region.id
            )));
        }
        writeln!(w, "region {} {}", region.id, region.name)?;
        for inst in &region.insts {
            writeln!(w, "{}", format_inst(inst))?;
        }
    }
    Ok(())
}

/// The program section as a string (embedded verbatim by the binary codec).
pub fn program_section_to_string(program: &Program) -> Result<String> {
    let mut buf = Vec::new();
    write_program_section(&mut buf, program)?;
    Ok(String::from_utf8(buf).expect("program section is UTF-8"))
}

// ---------------------------------------------------------------------------
// Program section: parsing (shared with the kernel importer).
// ---------------------------------------------------------------------------

fn parse_reg(line_no: u64, tok: &str) -> Result<ArchReg> {
    let err = || TraceError::parse(line_no, format!("bad register `{tok}`"));
    let (class, idx) = tok.split_at(1.min(tok.len()));
    let idx: u8 = idx.parse().map_err(|_| err())?;
    match class {
        "r" if (idx as usize) < NUM_INT_ARCH_REGS => Ok(ArchReg::int(idx)),
        "f" if (idx as usize) < NUM_FLT_ARCH_REGS => Ok(ArchReg::flt(idx)),
        _ => Err(err()),
    }
}

fn parse_mnemonic(line_no: u64, tok: &str) -> Result<OpClass> {
    OpClass::PROGRAM_CLASSES
        .into_iter()
        .find(|op| op.mnemonic() == tok)
        .ok_or_else(|| TraceError::parse(line_no, format!("unknown op mnemonic `{tok}`")))
}

/// Parse one `i …` instruction line (without the leading `i` token).
fn parse_inst(line_no: u64, toks: &[&str]) -> Result<StaticInst> {
    let (&mnem, mut rest) = toks
        .split_first()
        .ok_or_else(|| TraceError::parse(line_no, "instruction line without a mnemonic"))?;
    let op = parse_mnemonic(line_no, mnem)?;

    // Optional steering hint tail, introduced by an `@…` token.
    let mut hint = SteerHint::None;
    if let Some(at) = rest.iter().position(|t| t.starts_with('@')) {
        let hint_toks = &rest[at..];
        rest = &rest[..at];
        let arg = |i: usize| -> Result<u8> {
            hint_toks
                .get(i)
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| TraceError::parse(line_no, "hint missing its numeric argument"))
        };
        hint = match hint_toks[0] {
            "@cluster" if hint_toks.len() == 2 => SteerHint::Static { cluster: arg(1)? },
            "@vc" if hint_toks.len() == 2 => SteerHint::Vc {
                vc: arg(1)?,
                leader: false,
            },
            "@vc" if hint_toks.len() == 3 && hint_toks[2] == "leader" => SteerHint::Vc {
                vc: arg(1)?,
                leader: true,
            },
            other => {
                return Err(TraceError::parse(
                    line_no,
                    format!("bad steering hint starting at `{other}`"),
                ))
            }
        };
    }

    // Optional destination, marked by `<dst> =`.
    let mut dst = None;
    if rest.len() >= 2 && rest[1] == "=" {
        dst = Some(parse_reg(line_no, rest[0])?);
        rest = &rest[2..];
    }

    if rest.len() > virtclust_uarch::inst::MAX_SRCS {
        return Err(TraceError::parse(
            line_no,
            format!("too many sources ({}, max 3)", rest.len()),
        ));
    }
    let mut srcs = SrcList::new();
    for tok in rest {
        srcs.push(parse_reg(line_no, tok)?);
    }

    Ok(StaticInst {
        op,
        srcs,
        dst,
        hint,
    })
}

/// Parse a program section from `(line_no, line)` pairs.
///
/// In strict mode (the trace reader) a `program` line must come first and
/// every `region` line must carry an explicit id equal to its position. In
/// lenient mode (the kernel importer) both are optional: a nameless program
/// is called `imported`, instructions before any `region` line open an
/// implicit region `kernel`, and `region <name>` lines get sequential ids.
pub fn parse_program_section<'a, I>(lines: I, lenient: bool) -> Result<Program>
where
    I: IntoIterator<Item = (u64, &'a str)>,
{
    let mut program: Option<Program> = None;
    let mut current: Option<Region> = None;
    let mut saw_program_line = false;
    for (line_no, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks[0] {
            "program" => {
                if saw_program_line || program.is_some() {
                    return Err(TraceError::parse(line_no, "duplicate `program` line"));
                }
                saw_program_line = true;
                let name = line["program".len()..].trim();
                program = Some(Program::new(name));
            }
            "region" => {
                if !lenient && !saw_program_line {
                    return Err(TraceError::parse(line_no, "`region` before `program` line"));
                }
                let program = program.get_or_insert_with(|| Program::new("imported"));
                if let Some(done) = current.take() {
                    program.add_region(done);
                }
                let expected_id = program.regions.len() as u32;
                // `region <id> <name…>` when the second token is numeric,
                // otherwise `region <name…>` (lenient only). A *lone*
                // numeric token in lenient mode is a name (`region 7`
                // names a region "7"); only the strict codec — whose
                // writer always emits an id — reads it as one.
                let (id, name) = match toks.get(1).and_then(|t| t.parse::<u32>().ok()) {
                    Some(_) if lenient && toks.len() == 2 => (None, line["region".len()..].trim()),
                    Some(id) => {
                        let tail = line["region".len()..].trim();
                        let name = tail[toks[1].len()..].trim();
                        (Some(id), name)
                    }
                    None => (None, line["region".len()..].trim()),
                };
                match id {
                    Some(id) if id != expected_id => {
                        return Err(TraceError::parse(
                            line_no,
                            format!("region id {id} out of order (expected {expected_id})"),
                        ));
                    }
                    None if !lenient => {
                        return Err(TraceError::parse(line_no, "region line without an id"));
                    }
                    _ => {}
                }
                current = Some(Region::new(expected_id, name));
            }
            "i" => {
                let inst = parse_inst(line_no, &toks[1..])?;
                match &mut current {
                    Some(region) => {
                        region.push(inst);
                    }
                    None if lenient => {
                        if program.is_none() {
                            program = Some(Program::new("imported"));
                        }
                        let mut region = Region::new(0, "kernel");
                        region.push(inst);
                        current = Some(region);
                    }
                    None => {
                        return Err(TraceError::parse(
                            line_no,
                            "instruction outside any `region`",
                        ));
                    }
                }
            }
            other => {
                return Err(TraceError::parse(
                    line_no,
                    format!("unexpected token `{other}` in program section"),
                ));
            }
        }
    }
    let mut program =
        program.ok_or_else(|| TraceError::parse(0, "input contains no program at all"))?;
    if let Some(done) = current.take() {
        program.add_region(done);
    }
    if program.regions.is_empty() || program.static_len() == 0 {
        return Err(TraceError::parse(0, "program has no instructions"));
    }
    Ok(program)
}

// ---------------------------------------------------------------------------
// Dynamic section.
// ---------------------------------------------------------------------------

/// Render one dynamic record as a `u …` line.
pub fn format_record(rec: &RawRecord) -> String {
    let mut s = format!("u {} {} {}", rec.seq, rec.region, rec.index);
    if let Some(addr) = rec.mem_addr {
        s.push_str(&format!(" m {addr:x}"));
    }
    if let Some(taken) = rec.taken {
        s.push_str(if taken { " b t" } else { " b n" });
        if let Some(pc) = rec.pc {
            s.push_str(&format!(" pc {pc:x}"));
        }
    }
    s
}

/// One parsed line of the dynamic section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TextItem {
    /// A `u …` record line.
    Uop(RawRecord),
    /// The `end <count>` footer.
    End(u64),
}

/// Parse a dynamic-section line (`u …` or `end <n>`); `Ok(None)` for blank
/// and comment lines.
pub fn parse_dyn_line(line_no: u64, raw: &str) -> Result<Option<TextItem>> {
    let line = raw.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let toks: Vec<&str> = line.split_whitespace().collect();
    let int = |tok: &str, what: &str| -> Result<u64> {
        tok.parse()
            .map_err(|_| TraceError::parse(line_no, format!("bad {what} `{tok}`")))
    };
    let hex = |tok: &str, what: &str| -> Result<u64> {
        u64::from_str_radix(tok, 16)
            .map_err(|_| TraceError::parse(line_no, format!("bad {what} `{tok}`")))
    };
    match toks[0] {
        "end" => {
            let n = toks
                .get(1)
                .ok_or_else(|| TraceError::parse(line_no, "`end` without a count"))?;
            Ok(Some(TextItem::End(int(n, "record count")?)))
        }
        "u" => {
            if toks.len() < 4 {
                return Err(TraceError::parse(
                    line_no,
                    "record needs seq, region, index",
                ));
            }
            let int32 = |tok: &str, what: &str| -> Result<u32> {
                int(tok, what).and_then(|v| {
                    u32::try_from(v).map_err(|_| {
                        TraceError::parse(line_no, format!("{what} `{tok}` overflows u32"))
                    })
                })
            };
            let mut rec = RawRecord {
                seq: int(toks[1], "sequence number")?,
                region: int32(toks[2], "region index")?,
                index: int32(toks[3], "instruction index")?,
                mem_addr: None,
                taken: None,
                pc: None,
            };
            let mut rest = &toks[4..];
            while let Some((&key, tail)) = rest.split_first() {
                match key {
                    "m" => {
                        let (&v, tail) = tail
                            .split_first()
                            .ok_or_else(|| TraceError::parse(line_no, "`m` without an address"))?;
                        rec.mem_addr = Some(hex(v, "memory address")?);
                        rest = tail;
                    }
                    "b" => {
                        let (&v, tail) = tail
                            .split_first()
                            .ok_or_else(|| TraceError::parse(line_no, "`b` without an outcome"))?;
                        rec.taken = Some(match v {
                            "t" => true,
                            "n" => false,
                            other => {
                                return Err(TraceError::parse(
                                    line_no,
                                    format!("branch outcome must be t or n, got `{other}`"),
                                ))
                            }
                        });
                        rest = tail;
                    }
                    "pc" => {
                        if rec.taken.is_none() {
                            return Err(TraceError::parse(line_no, "`pc` before `b`"));
                        }
                        let (&v, tail) = tail
                            .split_first()
                            .ok_or_else(|| TraceError::parse(line_no, "`pc` without a value"))?;
                        rec.pc = Some(hex(v, "branch pc")?);
                        rest = tail;
                    }
                    other => {
                        return Err(TraceError::parse(
                            line_no,
                            format!("unknown record field `{other}`"),
                        ));
                    }
                }
            }
            Ok(Some(TextItem::Uop(rec)))
        }
        other => Err(TraceError::parse(
            line_no,
            format!("unexpected token `{other}` in dynamic section"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtclust_uarch::RegionBuilder;

    fn demo_program() -> Program {
        let r = ArchReg::int;
        let f = ArchReg::flt;
        let mut p = Program::new("demo kernel");
        p.add_region(
            RegionBuilder::new(0, "hot loop")
                .alu(r(1), &[r(1), r(2)])
                .load(r(3), r(1))
                .fadd(f(0), f(0), f(1))
                .store(r(1), r(3))
                .branch(r(3))
                .build(),
        );
        p.add_region(RegionBuilder::new(1, "tail").nop().build());
        p
    }

    fn reparse(p: &Program, lenient: bool) -> Program {
        let text = program_section_to_string(p).unwrap();
        let lines = text.lines().enumerate().map(|(i, l)| (i as u64 + 1, l));
        parse_program_section(lines, lenient).unwrap()
    }

    #[test]
    fn program_section_roundtrips() {
        let mut p = demo_program();
        // Annotate a couple of instructions so hints round-trip too.
        p.inst_mut(virtclust_uarch::InstId::new(0, 0)).hint = SteerHint::Vc {
            vc: 1,
            leader: true,
        };
        p.inst_mut(virtclust_uarch::InstId::new(0, 1)).hint = SteerHint::Vc {
            vc: 0,
            leader: false,
        };
        p.inst_mut(virtclust_uarch::InstId::new(0, 3)).hint = SteerHint::Static { cluster: 1 };
        assert_eq!(reparse(&p, false), p);
        assert_eq!(reparse(&p, true), p);
    }

    #[test]
    fn record_lines_roundtrip() {
        for rec in [
            RawRecord {
                seq: 0,
                region: 0,
                index: 0,
                mem_addr: None,
                taken: None,
                pc: None,
            },
            RawRecord {
                seq: 123_456_789,
                region: 3,
                index: 17,
                mem_addr: Some(0xdead_beef),
                taken: None,
                pc: None,
            },
            RawRecord {
                seq: 9,
                region: 0,
                index: 4,
                mem_addr: None,
                taken: Some(false),
                pc: Some(0x1234),
            },
        ] {
            let line = format_record(&rec);
            assert_eq!(
                parse_dyn_line(1, &line).unwrap(),
                Some(TextItem::Uop(rec)),
                "{line}"
            );
        }
        assert_eq!(
            parse_dyn_line(1, "end 42").unwrap(),
            Some(TextItem::End(42))
        );
        assert_eq!(parse_dyn_line(1, "# comment").unwrap(), None);
        assert_eq!(parse_dyn_line(1, "   ").unwrap(), None);
    }

    #[test]
    fn malformed_lines_error_with_line_numbers() {
        for bad in [
            "u 1 0",            // missing index
            "u 1 0 0 m",        // m without address
            "u 1 0 0 b x",      // bad outcome
            "u 1 0 0 pc 12",    // pc before b
            "u 1 0 0 zz 3",     // unknown field
            "flub",             // unknown keyword
            "end",              // end without count
            "u x 0 0",          // bad seq
            "u 1 4294967296 0", // region overflows u32 (no silent truncation)
            "u 1 0 4294967296", // index overflows u32
        ] {
            let err = parse_dyn_line(7, bad).unwrap_err();
            assert!(
                matches!(err, TraceError::Parse { line: 7, .. }),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn header_roundtrips_and_rejects_future_versions() {
        assert_eq!(parse_header(1, &header_line()).unwrap(), FORMAT_VERSION);
        assert!(matches!(
            parse_header(1, "virtclust-trace 999 text"),
            Err(TraceError::Unsupported(_))
        ));
        assert!(parse_header(1, "something-else 1 text").is_err());
    }

    #[test]
    fn strict_mode_rejects_what_lenient_mode_accepts() {
        let kernel = "i alu r1 = r1 r2\ni br r1\n";
        let lines = || kernel.lines().enumerate().map(|(i, l)| (i as u64 + 1, l));
        let p = parse_program_section(lines(), true).unwrap();
        assert_eq!(p.name, "imported");
        assert_eq!(p.regions[0].name, "kernel");
        assert_eq!(p.static_len(), 2);
        assert!(parse_program_section(lines(), false).is_err());
    }

    #[test]
    fn region_ids_must_be_in_order() {
        let text = "program p\nregion 1 body\ni nop\n";
        let lines = text.lines().enumerate().map(|(i, l)| (i as u64 + 1, l));
        assert!(parse_program_section(lines, false).is_err());
    }

    #[test]
    fn lenient_mode_takes_a_lone_numeric_token_as_a_region_name() {
        let text = "region 7\ni nop\n";
        let lines = || text.lines().enumerate().map(|(i, l)| (i as u64 + 1, l));
        let p = parse_program_section(lines(), true).unwrap();
        assert_eq!(p.regions[0].name, "7");
        assert_eq!(p.regions[0].id, 0, "ids are auto-assigned");
        // Strict mode reads the same token as an explicit id.
        let strict = "program p\nregion 0\ni nop\n";
        let lines = strict.lines().enumerate().map(|(i, l)| (i as u64 + 1, l));
        let p = parse_program_section(lines, false).unwrap();
        assert_eq!(p.regions[0].name, "");
    }

    #[test]
    fn copy_ops_are_rejected_on_write() {
        let mut p = Program::new("p");
        let mut region = Region::new(0, "r");
        region.push(StaticInst::new(OpClass::Copy, &[], None));
        p.add_region(region);
        assert!(program_section_to_string(&p).is_err());
    }
}
