//! The compact binary codec.
//!
//! Layout (all integers LEB128 varints unless noted):
//!
//! ```text
//! magic  b"VCTB"                      4 bytes
//! version                             u8
//! program_len, program_bytes          the text codec's program section,
//!                                     embedded verbatim (one grammar for
//!                                     both codecs)
//! declared_plus_one                   0 = unknown, else count + 1
//! record*                             see below
//! 0xFF, count                         footer with authoritative count
//! ```
//!
//! Each record is a flags byte followed by varints: `seq`, `region`,
//! `index`, then `mem_addr` if [`FLAG_MEM`], then `pc` if [`FLAG_PC`] (a
//! branch whose PC surrogate differs from the derivable default). The
//! branch outcome rides in [`FLAG_TAKEN`]. A typical record is 5–8 bytes,
//! roughly 4× smaller than its text form.

use std::io::{BufRead, Read, Write};

use crate::error::{Result, TraceError};
use crate::record::RawRecord;
use crate::FORMAT_VERSION;

/// Magic bytes opening a binary trace.
pub const BINARY_MAGIC: &[u8; 4] = b"VCTB";

/// Record carries a memory address.
pub const FLAG_MEM: u8 = 1 << 0;
/// Record is a branch (outcome in [`FLAG_TAKEN`]).
pub const FLAG_BRANCH: u8 = 1 << 1;
/// Branch outcome: taken.
pub const FLAG_TAKEN: u8 = 1 << 2;
/// Branch PC surrogate differs from the default and is stored explicitly.
pub const FLAG_PC: u8 = 1 << 3;
/// Flags value marking the end-of-stream footer.
pub const END_MARKER: u8 = 0xFF;

/// Write a LEB128 unsigned varint.
pub fn write_varint<W: Write>(w: &mut W, mut v: u64) -> std::io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Read a LEB128 unsigned varint.
pub fn read_varint<R: Read>(r: &mut R) -> Result<u64> {
    let mut v = 0u64;
    for shift in (0..).step_by(7) {
        let mut byte = [0u8];
        r.read_exact(&mut byte)
            .map_err(|_| TraceError::Corrupt("truncated varint".into()))?;
        let bits = u64::from(byte[0] & 0x7f);
        // The 10th byte (shift 63) may only contribute the final bit and
        // must terminate; a continuation there, or any higher payload
        // bits, would shift data silently out of the u64 and decode a
        // wrong value.
        if shift == 63 && (bits > 1 || byte[0] & 0x80 != 0) {
            return Err(TraceError::Corrupt("varint overflows u64".into()));
        }
        v |= bits << shift;
        if byte[0] & 0x80 == 0 {
            break;
        }
    }
    Ok(v)
}

/// Write the file header (magic, version, embedded program text, declared
/// count).
pub fn write_header<W: Write>(w: &mut W, program_text: &str, declared: Option<u64>) -> Result<()> {
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&[FORMAT_VERSION as u8])?;
    write_varint(w, program_text.len() as u64)?;
    w.write_all(program_text.as_bytes())?;
    write_varint(w, declared.map_or(0, |n| n + 1))?;
    Ok(())
}

/// Read the file header; returns the embedded program text and the
/// declared count. Assumes the caller already verified the magic is next.
pub fn read_header<R: BufRead>(r: &mut R) -> Result<(String, Option<u64>)> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(TraceError::Corrupt("bad binary magic".into()));
    }
    let mut version = [0u8];
    r.read_exact(&mut version)?;
    if u32::from(version[0]) != FORMAT_VERSION {
        return Err(TraceError::Unsupported(format!(
            "binary trace version {} (this build reads version {FORMAT_VERSION})",
            version[0]
        )));
    }
    let len = read_varint(r)? as usize;
    let mut text = vec![0u8; len];
    r.read_exact(&mut text)
        .map_err(|_| TraceError::Corrupt("truncated embedded program".into()))?;
    let text = String::from_utf8(text)
        .map_err(|_| TraceError::Corrupt("embedded program is not UTF-8".into()))?;
    let declared = match read_varint(r)? {
        0 => None,
        n => Some(n - 1),
    };
    Ok((text, declared))
}

/// Encode one record.
pub fn write_record<W: Write>(w: &mut W, rec: &RawRecord) -> Result<()> {
    let mut flags = 0u8;
    if rec.mem_addr.is_some() {
        flags |= FLAG_MEM;
    }
    if let Some(taken) = rec.taken {
        flags |= FLAG_BRANCH;
        if taken {
            flags |= FLAG_TAKEN;
        }
        if rec.pc.is_some() {
            flags |= FLAG_PC;
        }
    }
    w.write_all(&[flags])?;
    write_varint(w, rec.seq)?;
    write_varint(w, u64::from(rec.region))?;
    write_varint(w, u64::from(rec.index))?;
    if let Some(addr) = rec.mem_addr {
        write_varint(w, addr)?;
    }
    // Gated on the flag, not on `rec.pc`: a malformed record with a pc but
    // no branch outcome must not emit bytes the flags byte does not
    // announce (that would desynchronize the whole stream downstream).
    if flags & FLAG_PC != 0 {
        write_varint(w, rec.pc.expect("FLAG_PC implies pc"))?;
    }
    Ok(())
}

/// Write the end-of-stream footer.
pub fn write_footer<W: Write>(w: &mut W, count: u64) -> Result<()> {
    w.write_all(&[END_MARKER])?;
    write_varint(w, count)?;
    Ok(())
}

/// One decoded item of the record stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinItem {
    /// A record.
    Uop(RawRecord),
    /// The footer, with the authoritative count.
    End(u64),
}

/// Decode the next record or the footer.
pub fn read_item<R: BufRead>(r: &mut R) -> Result<BinItem> {
    let mut flags = [0u8];
    r.read_exact(&mut flags)
        .map_err(|_| TraceError::Corrupt("trace ends without an end marker".into()))?;
    let flags = flags[0];
    if flags == END_MARKER {
        return Ok(BinItem::End(read_varint(r)?));
    }
    if flags & !(FLAG_MEM | FLAG_BRANCH | FLAG_TAKEN | FLAG_PC) != 0 {
        return Err(TraceError::Corrupt(format!(
            "unknown record flags {flags:#04x}"
        )));
    }
    if flags & (FLAG_TAKEN | FLAG_PC) != 0 && flags & FLAG_BRANCH == 0 {
        return Err(TraceError::Corrupt(format!(
            "branch flags without FLAG_BRANCH ({flags:#04x})"
        )));
    }
    let seq = read_varint(r)?;
    let region = u32::try_from(read_varint(r)?)
        .map_err(|_| TraceError::Corrupt("region index overflows u32".into()))?;
    let index = u32::try_from(read_varint(r)?)
        .map_err(|_| TraceError::Corrupt("instruction index overflows u32".into()))?;
    let mem_addr = if flags & FLAG_MEM != 0 {
        Some(read_varint(r)?)
    } else {
        None
    };
    let pc = if flags & FLAG_PC != 0 {
        Some(read_varint(r)?)
    } else {
        None
    };
    Ok(BinItem::Uop(RawRecord {
        seq,
        region,
        index,
        mem_addr,
        taken: (flags & FLAG_BRANCH != 0).then_some(flags & FLAG_TAKEN != 0),
        pc,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_roundtrip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            0xffff,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v, "{v}");
        }
        // Small values are one byte.
        let mut buf = Vec::new();
        write_varint(&mut buf, 42).unwrap();
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_varint_is_corrupt() {
        let buf = [0x80u8, 0x80];
        assert!(matches!(
            read_varint(&mut buf.as_ref()),
            Err(TraceError::Corrupt(_))
        ));
    }

    #[test]
    fn over_64_bit_varints_are_corrupt_not_truncated_values() {
        // 10th byte carrying payload bits above bit 63.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x42);
        assert!(matches!(
            read_varint(&mut buf.as_slice()),
            Err(TraceError::Corrupt(_))
        ));
        // 10th byte with a continuation bit.
        let mut buf = vec![0x80u8; 9];
        buf.extend([0x81, 0x00]);
        assert!(matches!(
            read_varint(&mut buf.as_slice()),
            Err(TraceError::Corrupt(_))
        ));
        // u64::MAX itself (10th byte = 0x01) still decodes.
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX).unwrap();
        assert_eq!(buf.len(), 10);
        assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), u64::MAX);
    }

    #[test]
    fn records_roundtrip() {
        let recs = [
            RawRecord {
                seq: 0,
                region: 0,
                index: 0,
                mem_addr: None,
                taken: None,
                pc: None,
            },
            RawRecord {
                seq: u64::MAX,
                region: u32::MAX,
                index: 12345,
                mem_addr: Some(0xdead_beef_cafe),
                taken: None,
                pc: None,
            },
            RawRecord {
                seq: 77,
                region: 1,
                index: 2,
                mem_addr: None,
                taken: Some(true),
                pc: Some(0x4000_0000_1234),
            },
            RawRecord {
                seq: 78,
                region: 1,
                index: 3,
                mem_addr: None,
                taken: Some(false),
                pc: None,
            },
        ];
        let mut buf = Vec::new();
        for rec in &recs {
            write_record(&mut buf, rec).unwrap();
        }
        write_footer(&mut buf, recs.len() as u64).unwrap();
        let mut r = buf.as_slice();
        for rec in &recs {
            assert_eq!(read_item(&mut r).unwrap(), BinItem::Uop(*rec));
        }
        assert_eq!(read_item(&mut r).unwrap(), BinItem::End(recs.len() as u64));
    }

    #[test]
    fn malformed_pc_without_branch_does_not_desync_the_stream() {
        // A record with a pc but no branch outcome must not emit bytes the
        // flags byte does not announce.
        let bad = RawRecord {
            seq: 1,
            region: 0,
            index: 0,
            mem_addr: None,
            taken: None,
            pc: Some(0xdead),
        };
        let good = RawRecord {
            seq: 2,
            region: 0,
            index: 1,
            mem_addr: None,
            taken: None,
            pc: None,
        };
        let mut buf = Vec::new();
        write_record(&mut buf, &bad).unwrap();
        write_record(&mut buf, &good).unwrap();
        let mut r = buf.as_slice();
        // The pc is dropped (it was never announced), the stream stays
        // aligned and the following record decodes intact.
        let first = read_item(&mut r).unwrap();
        assert_eq!(first, BinItem::Uop(RawRecord { pc: None, ..bad }));
        assert_eq!(read_item(&mut r).unwrap(), BinItem::Uop(good));
    }

    #[test]
    fn header_roundtrips() {
        let mut buf = Vec::new();
        write_header(&mut buf, "program p\nregion 0 r\ni nop\n", Some(9)).unwrap();
        let (text, declared) = read_header(&mut buf.as_slice()).unwrap();
        assert_eq!(text, "program p\nregion 0 r\ni nop\n");
        assert_eq!(declared, Some(9));

        let mut buf = Vec::new();
        write_header(&mut buf, "x", None).unwrap();
        let (_, declared) = read_header(&mut buf.as_slice()).unwrap();
        assert_eq!(declared, None);
    }

    #[test]
    fn bad_flags_and_missing_footer_are_corrupt() {
        // Reserved flag bit set.
        let buf = [0x40u8, 0, 0, 0];
        assert!(matches!(
            read_item(&mut buf.as_ref()),
            Err(TraceError::Corrupt(_))
        ));
        // Taken without branch.
        let buf = [FLAG_TAKEN, 0, 0, 0];
        assert!(matches!(
            read_item(&mut buf.as_ref()),
            Err(TraceError::Corrupt(_))
        ));
        // EOF instead of a record.
        let buf: [u8; 0] = [];
        assert!(matches!(
            read_item(&mut buf.as_ref()),
            Err(TraceError::Corrupt(_))
        ));
    }

    #[test]
    fn future_version_is_unsupported() {
        let mut buf = Vec::new();
        buf.extend_from_slice(BINARY_MAGIC);
        buf.push(99);
        assert!(matches!(
            read_header(&mut buf.as_slice()),
            Err(TraceError::Unsupported(_))
        ));
    }
}
