//! The textual kernel importer: externally authored programs enter the
//! pipeline without touching the synthetic generator.
//!
//! The input is the trace format's program grammar in *lenient* mode — one
//! micro-op per line, `#` comments, with every scaffold line optional:
//!
//! ```text
//! # dot product, unrolled once
//! region loop
//! i ld f0 = r1
//! i ld f1 = r2
//! i fmul f2 = f0 f1
//! i fadd f3 = f3 f2
//! i alu r1 = r1 r4
//! i alu r2 = r2 r4
//! i br r3
//! ```
//!
//! Instruction syntax: `i <mnemonic> [<dst> =] <src>… [@cluster <n> |
//! @vc <n> [leader]]` with registers `r0`–`r15` (integer) and `f0`–`f15`
//! (floating-point). Mnemonics are [`OpClass::mnemonic`] names: `alu`,
//! `mul`, `div`, `ld`, `st`, `br`, `fadd`, `fmul`, `fdiv`, `nop`.
//!
//! A `program <name>` line names the program (default `imported`);
//! `region <name>` lines split it into steering regions (instructions
//! before any region line land in an implicit region `kernel`). Steering
//! hints are normally left to the compiler passes, but the grammar accepts
//! them so hand-annotated experiments are possible.
//!
//! The resulting [`Program`] drives the normal pipeline: compiler passes
//! annotate it, `virtclust-workloads`' expander (which accepts any program)
//! instantiates dynamic behaviour, and the capture path persists the
//! result.

use std::path::Path;

use virtclust_uarch::Program;

use crate::error::Result;
use crate::text;

// Referenced by the doc comments.
#[allow(unused_imports)]
use virtclust_uarch::{OpClass, StaticInst};

/// Parse a kernel description (see the module docs for the grammar).
///
/// Copy micro-ops cannot appear: the grammar resolves mnemonics from
/// [`OpClass::PROGRAM_CLASSES`] only (copies are hardware-generated and
/// have no program-side spelling).
pub fn parse_kernel(input: &str) -> Result<Program> {
    let lines = input.lines().enumerate().map(|(i, l)| (i as u64 + 1, l));
    text::parse_program_section(lines, true)
}

/// Read and parse a kernel file.
pub fn import_kernel_file(path: impl AsRef<Path>) -> Result<Program> {
    parse_kernel(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::TraceError;
    use virtclust_uarch::{ArchReg, RegClass, SteerHint};

    const DOTPROD: &str = "\
# dot product kernel
program dotprod
region loop
i ld f0 = r1
i ld f1 = r2
i fmul f2 = f0 f1
i fadd f3 = f3 f2
i alu r1 = r1 r4
i alu r2 = r2 r4
i br r3
";

    #[test]
    fn dotprod_imports() {
        let p = parse_kernel(DOTPROD).unwrap();
        assert_eq!(p.name, "dotprod");
        assert_eq!(p.regions.len(), 1);
        assert_eq!(p.regions[0].name, "loop");
        assert_eq!(p.static_len(), 7);
        assert_eq!(p.regions[0].insts[0].op, OpClass::Load);
        assert_eq!(p.regions[0].insts[2].op, OpClass::FpMul);
        assert_eq!(
            p.regions[0].insts[2].dst.unwrap().class,
            RegClass::Flt,
            "fmul writes an FP register"
        );
        assert_eq!(p.regions[0].insts[6].op, OpClass::Branch);
    }

    #[test]
    fn bare_uop_lines_are_enough() {
        let p = parse_kernel("i alu r1 = r1 r2\ni st r1 r3\n").unwrap();
        assert_eq!(p.name, "imported");
        assert_eq!(p.regions[0].name, "kernel");
        assert_eq!(p.static_len(), 2);
        assert_eq!(p.regions[0].insts[1].dst, None, "stores have no dst");
    }

    #[test]
    fn hand_annotated_hints_are_accepted() {
        let p =
            parse_kernel("i alu r1 = r1 r2 @vc 1 leader\ni alu r2 = r2 r3 @cluster 1\n").unwrap();
        assert_eq!(
            p.regions[0].insts[0].hint,
            SteerHint::Vc {
                vc: 1,
                leader: true
            }
        );
        assert_eq!(p.regions[0].insts[1].hint, SteerHint::Static { cluster: 1 });
    }

    #[test]
    fn imported_programs_expand_and_capture() {
        // End-to-end inside the crate: import → expand_region → capture.
        let p = parse_kernel(DOTPROD).unwrap();
        let mut uops = Vec::new();
        virtclust_uarch::trace::expand_region(
            &p.regions[0],
            0,
            &mut uops,
            |s, _| 0x2000 + s * 8,
            |_, _| true,
        );
        assert_eq!(uops.len(), 7);
        let mut w = crate::TraceWriter::new(Vec::new(), &p, crate::Codec::Text, None).unwrap();
        for u in &uops {
            w.write_uop(u).unwrap();
        }
        assert_eq!(w.finish().unwrap(), 7);
        let _ = ArchReg::int(0);
    }

    #[test]
    fn garbage_is_rejected_with_line_numbers() {
        let err = parse_kernel("i alu r1 = r1 r2\ni zap r1\n").unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 2, .. }), "{err}");
        assert!(parse_kernel("").is_err(), "empty kernel");
        assert!(parse_kernel("i ld r99 = r1\n").is_err(), "bad register");
    }
}
