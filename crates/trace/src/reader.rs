//! Streaming trace reader.

use std::fs::File;
use std::io::{BufRead, BufReader, Seek, SeekFrom};
use std::path::Path;

use virtclust_uarch::{DynUop, Program, RewindError, TraceSource};

use crate::error::{Result, TraceError};
use crate::record::RawRecord;
use crate::{binary, text, Codec};

/// Reads a trace incrementally, materialising one [`DynUop`] at a time
/// against the embedded program — a multi-million-uop trace never needs to
/// be resident in memory.
///
/// The reader implements [`TraceSource`], so it plugs straight into
/// [`virtclust_sim`](https://docs.rs/)'s `simulate` in place of the live
/// workload expander. For replay under a different steering scheme, swap
/// the embedded program's annotations with [`TraceReader::set_program`]:
/// every subsequent record picks up the new hints, because on-disk records
/// carry only dynamic facts.
///
/// The byte source must be seekable ([`Seek`]) so the reader can
/// [`TraceReader::rewind`] to the first record without reopening the file
/// or re-parsing the header and embedded program — the batch engine replays
/// one parsed trace many times this way. In-memory sources wrap their bytes
/// in [`std::io::Cursor`].
pub struct TraceReader<R: BufRead> {
    r: R,
    codec: Codec,
    program: Program,
    declared: Option<u64>,
    line_no: u64,
    read: u64,
    last_seq: Option<u64>,
    done: bool,
    pending_err: Option<TraceError>,
    /// Byte offset of the first dynamic record (the rewind target) and the
    /// text line number at that offset.
    data_start: u64,
    data_line: u64,
}

impl TraceReader<BufReader<File>> {
    /// Open a trace file, auto-detecting the codec from its first bytes.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::new(BufReader::new(File::open(path)?))
    }
}

impl<R: BufRead + Seek> TraceReader<R> {
    /// Wrap an arbitrary buffered, seekable byte source; parses the header
    /// and the embedded program eagerly, leaving the cursor at the first
    /// record.
    pub fn new(mut r: R) -> Result<Self> {
        // Codec sniffing must work with a single buffered byte (the
        // `BufRead` contract only guarantees a non-empty `fill_buf` before
        // EOF). One byte is enough: a binary trace starts with `V`
        // (`VCTB`), while a text trace can only open with the lowercase
        // `virtclust-trace` header, whitespace or a `#` comment. Anything
        // else routed to the binary path still fails cleanly on the full
        // magic check in `read_header`.
        let codec = if r.fill_buf()?.first() == Some(&binary::BINARY_MAGIC[0]) {
            Codec::Binary
        } else {
            Codec::Text
        };
        let mut line_no = 0u64;
        let (program, declared) = match codec {
            Codec::Binary => {
                let (section, declared) = binary::read_header(&mut r)?;
                let lines = section.lines().enumerate().map(|(i, l)| (i as u64 + 1, l));
                (text::parse_program_section(lines, false)?, declared)
            }
            Codec::Text => {
                // Header line (leading blanks/comments tolerated for
                // hand-edited files).
                loop {
                    let line = read_text_line(&mut r, &mut line_no)?.ok_or_else(|| {
                        TraceError::Corrupt("empty input where a trace was expected".into())
                    })?;
                    let trimmed = line.trim();
                    if trimmed.is_empty() || trimmed.starts_with('#') {
                        continue;
                    }
                    text::parse_header(line_no, trimmed)?;
                    break;
                }
                // Program section, up to the `dyn` marker.
                let mut declared = None;
                let mut section: Vec<(u64, String)> = Vec::new();
                loop {
                    let line = read_text_line(&mut r, &mut line_no)?.ok_or_else(|| {
                        TraceError::Corrupt("trace ends before its `dyn` section".into())
                    })?;
                    let trimmed = line.trim();
                    if trimmed == "dyn" {
                        break;
                    }
                    if let Some(n) = trimmed.strip_prefix("count ") {
                        declared = Some(n.trim().parse().map_err(|_| {
                            TraceError::parse(line_no, format!("bad declared count `{n}`"))
                        })?);
                        continue;
                    }
                    section.push((line_no, line));
                }
                let lines = section.iter().map(|(n, l)| (*n, l.as_str()));
                (text::parse_program_section(lines, false)?, declared)
            }
        };
        let data_start = r.stream_position()?;
        Ok(TraceReader {
            r,
            codec,
            program,
            declared,
            line_no,
            read: 0,
            last_seq: None,
            done: false,
            pending_err: None,
            data_start,
            data_line: line_no,
        })
    }

    /// Seek back to the first dynamic record, clearing end-of-stream and
    /// error state, so the same stream can be traversed again. The header
    /// and the embedded program are **not** re-parsed; a replacement
    /// program installed via [`TraceReader::set_program`] stays in effect —
    /// which is exactly what per-configuration replay over one parsed
    /// trace needs (swap hints, rewind, simulate).
    pub fn rewind(&mut self) -> Result<()> {
        self.r.seek(SeekFrom::Start(self.data_start))?;
        self.line_no = self.data_line;
        self.read = 0;
        self.last_seq = None;
        self.done = false;
        self.pending_err = None;
        Ok(())
    }
}

impl<R: BufRead> TraceReader<R> {
    /// The program embedded in the trace (as currently set).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The codec the file was written with.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// The record count declared in the header, if any.
    pub fn declared_len(&self) -> Option<u64> {
        self.declared
    }

    /// Records materialised so far.
    pub fn records_read(&self) -> u64 {
        self.read
    }

    /// True once the `end` footer has been consumed.
    pub fn finished(&self) -> bool {
        self.done
    }

    /// Replace the embedded program — the replay hook. `program` must have
    /// the same *shape* as the embedded one (same regions, same ops, same
    /// operands); only the steering hints may differ, which is exactly what
    /// re-running a compiler pass produces. Subsequent records materialise
    /// against the new program.
    pub fn set_program(&mut self, program: Program) -> Result<()> {
        let same_shape = program.regions.len() == self.program.regions.len()
            && program
                .regions
                .iter()
                .zip(&self.program.regions)
                .all(|(a, b)| {
                    a.insts.len() == b.insts.len()
                        && a.insts
                            .iter()
                            .zip(&b.insts)
                            .all(|(x, y)| x.op == y.op && x.srcs == y.srcs && x.dst == y.dst)
                });
        if !same_shape {
            return Err(TraceError::Inconsistent(
                "replacement program differs from the embedded one beyond steering hints".into(),
            ));
        }
        self.program = program;
        Ok(())
    }

    /// Produce the next micro-op, or `None` after the footer.
    pub fn next_record(&mut self) -> Result<Option<DynUop>> {
        if self.done {
            return Ok(None);
        }
        loop {
            let item: Option<RawRecord> = match self.codec {
                Codec::Binary => match binary::read_item(&mut self.r)? {
                    binary::BinItem::Uop(rec) => Some(rec),
                    binary::BinItem::End(count) => {
                        self.check_footer(count)?;
                        None
                    }
                },
                Codec::Text => {
                    let line =
                        read_text_line(&mut self.r, &mut self.line_no)?.ok_or_else(|| {
                            TraceError::Corrupt("trace ends without an `end` footer".into())
                        })?;
                    match text::parse_dyn_line(self.line_no, &line)? {
                        None => continue,
                        Some(text::TextItem::Uop(rec)) => Some(rec),
                        Some(text::TextItem::End(count)) => {
                            self.check_footer(count)?;
                            None
                        }
                    }
                }
            };
            let Some(rec) = item else {
                self.done = true;
                return Ok(None);
            };
            if let Some(last) = self.last_seq {
                if rec.seq <= last {
                    return Err(TraceError::Corrupt(format!(
                        "sequence numbers must increase strictly: {} after {last}",
                        rec.seq
                    )));
                }
            }
            self.last_seq = Some(rec.seq);
            let uop = rec.materialize(&self.program)?;
            self.read += 1;
            return Ok(Some(uop));
        }
    }

    fn check_footer(&self, count: u64) -> Result<()> {
        if count != self.read {
            return Err(TraceError::Corrupt(format!(
                "footer says {count} records but {} were read",
                self.read
            )));
        }
        Ok(())
    }

    /// Read the remaining records into memory.
    pub fn read_all(&mut self) -> Result<Vec<DynUop>> {
        let mut out = Vec::new();
        while let Some(u) = self.next_record()? {
            out.push(u);
        }
        Ok(out)
    }

    /// The first error [`TraceSource::next_uop`] swallowed, if any. Callers
    /// that drive the reader through the `TraceSource` trait (where errors
    /// cannot propagate) must check this after the run.
    pub fn take_error(&mut self) -> Option<TraceError> {
        self.pending_err.take()
    }
}

impl<R: BufRead + Seek> TraceSource for TraceReader<R> {
    fn next_uop(&mut self) -> Option<DynUop> {
        if self.pending_err.is_some() {
            return None;
        }
        match self.next_record() {
            Ok(u) => u,
            Err(e) => {
                self.pending_err = Some(e);
                None
            }
        }
    }

    fn len_hint(&self) -> Option<u64> {
        self.declared
    }

    /// Mirrors `TraceExpander::region_uops` exactly (program region length,
    /// 64 for unknown regions) so a replayed trace drives the front-end's
    /// trace-cache model identically to the live run.
    fn region_uops(&self, region: u32) -> usize {
        self.program
            .regions
            .get(region as usize)
            .map_or(64, |r| r.len())
    }

    fn source_kind(&self) -> &'static str {
        "TraceReader"
    }

    fn rewind(&mut self) -> std::result::Result<(), RewindError> {
        // A reader *is* rewindable; an error here is a failed attempt, not
        // a refusal, and it carries the trace error's own transience
        // classification (an interrupted seek is retryable, a corrupt
        // header is not).
        TraceReader::rewind(self).map_err(|e| RewindError::failed(e.to_string(), e.is_transient()))
    }
}

fn read_text_line<R: BufRead>(r: &mut R, line_no: &mut u64) -> Result<Option<String>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    *line_no += 1;
    Ok(Some(line))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;
    use virtclust_uarch::{ArchReg, InstId, RegionBuilder, SteerHint};

    fn demo_program() -> Program {
        let r = ArchReg::int;
        let mut p = Program::new("demo");
        p.add_region(
            RegionBuilder::new(0, "body")
                .alu(r(1), &[r(1), r(2)])
                .load(r(3), r(1))
                .store(r(1), r(3))
                .branch(r(3))
                .build(),
        );
        p.add_region(RegionBuilder::new(1, "cold").nop().build());
        p
    }

    fn demo_uops(p: &Program, iters: usize) -> Vec<DynUop> {
        let mut out = Vec::new();
        let mut seq = 0;
        for i in 0..iters {
            seq = virtclust_uarch::trace::expand_region(
                &p.regions[0],
                seq,
                &mut out,
                |s, _| 0x1000 + s * 8,
                |s, _| !(s + i as u64).is_multiple_of(3),
            );
        }
        out
    }

    #[test]
    fn text_and_binary_roundtrip_exactly() {
        let p = demo_program();
        let uops = demo_uops(&p, 5);
        for codec in [Codec::Text, Codec::Binary] {
            let mut buf = Vec::new();
            {
                let mut w = TraceWriter::new(&mut buf, &p, codec, Some(uops.len() as u64)).unwrap();
                for u in &uops {
                    w.write_uop(u).unwrap();
                }
                w.finish().unwrap();
            }
            let mut reader = TraceReader::new(std::io::Cursor::new(&buf)).unwrap();
            assert_eq!(reader.codec(), codec);
            assert_eq!(reader.program(), &p);
            assert_eq!(reader.declared_len(), Some(uops.len() as u64));
            let back = reader.read_all().unwrap();
            assert_eq!(back, uops, "{codec:?}");
            assert!(reader.finished());
            assert_eq!(reader.next_record().unwrap(), None, "idempotent at end");
        }
    }

    #[test]
    fn reader_is_a_trace_source_with_expander_region_semantics() {
        let p = demo_program();
        let uops = demo_uops(&p, 2);
        let mut buf = Vec::new();
        {
            let mut w = TraceWriter::new(&mut buf, &p, Codec::Binary, None).unwrap();
            for u in &uops {
                w.write_uop(u).unwrap();
            }
            w.finish().unwrap();
        }
        let mut reader = TraceReader::new(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(reader.region_uops(0), p.regions[0].len());
        assert_eq!(reader.region_uops(1), p.regions[1].len());
        assert_eq!(reader.region_uops(999), 64, "unknown region falls back");
        let mut n = 0;
        while let Some(u) = reader.next_uop() {
            assert_eq!(u, uops[n]);
            n += 1;
        }
        assert_eq!(n, uops.len());
        assert!(reader.take_error().is_none());
    }

    #[test]
    fn rewind_replays_the_stream_without_reparsing() {
        let p = demo_program();
        let uops = demo_uops(&p, 4);
        for codec in [Codec::Text, Codec::Binary] {
            let mut buf = Vec::new();
            {
                let mut w = TraceWriter::new(&mut buf, &p, codec, Some(uops.len() as u64)).unwrap();
                for u in &uops {
                    w.write_uop(u).unwrap();
                }
                w.finish().unwrap();
            }
            let mut reader = TraceReader::new(std::io::Cursor::new(&buf)).unwrap();
            // Rewind from every interesting position: untouched, mid-stream
            // and fully consumed (after the footer).
            let first = reader.read_all().unwrap();
            assert!(reader.finished());
            reader.rewind().unwrap();
            assert!(!reader.finished());
            assert_eq!(reader.records_read(), 0);
            let second = reader.read_all().unwrap();
            assert_eq!(first, second, "{codec:?}");
            reader.rewind().unwrap();
            for _ in 0..3 {
                reader.next_record().unwrap().unwrap();
            }
            reader.rewind().unwrap();
            assert_eq!(reader.read_all().unwrap(), uops, "{codec:?} mid-stream");
        }
    }

    #[test]
    fn rewind_keeps_a_replacement_program_in_effect() {
        let p = demo_program();
        let uops = demo_uops(&p, 1);
        let mut buf = Vec::new();
        {
            let mut w = TraceWriter::new(&mut buf, &p, Codec::Text, None).unwrap();
            for u in &uops {
                w.write_uop(u).unwrap();
            }
            w.finish().unwrap();
        }
        let mut reader = TraceReader::new(std::io::Cursor::new(&buf)).unwrap();
        let mut annotated = p.clone();
        annotated.inst_mut(InstId::new(0, 0)).hint = SteerHint::Static { cluster: 1 };
        reader.set_program(annotated).unwrap();
        reader.read_all().unwrap();
        reader.rewind().unwrap();
        let first = reader.next_record().unwrap().unwrap();
        assert_eq!(
            first.hint,
            SteerHint::Static { cluster: 1 },
            "the swapped program survives a rewind"
        );
    }

    #[test]
    fn rewind_clears_a_stashed_trace_source_error() {
        let p = demo_program();
        let uops = demo_uops(&p, 2);
        let mut buf = Vec::new();
        {
            let mut w = TraceWriter::new(&mut buf, &p, Codec::Binary, None).unwrap();
            for u in &uops {
                w.write_uop(u).unwrap();
            }
            w.finish().unwrap();
        }
        buf.truncate(buf.len() - 6);
        let mut reader = TraceReader::new(std::io::Cursor::new(&buf)).unwrap();
        while reader.next_uop().is_some() {}
        assert!(reader.pending_err.is_some());
        reader.rewind().unwrap();
        assert!(reader.pending_err.is_none(), "rewind clears the error");
        assert!(reader.next_uop().is_some(), "stream restarts from record 0");
    }

    #[test]
    fn set_program_swaps_hints_but_rejects_shape_changes() {
        let p = demo_program();
        let uops = demo_uops(&p, 1);
        let mut buf = Vec::new();
        {
            let mut w = TraceWriter::new(&mut buf, &p, Codec::Text, None).unwrap();
            for u in &uops {
                w.write_uop(u).unwrap();
            }
            w.finish().unwrap();
        }
        let mut reader = TraceReader::new(std::io::Cursor::new(&buf)).unwrap();
        let mut annotated = p.clone();
        annotated.inst_mut(InstId::new(0, 0)).hint = SteerHint::Vc {
            vc: 1,
            leader: true,
        };
        reader.set_program(annotated.clone()).unwrap();
        let first = reader.next_record().unwrap().unwrap();
        assert_eq!(
            first.hint,
            SteerHint::Vc {
                vc: 1,
                leader: true
            },
            "replay picks up the new annotation"
        );

        let mut reshaped = p.clone();
        reshaped.regions[0].insts.pop();
        let mut reader = TraceReader::new(std::io::Cursor::new(&buf)).unwrap();
        assert!(matches!(
            reader.set_program(reshaped),
            Err(TraceError::Inconsistent(_))
        ));
    }

    #[test]
    fn truncated_traces_are_rejected() {
        let p = demo_program();
        let uops = demo_uops(&p, 2);
        for codec in [Codec::Text, Codec::Binary] {
            let mut buf = Vec::new();
            {
                let mut w = TraceWriter::new(&mut buf, &p, codec, None).unwrap();
                for u in &uops {
                    w.write_uop(u).unwrap();
                }
                w.finish().unwrap();
            }
            // Chop off the footer (and a bit more).
            buf.truncate(buf.len() - 6);
            let mut reader = TraceReader::new(std::io::Cursor::new(&buf)).unwrap();
            let err = reader.read_all().unwrap_err();
            assert!(
                matches!(err, TraceError::Corrupt(_) | TraceError::Parse { .. }),
                "{codec:?}: {err}"
            );
            // Through the TraceSource trait the error is stashed instead.
            let mut reader = TraceReader::new(std::io::Cursor::new(&buf)).unwrap();
            while reader.next_uop().is_some() {}
            assert!(reader.take_error().is_some(), "{codec:?}");
        }
    }

    #[test]
    fn footer_count_mismatch_is_corrupt() {
        let p = demo_program();
        let text = format!(
            "{}\nprogram p\nregion 0 r\ni nop\ndyn\nu 0 0 0\nend 2\n",
            text::header_line()
        );
        let mut reader = TraceReader::new(std::io::Cursor::new(text.as_bytes())).unwrap();
        assert!(matches!(reader.read_all(), Err(TraceError::Corrupt(_))));
        let _ = p;
    }

    #[test]
    fn comments_and_blank_lines_are_tolerated_everywhere() {
        let text = format!(
            "# a hand-written trace\n\n{}\nprogram toy\n# static side\nregion 0 k\ni alu r1 = r1 r2\n\ndyn\n# dynamic side\nu 0 0 0\n\nend 1\n",
            text::header_line()
        );
        let mut reader = TraceReader::new(std::io::Cursor::new(text.as_bytes())).unwrap();
        let uops = reader.read_all().unwrap();
        assert_eq!(uops.len(), 1);
        assert_eq!(uops[0].op, virtclust_uarch::OpClass::IntAlu);
    }
}
