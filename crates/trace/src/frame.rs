//! Length-prefixed message framing over any byte stream — the wire
//! discipline of the trace format ([`crate::binary`]) lifted out for
//! reuse by stream protocols (the `virtclust-svc` evaluation service):
//! LEB128 varint framing, a version byte in the connection preamble, and
//! forward-compatible skipping of unknown message types.
//!
//! A connection opens with a caller-chosen 4-byte magic plus a version
//! byte; after that the stream is a sequence of self-delimiting frames:
//!
//! ```text
//! frame := varint(1 + body_len)  msg_type: u8  body bytes
//! ```
//!
//! The length prefix covers the type byte, so a reader that does not know
//! a `msg_type` can still consume the frame exactly and move on — the
//! same forward-compat posture as the trace format's versioned header.
//! Frames longer than [`MAX_FRAME_LEN`] are rejected as
//! [`TraceError::Corrupt`] before any allocation, so a garbled length
//! prefix cannot ask the reader for gigabytes.
//!
//! ```
//! use virtclust_trace::frame;
//!
//! let mut buf = Vec::new();
//! frame::write_preamble(&mut buf, b"DEMO", 1).unwrap();
//! frame::write_frame(&mut buf, 7, b"payload").unwrap();
//! let mut r = buf.as_slice();
//! assert_eq!(frame::read_preamble(&mut r, b"DEMO", 1).unwrap(), 1);
//! assert_eq!(frame::read_frame(&mut r).unwrap(), Some((7, b"payload".to_vec())));
//! assert_eq!(frame::read_frame(&mut r).unwrap(), None, "clean EOF");
//! ```

use std::io::{Read, Write};

use crate::binary::{read_varint, write_varint};
use crate::error::{Result, TraceError};

/// Hard upper bound on one frame's length (type byte + body). Large
/// enough for any legitimate message (job specs, per-cell stats, batch
/// summaries are all well under a megabyte); small enough that a corrupt
/// length prefix fails fast instead of allocating unboundedly.
pub const MAX_FRAME_LEN: u64 = 16 * 1024 * 1024;

/// Write the connection preamble: 4-byte magic plus a version byte.
pub fn write_preamble<W: Write>(w: &mut W, magic: &[u8; 4], version: u8) -> Result<()> {
    w.write_all(magic)?;
    w.write_all(&[version])?;
    Ok(())
}

/// Read and verify the connection preamble. Returns the peer's version
/// byte; rejects a wrong magic as [`TraceError::Corrupt`] and a version
/// newer than `supported` as [`TraceError::Unsupported`] (older versions
/// are the caller's call — they are returned, not rejected).
pub fn read_preamble<R: Read>(r: &mut R, magic: &[u8; 4], supported: u8) -> Result<u8> {
    let mut got = [0u8; 4];
    r.read_exact(&mut got)
        .map_err(|_| TraceError::Corrupt("stream ends inside the preamble".into()))?;
    if &got != magic {
        return Err(TraceError::Corrupt(format!(
            "bad preamble magic {got:02x?} (expected {magic:02x?})"
        )));
    }
    let mut version = [0u8];
    r.read_exact(&mut version)
        .map_err(|_| TraceError::Corrupt("stream ends before the version byte".into()))?;
    if version[0] > supported {
        return Err(TraceError::Unsupported(format!(
            "peer speaks protocol version {} (this build supports up to {supported})",
            version[0]
        )));
    }
    Ok(version[0])
}

/// Write one frame: varint length prefix (covering the type byte), the
/// message type, the body.
pub fn write_frame<W: Write>(w: &mut W, msg_type: u8, body: &[u8]) -> Result<()> {
    let len = 1 + body.len() as u64;
    if len > MAX_FRAME_LEN {
        return Err(TraceError::Inconsistent(format!(
            "frame of {len} bytes exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN})"
        )));
    }
    write_varint(w, len)?;
    w.write_all(&[msg_type])?;
    w.write_all(body)?;
    Ok(())
}

/// Read one frame. Returns `Ok(None)` on a clean end of stream (EOF
/// exactly at a frame boundary); a stream that ends *inside* a frame is
/// [`TraceError::Corrupt`]. Unknown message types are the caller's to
/// skip — the frame is already fully consumed, so ignoring the returned
/// pair is a correct skip.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<(u8, Vec<u8>)>> {
    // A clean EOF is only clean before the first length byte.
    let mut first = [0u8];
    match r.read(&mut first) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    // Decode the varint whose first byte we already hold.
    let len = if first[0] & 0x80 == 0 {
        u64::from(first[0])
    } else {
        let rest = read_varint(r)?;
        rest.checked_shl(7)
            .filter(|_| rest.leading_zeros() >= 7)
            .map(|hi| hi | u64::from(first[0] & 0x7f))
            .ok_or_else(|| TraceError::Corrupt("frame length varint overflows u64".into()))?
    };
    if len == 0 {
        return Err(TraceError::Corrupt(
            "zero-length frame (no type byte)".into(),
        ));
    }
    if len > MAX_FRAME_LEN {
        return Err(TraceError::Corrupt(format!(
            "frame length {len} exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN})"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|_| TraceError::Corrupt("stream ends inside a frame".into()))?;
    let body = payload.split_off(1);
    Ok(Some((payload[0], body)))
}

/// Append a varint-length-prefixed byte string to `out` (strings and blobs
/// inside frame bodies).
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    // Writing to a Vec cannot fail.
    let _ = write_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Append a varint to `out`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    let _ = write_varint(out, v);
}

/// Read a varint-length-prefixed byte string from a frame body.
pub fn take_bytes<R: Read>(r: &mut R) -> Result<Vec<u8>> {
    let len = read_varint(r)?;
    if len > MAX_FRAME_LEN {
        return Err(TraceError::Corrupt(format!(
            "byte string of {len} bytes inside a frame"
        )));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)
        .map_err(|_| TraceError::Corrupt("truncated byte string".into()))?;
    Ok(buf)
}

/// Read a varint-length-prefixed UTF-8 string from a frame body.
pub fn take_string<R: Read>(r: &mut R) -> Result<String> {
    String::from_utf8(take_bytes(r)?)
        .map_err(|_| TraceError::Corrupt("byte string is not UTF-8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_and_end_cleanly() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"").unwrap();
        write_frame(&mut buf, 200, &[0u8; 300]).unwrap();
        write_frame(&mut buf, 7, b"hello").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), Some((1, Vec::new())));
        assert_eq!(read_frame(&mut r).unwrap(), Some((200, vec![0u8; 300])));
        assert_eq!(read_frame(&mut r).unwrap(), Some((7, b"hello".to_vec())));
        assert_eq!(read_frame(&mut r).unwrap(), None);
        assert_eq!(read_frame(&mut r).unwrap(), None, "EOF is sticky");
    }

    #[test]
    fn unknown_types_are_skippable_by_construction() {
        // A reader that ignores a frame it does not understand is exactly
        // aligned for the next one.
        let mut buf = Vec::new();
        write_frame(&mut buf, 250, b"from the future").unwrap();
        write_frame(&mut buf, 1, b"known").unwrap();
        let mut r = buf.as_slice();
        let (t, _) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(t, 250); // caller shrugs and drops it
        assert_eq!(read_frame(&mut r).unwrap(), Some((1, b"known".to_vec())));
    }

    #[test]
    fn truncated_frames_are_corrupt_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, b"abcdef").unwrap();
        let cut = &buf[..buf.len() - 2];
        let mut r = cut;
        assert!(matches!(read_frame(&mut r), Err(TraceError::Corrupt(_))));
    }

    #[test]
    fn oversized_and_zero_frames_are_rejected() {
        let mut buf = Vec::new();
        write_varint(&mut buf, MAX_FRAME_LEN + 1).unwrap();
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(TraceError::Corrupt(_))
        ));
        let mut buf = Vec::new();
        write_varint(&mut buf, 0).unwrap();
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(TraceError::Corrupt(_))
        ));
        // The writer refuses to emit one too.
        assert!(write_frame(&mut Vec::new(), 0, &vec![0u8; MAX_FRAME_LEN as usize]).is_err());
    }

    #[test]
    fn preamble_verifies_magic_and_version() {
        let mut buf = Vec::new();
        write_preamble(&mut buf, b"VCSV", 1).unwrap();
        assert_eq!(read_preamble(&mut buf.as_slice(), b"VCSV", 1).unwrap(), 1);
        assert!(matches!(
            read_preamble(&mut buf.as_slice(), b"XXXX", 1),
            Err(TraceError::Corrupt(_))
        ));
        let mut newer = Vec::new();
        write_preamble(&mut newer, b"VCSV", 9).unwrap();
        assert!(matches!(
            read_preamble(&mut newer.as_slice(), b"VCSV", 1),
            Err(TraceError::Unsupported(_))
        ));
        // Older peers are returned, not rejected (caller's policy).
        let mut older = Vec::new();
        write_preamble(&mut older, b"VCSV", 0).unwrap();
        assert_eq!(read_preamble(&mut older.as_slice(), b"VCSV", 1).unwrap(), 0);
    }

    #[test]
    fn body_helpers_roundtrip() {
        let mut body = Vec::new();
        put_u64(&mut body, 300);
        put_bytes(&mut body, b"name");
        put_u64(&mut body, 0);
        let mut r = body.as_slice();
        assert_eq!(read_varint(&mut r).unwrap(), 300);
        assert_eq!(take_string(&mut r).unwrap(), "name");
        assert_eq!(read_varint(&mut r).unwrap(), 0);
        assert!(
            matches!(take_bytes(&mut r), Err(TraceError::Corrupt(_)),),
            "reading past the body is corrupt"
        );
    }
}
