//! Capture: record any [`TraceSource`] stream into a trace file.

use std::io::Write;
use std::path::Path;

use virtclust_uarch::{Program, TraceSource};

use crate::error::Result;
use crate::writer::TraceWriter;
use crate::Codec;

/// Pull up to `max_uops` micro-ops from `source` and append them to
/// `writer`. Stops early if the source ends. Returns the number recorded.
/// The caller still owns the writer and must call
/// [`TraceWriter::finish`](crate::TraceWriter::finish).
pub fn record_stream<W: Write>(
    source: &mut dyn TraceSource,
    max_uops: u64,
    writer: &mut TraceWriter<W>,
) -> Result<u64> {
    let mut n = 0;
    while n < max_uops {
        let Some(uop) = source.next_uop() else { break };
        writer.write_uop(&uop)?;
        n += 1;
    }
    Ok(n)
}

/// One-shot capture: record up to `max_uops` of `source` (a stream over
/// `program`) into a new trace file at `path`. Returns the number of
/// records written.
///
/// The declared header count is the source's
/// [`len_hint`](TraceSource::len_hint) clamped to `max_uops`. A hint-less
/// source declares nothing — it might end before `max_uops`, and a header
/// hint that overstates the footer would mislead any consumer that
/// preallocates or reports progress from it. Callers that *know* the
/// source is endless (the synthetic expander) can declare the budget
/// themselves via [`TraceWriter::create`](crate::TraceWriter::create).
pub fn capture_to_file(
    program: &Program,
    source: &mut dyn TraceSource,
    max_uops: u64,
    path: impl AsRef<Path>,
    codec: Codec,
) -> Result<u64> {
    let declared = source.len_hint().map(|n| n.min(max_uops));
    let mut writer = TraceWriter::create(path, program, codec, declared)?;
    record_stream(source, max_uops, &mut writer)?;
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceReader;
    use virtclust_uarch::{ArchReg, DynUop, RegionBuilder, VecTrace};

    fn demo() -> (Program, Vec<DynUop>) {
        let r = ArchReg::int;
        let mut p = Program::new("demo");
        p.add_region(
            RegionBuilder::new(0, "body")
                .alu(r(1), &[r(1), r(2)])
                .load(r(3), r(1))
                .build(),
        );
        let mut uops = Vec::new();
        let mut seq = 0;
        for _ in 0..10 {
            seq = virtclust_uarch::trace::expand_region(
                &p.regions[0],
                seq,
                &mut uops,
                |s, _| s * 16,
                |_, _| true,
            );
        }
        (p, uops)
    }

    #[test]
    fn record_stream_respects_the_budget_and_stream_end() {
        let (p, uops) = demo();
        let mut w = TraceWriter::new(Vec::new(), &p, Codec::Text, None).unwrap();
        let mut src = VecTrace::new(uops.clone());
        assert_eq!(record_stream(&mut src, 7, &mut w).unwrap(), 7);
        // Source shorter than the budget: stops at the end.
        let mut w = TraceWriter::new(Vec::new(), &p, Codec::Text, None).unwrap();
        let mut src = VecTrace::new(uops.clone());
        assert_eq!(record_stream(&mut src, 10_000, &mut w).unwrap(), 20);
    }

    #[test]
    fn hintless_sources_declare_nothing() {
        // A source without a len_hint may end early; the header must not
        // claim a count the footer will contradict.
        struct NoHint(VecTrace);
        impl virtclust_uarch::TraceSource for NoHint {
            fn next_uop(&mut self) -> Option<DynUop> {
                self.0.next_uop()
            }
        }
        let (p, uops) = demo();
        let dir = std::env::temp_dir().join(format!("virtclust-nohint-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("short.vct");
        let mut src = NoHint(VecTrace::new(uops[..5].to_vec()));
        let n = capture_to_file(&p, &mut src, 12, &path, Codec::Text).unwrap();
        assert_eq!(n, 5, "source ended before the budget");
        let mut reader = crate::TraceReader::open(&path).unwrap();
        assert_eq!(reader.declared_len(), None);
        assert_eq!(reader.read_all().unwrap().len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn capture_to_file_roundtrips() {
        let (p, uops) = demo();
        let dir = std::env::temp_dir().join(format!("virtclust-capture-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (codec, name) in [(Codec::Text, "t.vct"), (Codec::Binary, "t.vctb")] {
            let path = dir.join(name);
            let mut src = VecTrace::new(uops.clone());
            let n = capture_to_file(&p, &mut src, 12, &path, codec).unwrap();
            assert_eq!(n, 12);
            let mut reader = TraceReader::open(&path).unwrap();
            assert_eq!(reader.declared_len(), Some(12));
            assert_eq!(reader.read_all().unwrap(), uops[..12]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
