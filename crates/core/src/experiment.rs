//! The five steering configurations of the paper's Table 3, and the
//! single-point experiment runner.

use virtclust_compiler::{SoftwarePass, VcConfig};
use virtclust_sim::{RunLimits, SimSession, SimStats, SteeringPolicy};
use virtclust_steer::{ModN, OccupancyAware, OneCluster, StaticFollow, VcMapper};
use virtclust_uarch::MachineConfig;
use virtclust_workloads::TracePoint;

/// A steering configuration (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Configuration {
    /// Occupancy-aware hardware-only steering — the baseline all slowdowns
    /// are measured against.
    Op,
    /// The parallel (stale-location) variant of OP — Sec. 2.1's motivation,
    /// not part of Table 3 but reproduced for the complexity argument.
    OpParallel,
    /// Every instruction to cluster 0.
    OneCluster,
    /// SPDI operation-based software-only steering.
    Ob,
    /// RHOP multilevel-partitioning software-only steering.
    Rhop,
    /// The paper's hybrid virtual-cluster steering with `num_vcs` virtual
    /// clusters (`VC(v→c)` in Sec. 5.4's notation).
    Vc {
        /// Number of virtual clusters the compiler partitions into.
        num_vcs: u32,
    },
    /// Mod-N round-robin steering [Baniasadi & Moshovos '00] — a classic
    /// dependence-blind baseline, for ablations (not in Table 3).
    ModN {
        /// Slice length in micro-ops.
        slice: u64,
    },
    /// OP without the stall-over-steer rule — ablates the "stalling beats
    /// steering" insight of [González '04] / [Salverda & Zilles '05].
    OpNoStall,
}

impl Configuration {
    /// The compile-time pass this configuration needs (hardware-only
    /// configurations need none).
    pub fn software_pass(&self, clusters: u32) -> SoftwarePass {
        match *self {
            Configuration::Op
            | Configuration::OpParallel
            | Configuration::OneCluster
            | Configuration::ModN { .. }
            | Configuration::OpNoStall => SoftwarePass::None,
            Configuration::Ob => SoftwarePass::Ob { clusters },
            Configuration::Rhop => SoftwarePass::Rhop { clusters },
            Configuration::Vc { num_vcs } => SoftwarePass::Vc(VcConfig::new(num_vcs)),
        }
    }

    /// Instantiate the hardware steering policy.
    pub fn make_policy(&self) -> Box<dyn SteeringPolicy> {
        match *self {
            Configuration::Op => Box::new(OccupancyAware::new()),
            Configuration::OpParallel => Box::new(OccupancyAware::parallel()),
            Configuration::OneCluster => Box::new(OneCluster::new()),
            Configuration::Ob | Configuration::Rhop => Box::new(StaticFollow::new()),
            Configuration::Vc { num_vcs } => Box::new(VcMapper::new(num_vcs as usize)),
            Configuration::ModN { slice } => Box::new(ModN::new(slice)),
            Configuration::OpNoStall => Box::new(OccupancyAware::without_stall()),
        }
    }

    /// Display name; `clusters` disambiguates `VC(v→c)`.
    pub fn name(&self, clusters: u32) -> String {
        match *self {
            Configuration::Op => "OP".into(),
            Configuration::OpParallel => "OP-parallel".into(),
            Configuration::OneCluster => "one-cluster".into(),
            Configuration::Ob => "OB".into(),
            Configuration::Rhop => "RHOP".into(),
            Configuration::Vc { num_vcs } => format!("VC({num_vcs}->{clusters})"),
            Configuration::ModN { slice } => format!("mod-{slice}"),
            Configuration::OpNoStall => "OP-nostall".into(),
        }
    }

    /// The exact five configurations of Table 3, for a 2-cluster machine.
    pub fn table3() -> [Configuration; 5] {
        [
            Configuration::Op,
            Configuration::OneCluster,
            Configuration::Ob,
            Configuration::Rhop,
            Configuration::Vc { num_vcs: 2 },
        ]
    }
}

/// Run one (trace point × configuration) cell: generate the point's
/// program, apply the configuration's software pass, expand the trace and
/// simulate `uops` micro-ops on `machine`.
pub fn run_point(
    point: &TracePoint,
    config: &Configuration,
    machine: &MachineConfig,
    uops: u64,
) -> SimStats {
    run_point_on(&mut SimSession::new(machine), point, config, machine, uops)
}

/// [`run_point`] on a caller-provided session — the batch engine's path.
/// This is the single definition of what a point cell does; `run_point`
/// is this over a fresh session, and sessions are bit-identical to fresh
/// machines by contract, so the two entry points cannot diverge.
pub fn run_point_on(
    session: &mut SimSession,
    point: &TracePoint,
    config: &Configuration,
    machine: &MachineConfig,
    uops: u64,
) -> SimStats {
    let mut program = point.build_program();
    config
        .software_pass(machine.num_clusters as u32)
        .apply(&mut program, &machine.latencies);
    let mut trace = point.expander(&program);
    let mut policy = config.make_policy();
    session.simulate(machine, &mut trace, policy.as_mut(), &RunLimits::uops(uops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtclust_workloads::spec2000_points;

    #[test]
    fn table3_has_the_five_configurations() {
        let names: Vec<String> = Configuration::table3().iter().map(|c| c.name(2)).collect();
        assert_eq!(names, vec!["OP", "one-cluster", "OB", "RHOP", "VC(2->2)"]);
    }

    #[test]
    fn all_configurations_commit_the_same_instructions() {
        let points = spec2000_points();
        let point = points.iter().find(|p| p.name == "crafty").unwrap();
        let machine = MachineConfig::paper_2cluster();
        let budget = 3_000;
        let mut committed = Vec::new();
        for config in Configuration::table3() {
            let stats = run_point(point, &config, &machine, budget);
            committed.push(stats.committed_uops);
        }
        assert!(committed.iter().all(|&c| c == budget), "{committed:?}");
    }

    #[test]
    fn one_cluster_generates_zero_copies() {
        let points = spec2000_points();
        let point = &points[0];
        let machine = MachineConfig::paper_2cluster();
        let stats = run_point(point, &Configuration::OneCluster, &machine, 2_000);
        assert_eq!(stats.copies_generated, 0);
    }

    #[test]
    fn runs_are_reproducible() {
        let points = spec2000_points();
        let point = points.iter().find(|p| p.name == "gzip-1").unwrap();
        let machine = MachineConfig::paper_2cluster();
        let a = run_point(point, &Configuration::Vc { num_vcs: 2 }, &machine, 2_000);
        let b = run_point(point, &Configuration::Vc { num_vcs: 2 }, &machine, 2_000);
        assert_eq!(a, b);
    }

    #[test]
    fn vc_2_to_4_works_on_four_cluster_machine() {
        let points = spec2000_points();
        let point = points.iter().find(|p| p.name == "galgel").unwrap();
        let machine = MachineConfig::paper_4cluster();
        let stats = run_point(point, &Configuration::Vc { num_vcs: 2 }, &machine, 2_000);
        assert_eq!(stats.committed_uops, 2_000);
        assert_eq!(stats.clusters.len(), 4);
    }
}
