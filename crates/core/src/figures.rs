//! Generators for every figure of the paper's evaluation (Sec. 5).
//!
//! * [`fig5`] — 2-cluster slowdown vs `OP` per trace point plus the INT /
//!   FP / CPU2000 averages (paper: one-cluster 12.19 %, OB 6.50 %,
//!   RHOP 5.40 %, VC 2.62 %);
//! * [`fig6`] — per-point scatter data: copy reduction and workload-balance
//!   improvement vs speedup, for VC vs OB, VC vs RHOP and VC vs OP;
//! * [`fig7`] — 4-cluster slowdowns (OB, RHOP, VC(4→4), VC(2→4)) plus the
//!   VC(4→4) copy inflation relative to VC(2→4) (paper: ~28 %).
//!
//! Each generator consumes an [`EvalMatrix`] produced by
//! [`crate::runner::run_matrix`] and returns plain data with `to_markdown`
//! / `to_csv` renderers, so the bench binaries stay trivial.

use virtclust_workloads::Suite;

use crate::experiment::Configuration;
use crate::metrics::{
    reduction_pct, slowdown_pct, speedup_pct, suite_weighted_average, PointOutcome,
};
use crate::runner::EvalMatrix;

/// One per-point row of Fig. 5 / Fig. 7: slowdown vs OP per configuration.
#[derive(Debug, Clone)]
pub struct SlowdownRow {
    /// Trace point name.
    pub point: String,
    /// SPECint or SPECfp.
    pub suite: Suite,
    /// Slowdowns (%) vs the OP baseline, one per non-baseline column.
    pub slowdowns: Vec<f64>,
}

/// Fig. 5: 2-cluster slowdown vs OP.
#[derive(Debug, Clone)]
pub struct Fig5Data {
    /// Column labels (configurations other than OP).
    pub configs: Vec<String>,
    /// Per-point rows.
    pub rows: Vec<SlowdownRow>,
    /// Suite averages per column: INT, FP, CPU2000.
    pub int_avg: Vec<f64>,
    /// FP suite average per column.
    pub fp_avg: Vec<f64>,
    /// Whole-suite average per column.
    pub cpu_avg: Vec<f64>,
}

fn slowdown_table(
    matrix: &EvalMatrix,
    baseline: Configuration,
) -> (Vec<String>, Vec<SlowdownRow>, Vec<usize>) {
    let base_col = matrix
        .config_index(&baseline)
        .expect("matrix must include the OP baseline");
    let other_cols: Vec<usize> = (0..matrix.configs.len())
        .filter(|&c| c != base_col)
        .collect();
    let labels: Vec<String> = other_cols
        .iter()
        .map(|&c| matrix.configs[c].name(matrix.machine.num_clusters as u32))
        .collect();
    let rows = matrix
        .points
        .iter()
        .enumerate()
        .map(|(pi, point)| SlowdownRow {
            point: point.name.clone(),
            suite: point.suite,
            slowdowns: other_cols
                .iter()
                .map(|&c| slowdown_pct(matrix.cell(pi, base_col).cycles, matrix.cell(pi, c).cycles))
                .collect(),
        })
        .collect();
    (labels, rows, other_cols)
}

fn averages(matrix: &EvalMatrix, rows: &[SlowdownRow], col: usize, suite: Option<Suite>) -> f64 {
    let outcomes: Vec<PointOutcome> = matrix
        .points
        .iter()
        .enumerate()
        .map(|(pi, p)| PointOutcome::new(p, matrix.cell(pi, 0).clone()))
        .collect();
    let values: Vec<(&PointOutcome, f64)> = outcomes
        .iter()
        .zip(rows)
        .map(|(o, r)| (o, r.slowdowns[col]))
        .collect();
    suite_weighted_average(&values, suite).unwrap_or(0.0)
}

/// Build Fig. 5 from a 2-cluster matrix containing OP plus the compared
/// configurations.
pub fn fig5(matrix: &EvalMatrix) -> Fig5Data {
    let (configs, rows, other_cols) = slowdown_table(matrix, Configuration::Op);
    let n = other_cols.len();
    let mut int_avg = Vec::with_capacity(n);
    let mut fp_avg = Vec::with_capacity(n);
    let mut cpu_avg = Vec::with_capacity(n);
    for col in 0..n {
        int_avg.push(averages(matrix, &rows, col, Some(Suite::Int)));
        fp_avg.push(averages(matrix, &rows, col, Some(Suite::Fp)));
        cpu_avg.push(averages(matrix, &rows, col, None));
    }
    Fig5Data {
        configs,
        rows,
        int_avg,
        fp_avg,
        cpu_avg,
    }
}

impl Fig5Data {
    /// Render as a markdown table (per-point rows + average rows).
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        s.push_str("| point | suite |");
        for c in &self.configs {
            s.push_str(&format!(" {c} |"));
        }
        s.push_str("\n|---|---|");
        s.push_str(&"---|".repeat(self.configs.len()));
        s.push('\n');
        for row in &self.rows {
            s.push_str(&format!("| {} | {} |", row.point, row.suite.name()));
            for v in &row.slowdowns {
                s.push_str(&format!(" {v:.2} |"));
            }
            s.push('\n');
        }
        for (label, avgs) in [
            ("INT AVG", &self.int_avg),
            ("FP AVG", &self.fp_avg),
            ("CPU2000 AVG", &self.cpu_avg),
        ] {
            s.push_str(&format!("| **{label}** | |"));
            for v in avgs {
                s.push_str(&format!(" **{v:.2}** |"));
            }
            s.push('\n');
        }
        s
    }

    /// Render as CSV (`point,suite,<config...>`).
    pub fn to_csv(&self) -> String {
        let mut s = String::from("point,suite");
        for c in &self.configs {
            s.push_str(&format!(",{c}"));
        }
        s.push('\n');
        for row in &self.rows {
            s.push_str(&format!("{},{}", row.point, row.suite.name()));
            for v in &row.slowdowns {
                s.push_str(&format!(",{v:.4}"));
            }
            s.push('\n');
        }
        s
    }
}

/// One scatter point of Fig. 6.
#[derive(Debug, Clone)]
pub struct Fig6Point {
    /// Trace point name.
    pub point: String,
    /// Suite of the point.
    pub suite: Suite,
    /// VC speedup over the compared scheme (%; x-axis).
    pub speedup: f64,
    /// Copy reduction of VC vs the compared scheme (%; Fig. 6 a y-axis).
    pub copy_reduction: f64,
    /// Allocation-stall reduction of VC vs the compared scheme (%;
    /// Fig. 6 b y-axis).
    pub balance_improvement: f64,
}

/// Fig. 6: the three scatter comparisons.
#[derive(Debug, Clone)]
pub struct Fig6Data {
    /// VC vs OB.
    pub vs_ob: Vec<Fig6Point>,
    /// VC vs RHOP.
    pub vs_rhop: Vec<Fig6Point>,
    /// VC vs OP.
    pub vs_op: Vec<Fig6Point>,
}

fn fig6_comparison(matrix: &EvalMatrix, vc: usize, other: usize) -> Vec<Fig6Point> {
    matrix
        .points
        .iter()
        .enumerate()
        .map(|(pi, point)| {
            let v = matrix.cell(pi, vc);
            let o = matrix.cell(pi, other);
            Fig6Point {
                point: point.name.clone(),
                suite: point.suite,
                speedup: speedup_pct(o.cycles, v.cycles),
                copy_reduction: reduction_pct(o.copies_generated, v.copies_generated),
                balance_improvement: reduction_pct(o.allocation_stalls(), v.allocation_stalls()),
            }
        })
        .collect()
}

/// Build Fig. 6 from the same 2-cluster matrix as Fig. 5 (must contain
/// VC(2), OB, RHOP and OP).
pub fn fig6(matrix: &EvalMatrix) -> Fig6Data {
    let vc = matrix
        .config_index(&Configuration::Vc { num_vcs: 2 })
        .expect("matrix must include VC(2)");
    let ob = matrix
        .config_index(&Configuration::Ob)
        .expect("matrix must include OB");
    let rhop = matrix
        .config_index(&Configuration::Rhop)
        .expect("matrix must include RHOP");
    let op = matrix
        .config_index(&Configuration::Op)
        .expect("matrix must include OP");
    Fig6Data {
        vs_ob: fig6_comparison(matrix, vc, ob),
        vs_rhop: fig6_comparison(matrix, vc, rhop),
        vs_op: fig6_comparison(matrix, vc, op),
    }
}

impl Fig6Data {
    /// Render all three comparisons as CSV
    /// (`comparison,point,suite,speedup,copy_reduction,balance_improvement`).
    pub fn to_csv(&self) -> String {
        let mut s = String::from(
            "comparison,point,suite,speedup_pct,copy_reduction_pct,balance_improvement_pct\n",
        );
        for (label, list) in [
            ("VC_vs_OB", &self.vs_ob),
            ("VC_vs_RHOP", &self.vs_rhop),
            ("VC_vs_OP", &self.vs_op),
        ] {
            for p in list {
                s.push_str(&format!(
                    "{label},{},{},{:.4},{:.4},{:.4}\n",
                    p.point,
                    p.suite.name(),
                    p.speedup,
                    p.copy_reduction,
                    p.balance_improvement
                ));
            }
        }
        s
    }

    /// Fraction of points (per comparison) in which VC reduces copies /
    /// improves balance — the quadrant summary the paper reads off the
    /// scatter plots.
    pub fn quadrant_summary(&self) -> String {
        let mut s = String::from(
            "| comparison | copies reduced | balance improved | speedup > 0 |\n|---|---|---|---|\n",
        );
        for (label, list) in [
            ("VC vs OB", &self.vs_ob),
            ("VC vs RHOP", &self.vs_rhop),
            ("VC vs OP", &self.vs_op),
        ] {
            let n = list.len().max(1);
            let copies = list.iter().filter(|p| p.copy_reduction > 0.0).count();
            let balance = list.iter().filter(|p| p.balance_improvement > 0.0).count();
            let speed = list.iter().filter(|p| p.speedup > 0.0).count();
            s.push_str(&format!(
                "| {label} | {copies}/{n} | {balance}/{n} | {speed}/{n} |\n"
            ));
        }
        s
    }
}

/// Fig. 7: 4-cluster slowdowns plus the VC(4→4) vs VC(2→4) copy comparison.
#[derive(Debug, Clone)]
pub struct Fig7Data {
    /// The slowdown table (columns: OB, RHOP, VC(4→4), VC(2→4)).
    pub table: Fig5Data,
    /// Average % more copies generated by VC(4→4) relative to VC(2→4)
    /// (paper reports ~28 %).
    pub vc44_copy_inflation_pct: f64,
}

/// Build Fig. 7 from a 4-cluster matrix containing OP, OB, RHOP, VC(4)
/// and VC(2).
pub fn fig7(matrix: &EvalMatrix) -> Fig7Data {
    assert_eq!(
        matrix.machine.num_clusters, 4,
        "Fig. 7 is the 4-cluster experiment"
    );
    let table = {
        let (configs, rows, other_cols) = slowdown_table(matrix, Configuration::Op);
        let n = other_cols.len();
        let mut int_avg = Vec::with_capacity(n);
        let mut fp_avg = Vec::with_capacity(n);
        let mut cpu_avg = Vec::with_capacity(n);
        for col in 0..n {
            int_avg.push(averages(matrix, &rows, col, Some(Suite::Int)));
            fp_avg.push(averages(matrix, &rows, col, Some(Suite::Fp)));
            cpu_avg.push(averages(matrix, &rows, col, None));
        }
        Fig5Data {
            configs,
            rows,
            int_avg,
            fp_avg,
            cpu_avg,
        }
    };
    let vc4 = matrix
        .config_index(&Configuration::Vc { num_vcs: 4 })
        .expect("matrix must include VC(4)");
    let vc2 = matrix
        .config_index(&Configuration::Vc { num_vcs: 2 })
        .expect("matrix must include VC(2)");
    let mut inflation = 0.0;
    let mut counted = 0usize;
    for pi in 0..matrix.points.len() {
        let c2 = matrix.cell(pi, vc2).copies_generated;
        let c4 = matrix.cell(pi, vc4).copies_generated;
        if c2 > 0 {
            inflation += (c4 as f64 / c2 as f64 - 1.0) * 100.0;
            counted += 1;
        }
    }
    Fig7Data {
        table,
        vc44_copy_inflation_pct: if counted > 0 {
            inflation / counted as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_matrix;
    use virtclust_uarch::MachineConfig;
    use virtclust_workloads::spec2000_points;

    fn mini_matrix(clusters: usize, vcs: &[u32]) -> EvalMatrix {
        let points: Vec<_> = spec2000_points()
            .into_iter()
            .filter(|p| ["gzip-1", "mcf", "galgel"].contains(&p.name.as_str()))
            .collect();
        let mut configs = vec![
            Configuration::Op,
            Configuration::OneCluster,
            Configuration::Ob,
            Configuration::Rhop,
        ];
        for &v in vcs {
            configs.push(Configuration::Vc { num_vcs: v });
        }
        let machine = MachineConfig::default().with_clusters(clusters);
        run_matrix(&machine, &configs, &points, 1_500, 0)
    }

    #[test]
    fn fig5_has_rows_and_averages() {
        let m = mini_matrix(2, &[2]);
        let f = fig5(&m);
        assert_eq!(f.rows.len(), 3);
        assert_eq!(f.configs.len(), 4);
        assert_eq!(f.int_avg.len(), 4);
        let md = f.to_markdown();
        assert!(md.contains("CPU2000 AVG"));
        let csv = f.to_csv();
        assert!(csv.lines().count() >= 4);
    }

    #[test]
    fn fig5_op_baseline_excluded_from_columns() {
        let m = mini_matrix(2, &[2]);
        let f = fig5(&m);
        assert!(!f.configs.iter().any(|c| c == "OP"));
    }

    #[test]
    fn fig6_produces_three_comparisons() {
        let m = mini_matrix(2, &[2]);
        let f = fig6(&m);
        assert_eq!(f.vs_ob.len(), 3);
        assert_eq!(f.vs_rhop.len(), 3);
        assert_eq!(f.vs_op.len(), 3);
        let csv = f.to_csv();
        assert!(csv.contains("VC_vs_RHOP"));
        assert!(f.quadrant_summary().contains("VC vs OP"));
    }

    #[test]
    fn fig7_reports_copy_inflation() {
        let m = mini_matrix(4, &[4, 2]);
        let f = fig7(&m);
        assert_eq!(f.table.rows.len(), 3);
        assert_eq!(
            f.table.configs.len(),
            5,
            "one-cluster, OB, RHOP, VC(4->4), VC(2->4)"
        );
        assert!(f.vc44_copy_inflation_pct.is_finite());
    }

    #[test]
    #[should_panic(expected = "4-cluster")]
    fn fig7_rejects_two_cluster_matrices() {
        let m = mini_matrix(2, &[4, 2]);
        let _ = fig7(&m);
    }
}
