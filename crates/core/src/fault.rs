//! Deterministic fault injection: a zero-dependency failpoint registry.
//!
//! The batch engine's fault-tolerance machinery (panic isolation, retries,
//! error classification — see [`crate::batch`]) is testable by
//! construction: every seam where the engine touches the outside world is
//! a named **failpoint site** ([`SITES`]) that can be armed with a
//! deterministic, serializable [`FaultSchedule`]. A schedule says *which
//! site* fails, *with what fault* ([`FaultKind`]) and *when*
//! ([`Trigger`]): the Nth hit, every Kth hit, or a seeded per-hit
//! probability. Because the schedule is data (its `Display` form parses
//! back via [`FaultSchedule::parse`]), a chaos test that finds a bug can
//! print the exact schedule that reproduces it.
//!
//! ```text
//! VIRTCLUST_FAILPOINTS="trace.open=io@2,job.run=panic@5"
//! ```
//!
//! arms the process-wide registry from the environment: the second
//! `trace.open` hit fails with a transient I/O error, and the fifth
//! `job.run` hit panics. Syntax per entry: `site=kind@N` (the Nth hit,
//! once), `site=kind%K` (every Kth hit), `site=kind~P:S` (probability `P`
//! per hit, xorshift-seeded with `S` — deterministic per site).
//! Kinds: `io` (transient I/O error — retryable), `corrupt` (permanent
//! data error — not retryable), `panic`.
//!
//! **Disarmed cost is one relaxed atomic load** ([`fire`] checks a global
//! flag before anything else), so production runs pay nothing and the
//! fault-free path stays bit-identical — the golden-stats and
//! skip-vs-step CI gates run with the registry compiled in and disarmed.

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

use virtclust_trace::TraceError;

/// Failpoint site: opening (and parsing) a trace file.
pub const TRACE_OPEN: &str = "trace.open";
/// Failpoint site: rewinding a cached trace reader between cells.
pub const TRACE_REWIND: &str = "trace.rewind";
/// Failpoint site: swapping the annotated program into a trace reader.
pub const TRACE_SET_PROGRAM: &str = "trace.set_program";
/// Failpoint site: the top of every batch job (any [`crate::EvalJob`]
/// kind) — the place to inject job-granular panics and errors.
pub const JOB_RUN: &str = "job.run";
/// Failpoint site: per-attempt worker-state preparation (session reset /
/// quarantine rebuild) — injecting here exercises double-fault handling.
pub const SESSION_RESET: &str = "session.reset";

/// Every named failpoint site, for schedule validation and enumeration.
pub const SITES: [&str; 5] = [
    TRACE_OPEN,
    TRACE_REWIND,
    TRACE_SET_PROGRAM,
    JOB_RUN,
    SESSION_RESET,
];

/// What an armed failpoint injects when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A transient I/O error (`io::ErrorKind::Interrupted`) — classified
    /// retryable by [`TraceError::is_transient`].
    Io,
    /// A permanent data error ([`TraceError::Corrupt`]) — not retryable.
    Corrupt,
    /// A panic (`panic!` with a message naming the site and hit number).
    Panic,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Io => write!(f, "io"),
            FaultKind::Corrupt => write!(f, "corrupt"),
            FaultKind::Panic => write!(f, "panic"),
        }
    }
}

/// When an armed failpoint fires, as a function of the site's hit count
/// (1-based) — deterministic for a fixed schedule and hit order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire on exactly the `N`th hit (once).
    Nth(u64),
    /// Fire on every `K`th hit (hits `K`, `2K`, `3K`, …).
    Every(u64),
    /// Fire with probability `p` per hit, decided by a per-site xorshift
    /// RNG seeded with `seed` — the same schedule replays the same
    /// hit-by-hit decisions.
    Prob {
        /// Per-hit fire probability in `[0, 1]`.
        p: f64,
        /// RNG seed (site-local stream).
        seed: u64,
    },
}

/// One armed failpoint: what to inject and when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The fault to inject.
    pub kind: FaultKind,
    /// When to inject it.
    pub trigger: Trigger,
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.trigger {
            Trigger::Nth(n) => write!(f, "{}@{n}", self.kind),
            Trigger::Every(k) => write!(f, "{}%{k}", self.kind),
            Trigger::Prob { p, seed } => write!(f, "{}~{p}:{seed}", self.kind),
        }
    }
}

/// A serializable set of `(site, spec)` entries — the unit chaos tests
/// arm, print and replay. `Display` and [`FaultSchedule::parse`] round
/// trip.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    entries: Vec<(String, FaultSpec)>,
}

impl FaultSchedule {
    /// Empty schedule (arming it disarms nothing but fires nothing).
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Add an entry (builder style). Unknown sites are rejected by
    /// [`FaultSchedule::parse`] but allowed here for forward
    /// compatibility of programmatic schedules.
    #[must_use]
    pub fn with(mut self, site: &str, spec: FaultSpec) -> Self {
        self.entries.push((site.to_string(), spec));
        self
    }

    /// The `(site, spec)` entries in insertion order.
    pub fn entries(&self) -> &[(String, FaultSpec)] {
        &self.entries
    }

    /// Whether the schedule has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parse the `site=kind@N,site=kind%K,site=kind~P:S` form (the
    /// `VIRTCLUST_FAILPOINTS` syntax). Whitespace around entries is
    /// ignored; an empty string parses to the empty schedule. Sites must
    /// be in [`SITES`]; `N`/`K` must be ≥ 1; `P` must be in `[0, 1]`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut schedule = FaultSchedule::new();
        for raw in s.split(',') {
            let entry = raw.trim();
            if entry.is_empty() {
                continue;
            }
            let (site, rest) = entry
                .split_once('=')
                .ok_or_else(|| format!("failpoint entry `{entry}` is missing `=`"))?;
            let site = site.trim();
            if !SITES.contains(&site) {
                return Err(format!(
                    "unknown failpoint site `{site}` (known: {})",
                    SITES.join(", ")
                ));
            }
            let spec = Self::parse_spec(rest.trim())
                .map_err(|e| format!("failpoint entry `{entry}`: {e}"))?;
            schedule.entries.push((site.to_string(), spec));
        }
        Ok(schedule)
    }

    fn parse_spec(s: &str) -> Result<FaultSpec, String> {
        let (kind_str, trigger) = if let Some((k, n)) = s.split_once('@') {
            let n: u64 = n.parse().map_err(|_| format!("bad hit count `{n}`"))?;
            if n == 0 {
                return Err("hit counts are 1-based; `@0` never fires".into());
            }
            (k, Trigger::Nth(n))
        } else if let Some((k, every)) = s.split_once('%') {
            let every: u64 = every.parse().map_err(|_| format!("bad period `{every}`"))?;
            if every == 0 {
                return Err("`%0` is not a period".into());
            }
            (k, Trigger::Every(every))
        } else if let Some((k, prob)) = s.split_once('~') {
            let (p, seed) = prob
                .split_once(':')
                .ok_or_else(|| format!("`~{prob}` is missing its `:seed`"))?;
            let p: f64 = p.parse().map_err(|_| format!("bad probability `{p}`"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("probability {p} outside [0, 1]"));
            }
            let seed: u64 = seed.parse().map_err(|_| format!("bad seed `{seed}`"))?;
            (k, Trigger::Prob { p, seed })
        } else {
            return Err(format!("`{s}` has no trigger (`@N`, `%K` or `~P:S`)"));
        };
        let kind = match kind_str.trim() {
            "io" => FaultKind::Io,
            "corrupt" => FaultKind::Corrupt,
            "panic" => FaultKind::Panic,
            other => return Err(format!("unknown fault kind `{other}`")),
        };
        Ok(FaultSpec { kind, trigger })
    }

    /// Parse `VIRTCLUST_FAILPOINTS`, if set. `Ok(None)` when unset or
    /// empty.
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var("VIRTCLUST_FAILPOINTS") {
            Ok(v) if !v.trim().is_empty() => Self::parse(&v).map(Some),
            _ => Ok(None),
        }
    }
}

impl fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (site, spec)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{site}={spec}")?;
        }
        Ok(())
    }
}

/// Per-site armed state: the spec plus the deterministic evaluation
/// state (hit counter, RNG).
#[derive(Debug)]
struct SiteState {
    site: String,
    spec: FaultSpec,
    hits: u64,
    rng: u64,
}

impl SiteState {
    /// Evaluate one hit; returns the fault to inject, if the trigger
    /// fires, plus the (1-based) hit number for the injected message.
    fn hit(&mut self) -> Option<(FaultKind, u64)> {
        self.hits += 1;
        let fire = match self.spec.trigger {
            Trigger::Nth(n) => self.hits == n,
            Trigger::Every(k) => self.hits.is_multiple_of(k),
            Trigger::Prob { p, .. } => {
                // xorshift64*: deterministic per-site stream.
                self.rng ^= self.rng << 13;
                self.rng ^= self.rng >> 7;
                self.rng ^= self.rng << 17;
                let unit = (self.rng.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64
                    / (1u64 << 53) as f64;
                unit < p
            }
        };
        fire.then_some((self.spec.kind, self.hits))
    }
}

/// Global registry. `ARMED` is the disarmed-path gate: one relaxed load.
static ARMED: AtomicBool = AtomicBool::new(false);
/// When set (env/CLI arming), every thread sees the schedule. When clear
/// (scoped test arming), only threads that opted in via [`participate`]
/// do — so chaos tests cannot trip unrelated tests running concurrently
/// in the same process.
static GLOBAL_SCOPE: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Vec<SiteState>> = Mutex::new(Vec::new());
static INJECTED: Mutex<u64> = Mutex::new(0);

thread_local! {
    static PARTICIPATES: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Serializes chaos tests (and any other scoped arming) so concurrent
/// tests in one process cannot observe each other's schedules.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn lock<T>(m: &'static Mutex<T>) -> MutexGuard<'static, T> {
    // Poison-tolerant by design: injected panics run concurrently with
    // registry reads, and a poisoned registry is still structurally valid.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Arm the registry with `schedule` in **thread-scoped** mode, replacing
/// any previous one: only threads that [`participate`] (and batch workers
/// they spawn — the engine propagates participation) evaluate the
/// schedule. Hit counters and RNGs start fresh. Prefer
/// [`ScopedFaults::arm`] in tests — it also handles participation and
/// serialization.
pub fn arm(schedule: &FaultSchedule) {
    arm_with_scope(schedule, false);
}

/// Arm the registry with `schedule` for **every** thread in the process —
/// the CLI/env form (`VIRTCLUST_FAILPOINTS`, `--chaos`), where the whole
/// process is the chaos experiment.
pub fn arm_global(schedule: &FaultSchedule) {
    arm_with_scope(schedule, true);
}

fn arm_with_scope(schedule: &FaultSchedule, global: bool) {
    let mut reg = lock(&REGISTRY);
    reg.clear();
    for (site, spec) in schedule.entries() {
        let seed = match spec.trigger {
            Trigger::Prob { seed, .. } => seed | 1, // xorshift needs ≠ 0
            _ => 1,
        };
        reg.push(SiteState {
            site: site.clone(),
            spec: *spec,
            hits: 0,
            rng: seed,
        });
    }
    *lock(&INJECTED) = 0;
    GLOBAL_SCOPE.store(global, Ordering::Relaxed);
    ARMED.store(!reg.is_empty(), Ordering::Relaxed);
}

/// Arm globally from `VIRTCLUST_FAILPOINTS`, if set. Returns the parsed
/// schedule when one was armed. CLIs call this once at startup.
pub fn arm_from_env() -> Result<Option<FaultSchedule>, String> {
    let schedule = FaultSchedule::from_env()?;
    if let Some(s) = &schedule {
        arm_global(s);
    }
    Ok(schedule)
}

/// Disarm every failpoint. The next [`fire`] is back to one relaxed load.
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
    GLOBAL_SCOPE.store(false, Ordering::Relaxed);
    lock(&REGISTRY).clear();
}

/// Whether any failpoint is armed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Whether the *current thread* would evaluate an armed schedule: true
/// under global arming, or when this thread opted in.
pub fn participating() -> bool {
    GLOBAL_SCOPE.load(Ordering::Relaxed) || PARTICIPATES.with(|p| p.get())
}

/// Opt the current thread in or out of a thread-scoped schedule. The
/// batch engine calls this on worker threads with the spawning thread's
/// [`participating`] value, so a chaos test's workers see its schedule
/// while unrelated concurrent work does not.
pub fn participate(yes: bool) {
    PARTICIPATES.with(|p| p.set(yes));
}

/// Total faults injected since the registry was last armed (all sites,
/// all kinds — including panics).
pub fn injected_count() -> u64 {
    *lock(&INJECTED)
}

/// Evaluate the failpoint at `site`.
///
/// Disarmed (the common case): **one relaxed atomic load**, then
/// `Ok(())`. Armed: counts the hit and, when the trigger fires, injects
/// the scheduled fault — `Err` with a transient I/O [`TraceError`]
/// (`FaultKind::Io`), `Err` with a permanent [`TraceError::Corrupt`]
/// (`FaultKind::Corrupt`), or a `panic!` naming the site and hit number
/// (`FaultKind::Panic`).
#[inline]
pub fn fire(site: &str) -> Result<(), TraceError> {
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    fire_armed(site)
}

#[cold]
fn fire_armed(site: &str) -> Result<(), TraceError> {
    if !participating() {
        return Ok(());
    }
    let fired = {
        let mut reg = lock(&REGISTRY);
        let Some(state) = reg.iter_mut().find(|s| s.site == site) else {
            return Ok(());
        };
        state.hit()
    };
    let Some((kind, hit)) = fired else {
        return Ok(());
    };
    *lock(&INJECTED) += 1;
    match kind {
        FaultKind::Io => Err(TraceError::Io(io::Error::new(
            io::ErrorKind::Interrupted,
            format!("injected transient i/o fault at {site} (hit {hit})"),
        ))),
        FaultKind::Corrupt => Err(TraceError::Corrupt(format!(
            "injected permanent fault at {site} (hit {hit})"
        ))),
        FaultKind::Panic => panic!("injected panic at {site} (hit {hit})"),
    }
}

/// RAII scoped arming for tests: holds a process-wide exclusivity lock
/// (so chaos tests serialize instead of corrupting each other's
/// schedules), arms on construction, disarms on drop.
#[must_use = "dropping the guard disarms the schedule immediately"]
pub struct ScopedFaults {
    _excl: MutexGuard<'static, ()>,
}

impl ScopedFaults {
    /// Take the exclusivity lock, arm `schedule` thread-scoped, and opt
    /// the current thread in.
    pub fn arm(schedule: &FaultSchedule) -> Self {
        let excl = EXCLUSIVE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        arm(schedule);
        participate(true);
        ScopedFaults { _excl: excl }
    }
}

impl Drop for ScopedFaults {
    fn drop(&mut self) {
        participate(false);
        disarm();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: FaultKind, trigger: Trigger) -> FaultSpec {
        FaultSpec { kind, trigger }
    }

    #[test]
    fn schedule_display_parse_round_trips() {
        let s = FaultSchedule::new()
            .with(TRACE_OPEN, spec(FaultKind::Io, Trigger::Nth(2)))
            .with(JOB_RUN, spec(FaultKind::Panic, Trigger::Every(5)))
            .with(
                TRACE_REWIND,
                spec(FaultKind::Corrupt, Trigger::Prob { p: 0.25, seed: 9 }),
            );
        let text = s.to_string();
        assert_eq!(
            text,
            "trace.open=io@2,job.run=panic%5,trace.rewind=corrupt~0.25:9"
        );
        assert_eq!(FaultSchedule::parse(&text).unwrap(), s);
    }

    #[test]
    fn parse_matches_the_issue_env_example() {
        let s = FaultSchedule::parse("trace.open=io@2,job.run=panic@5").unwrap();
        assert_eq!(s.entries().len(), 2);
        assert_eq!(
            s.entries()[0],
            (TRACE_OPEN.to_string(), spec(FaultKind::Io, Trigger::Nth(2)))
        );
        assert_eq!(
            s.entries()[1],
            (JOB_RUN.to_string(), spec(FaultKind::Panic, Trigger::Nth(5)))
        );
    }

    #[test]
    fn parse_rejects_unknown_sites_kinds_and_degenerate_triggers() {
        assert!(FaultSchedule::parse("bogus.site=io@1").is_err());
        assert!(FaultSchedule::parse("job.run=meteor@1").is_err());
        assert!(FaultSchedule::parse("job.run=io@0").is_err());
        assert!(FaultSchedule::parse("job.run=io%0").is_err());
        assert!(FaultSchedule::parse("job.run=io~1.5:1").is_err());
        assert!(FaultSchedule::parse("job.run=io~0.5").is_err(), "no seed");
        assert!(FaultSchedule::parse("job.run=io").is_err(), "no trigger");
        assert!(FaultSchedule::parse("job.run").is_err(), "no =");
        assert_eq!(FaultSchedule::parse("").unwrap(), FaultSchedule::new());
    }

    #[test]
    fn nth_trigger_fires_exactly_once_and_is_transient() {
        let _guard = ScopedFaults::arm(
            &FaultSchedule::new().with(TRACE_OPEN, spec(FaultKind::Io, Trigger::Nth(2))),
        );
        assert!(fire(TRACE_OPEN).is_ok(), "hit 1 passes");
        let err = fire(TRACE_OPEN).expect_err("hit 2 fails");
        assert!(
            err.is_transient(),
            "injected io faults are transient: {err}"
        );
        assert!(err.to_string().contains("trace.open"), "{err}");
        assert!(fire(TRACE_OPEN).is_ok(), "hit 3 passes again");
        assert!(fire(TRACE_REWIND).is_ok(), "other sites never fire");
        assert_eq!(injected_count(), 1);
    }

    #[test]
    fn every_trigger_fires_periodically_and_corrupt_is_permanent() {
        let _guard = ScopedFaults::arm(
            &FaultSchedule::new().with(JOB_RUN, spec(FaultKind::Corrupt, Trigger::Every(3))),
        );
        let outcomes: Vec<bool> = (0..9).map(|_| fire(JOB_RUN).is_err()).collect();
        assert_eq!(
            outcomes,
            [false, false, true, false, false, true, false, false, true]
        );
        let err = {
            // Re-arm to get a fresh counter, then step to the firing hit.
            arm(&FaultSchedule::new().with(JOB_RUN, spec(FaultKind::Corrupt, Trigger::Every(1))));
            fire(JOB_RUN).expect_err("every-1 fires immediately")
        };
        assert!(!err.is_transient(), "corrupt faults are permanent: {err}");
    }

    #[test]
    fn prob_trigger_is_deterministic_for_a_seed() {
        let schedule = FaultSchedule::new().with(
            SESSION_RESET,
            spec(FaultKind::Io, Trigger::Prob { p: 0.5, seed: 42 }),
        );
        let run = || -> Vec<bool> {
            let _guard = ScopedFaults::arm(&schedule);
            (0..64).map(|_| fire(SESSION_RESET).is_err()).collect()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same hit-by-hit decisions");
        let fired = a.iter().filter(|&&f| f).count();
        assert!(
            (8..=56).contains(&fired),
            "p=0.5 over 64 hits fired {fired} times — degenerate RNG"
        );
    }

    #[test]
    fn scoped_arming_is_invisible_to_non_participating_threads() {
        let _guard = ScopedFaults::arm(
            &FaultSchedule::new().with(JOB_RUN, spec(FaultKind::Io, Trigger::Every(1))),
        );
        assert!(fire(JOB_RUN).is_err(), "the arming thread participates");
        let outsider = std::thread::spawn(|| fire(JOB_RUN).is_ok()).join().unwrap();
        assert!(outsider, "other threads never see a thread-scoped schedule");
        let insider = std::thread::spawn(|| {
            participate(true);
            fire(JOB_RUN).is_err()
        })
        .join()
        .unwrap();
        assert!(insider, "threads that opt in do");
    }

    #[test]
    fn env_style_global_arming_reaches_every_thread() {
        // The empty scoped guard only serializes against other fault tests.
        let _guard = ScopedFaults::arm(&FaultSchedule::new());
        arm_global(&FaultSchedule::new().with(JOB_RUN, spec(FaultKind::Io, Trigger::Every(1))));
        let outsider = std::thread::spawn(|| fire(JOB_RUN).is_err())
            .join()
            .unwrap();
        assert!(
            outsider,
            "global arming reaches threads that never opted in"
        );
    }

    #[test]
    fn disarmed_registry_never_fires() {
        // Holding the guard (empty schedule = disarmed) keeps concurrent
        // fault tests from re-arming under us.
        let _guard = ScopedFaults::arm(&FaultSchedule::new());
        for site in SITES {
            assert!(fire(site).is_ok());
        }
        assert!(!armed());
    }

    #[test]
    #[should_panic(expected = "injected panic at job.run (hit 1)")]
    fn panic_kind_panics_with_site_and_hit() {
        let _guard = ScopedFaults::arm(
            &FaultSchedule::new().with(JOB_RUN, spec(FaultKind::Panic, Trigger::Nth(1))),
        );
        let _ = fire(JOB_RUN);
    }
}
