//! Record/replay: persist a point's dynamic stream once, then feed the
//! stored trace through the experiment plumbing under any steering scheme.
//!
//! The contract (verified by the tests here and in `tests/trace_replay.rs`)
//! is **bit-identical replay**: for every configuration, simulating a
//! recorded trace produces *exactly* the [`SimStats`] of the equivalent
//! in-process run — same committed micro-ops, same cycles, same IPC. Three
//! properties make that work:
//!
//! 1. the expander's dynamic facts do not depend on annotations, so a trace
//!    captured from the *unannotated* program is scheme-neutral;
//! 2. the trace stores only dynamic facts and re-derives static metadata
//!    from its embedded program, so replay can clear the hints and run each
//!    configuration's compiler pass — exactly like [`run_point`] does;
//! 3. the reader mirrors the expander's [`TraceSource`] semantics
//!    (`region_uops`, end-of-stream), so the simulator's front-end sees an
//!    indistinguishable source.
//!
//! ```
//! use virtclust_core::{record_point, replay_trace, run_point, Configuration};
//! use virtclust_sim::RunLimits;
//! use virtclust_trace::Codec;
//! use virtclust_uarch::MachineConfig;
//! use virtclust_workloads::spec2000_points;
//!
//! let point = &spec2000_points()[0]; // gzip-1
//! let machine = MachineConfig::paper_2cluster();
//! let path = std::env::temp_dir().join("virtclust-doc-replay.vct");
//! record_point(point, 600, Codec::Text, &path).unwrap();
//! for config in [Configuration::Op, Configuration::Vc { num_vcs: 2 }] {
//!     let live = run_point(point, &config, &machine, 600);
//!     let replayed = replay_trace(&path, &config, &machine, &RunLimits::unlimited()).unwrap();
//!     assert_eq!(live, replayed, "replay is bit-identical");
//! }
//! # std::fs::remove_file(&path).ok();
//! ```

use std::io::{BufRead, Seek};
use std::path::Path;

use virtclust_obs::ObsSink;
use virtclust_sim::{simulate, RunLimits, SimSession, SimStats};
use virtclust_trace::{Codec, Result, TraceReader, TraceWriter};
use virtclust_uarch::{MachineConfig, Program};
use virtclust_workloads::TracePoint;

use crate::experiment::Configuration;

// Referenced by the module docs.
#[allow(unused_imports)]
use crate::experiment::run_point;
#[allow(unused_imports)]
use virtclust_uarch::TraceSource;

/// Record `uops` micro-ops of `point`'s dynamic stream into a trace file.
///
/// The capture runs over the point's *unannotated* program (the canonical,
/// scheme-neutral form): the expander's dynamic facts are independent of
/// steering hints, and replay re-annotates per configuration anyway.
/// Returns the number of records written.
pub fn record_point(
    point: &TracePoint,
    uops: u64,
    codec: Codec,
    path: impl AsRef<Path>,
) -> Result<u64> {
    let program = point.build_program();
    let mut expander = point.expander(&program);
    let mut writer = TraceWriter::create(path, &program, codec, Some(uops))?;
    expander.capture(uops, |u| writer.write_uop(u))?;
    writer.finish()
}

/// Replay a stored trace under `config` on `machine`.
///
/// Opens the trace, clears the embedded program's steering hints, applies
/// the configuration's compiler pass (exactly as [`run_point`] would), and
/// feeds the stored stream to the simulator. With
/// [`RunLimits::unlimited`] the whole trace is consumed; a tighter
/// `max_uops` replays a prefix.
pub fn replay_trace(
    path: impl AsRef<Path>,
    config: &Configuration,
    machine: &MachineConfig,
    limits: &RunLimits,
) -> Result<SimStats> {
    crate::fault::fire(crate::fault::TRACE_OPEN)?;
    replay_reader(TraceReader::open(path)?, config, machine, limits)
}

/// [`replay_trace`] over an already-open reader (any seekable byte
/// source).
pub fn replay_reader<R: BufRead + Seek>(
    mut reader: TraceReader<R>,
    config: &Configuration,
    machine: &MachineConfig,
    limits: &RunLimits,
) -> Result<SimStats> {
    let program = annotate_for_replay(reader.program().clone(), config, machine);
    reader.set_program(program)?;
    let mut policy = config.make_policy();
    let stats = simulate(machine, &mut reader, policy.as_mut(), limits);
    // Errors inside the simulation loop surface as a silently-ended trace;
    // re-raise them so a corrupt file can never masquerade as a short run.
    if let Some(err) = reader.take_error() {
        return Err(err);
    }
    Ok(stats)
}

/// [`replay_trace`] with an interval observer attached: replays the
/// stored stream under `config` while `sink` receives one
/// [`SimStats`] delta every `every` cycles (plus the trailing partial
/// interval and an `on_finish` with the final stats). The returned
/// stats are bit-identical to an unobserved [`replay_trace`] of the
/// same file — the observer reads, never steers.
pub fn replay_trace_observed(
    path: impl AsRef<Path>,
    config: &Configuration,
    machine: &MachineConfig,
    limits: &RunLimits,
    every: u64,
    sink: Box<dyn ObsSink<SimStats> + Send>,
) -> Result<SimStats> {
    let mut reader = TraceReader::open(path)?;
    let program = annotate_for_replay(reader.program().clone(), config, machine);
    reader.set_program(program)?;
    let mut policy = config.make_policy();
    let mut session = SimSession::new(machine);
    session.attach_observer(every, sink);
    let stats = session.run(&mut reader, policy.as_mut(), limits);
    if let Some(err) = reader.take_error() {
        return Err(err);
    }
    Ok(stats)
}

/// The replay preparation step, shared with the batch engine
/// ([`crate::batch::EvalDriver`]): re-annotate a trace's (or kernel's)
/// program for `config` by clearing stale hints and running the
/// configuration's compiler pass — exactly what [`run_point`] does to a
/// freshly generated program.
pub(crate) fn annotate_for_replay(
    mut program: Program,
    config: &Configuration,
    machine: &MachineConfig,
) -> Program {
    program.clear_hints();
    config
        .software_pass(machine.num_clusters as u32)
        .apply(&mut program, &machine.latencies);
    program
}

/// Replay a stored trace under several configurations, returning
/// `(name, stats)` per configuration — the cross-scheme comparison the
/// paper's evaluation is built on, over one frozen stream.
pub fn replay_compare(
    path: impl AsRef<Path>,
    configs: &[Configuration],
    machine: &MachineConfig,
) -> Result<Vec<(String, SimStats)>> {
    let path = path.as_ref();
    configs
        .iter()
        .map(|config| {
            let stats = replay_trace(path, config, machine, &RunLimits::unlimited())?;
            Ok((config.name(machine.num_clusters as u32), stats))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtclust_workloads::spec2000_points;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("virtclust-replay-{}-{name}", std::process::id()))
    }

    fn point(name: &str) -> TracePoint {
        spec2000_points()
            .into_iter()
            .find(|p| p.name == name)
            .expect("suite point")
    }

    #[test]
    fn replay_is_bit_identical_for_every_table3_scheme() {
        let machine = MachineConfig::paper_2cluster();
        let p = point("crafty");
        let budget = 3_000;
        let path = tmp("crafty.vctb");
        assert_eq!(
            record_point(&p, budget, Codec::Binary, &path).unwrap(),
            budget
        );
        for config in Configuration::table3() {
            let live = crate::run_point(&p, &config, &machine, budget);
            let replayed = replay_trace(&path, &config, &machine, &RunLimits::unlimited()).unwrap();
            assert_eq!(live, replayed, "{}", config.name(2));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn text_and_binary_codecs_replay_identically() {
        let machine = MachineConfig::paper_2cluster();
        let p = point("gzip-1");
        let (t, b) = (tmp("gzip.vct"), tmp("gzip.vctb"));
        record_point(&p, 2_000, Codec::Text, &t).unwrap();
        record_point(&p, 2_000, Codec::Binary, &b).unwrap();
        let config = Configuration::Vc { num_vcs: 2 };
        let from_text = replay_trace(&t, &config, &machine, &RunLimits::unlimited()).unwrap();
        let from_bin = replay_trace(&b, &config, &machine, &RunLimits::unlimited()).unwrap();
        assert_eq!(from_text, from_bin);
        std::fs::remove_file(&t).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn replay_compare_runs_every_scheme_over_one_stream() {
        let machine = MachineConfig::paper_2cluster();
        let p = point("eon-1");
        let path = tmp("eon.vct");
        record_point(&p, 1_500, Codec::Text, &path).unwrap();
        let rows = replay_compare(&path, &Configuration::table3(), &machine).unwrap();
        assert_eq!(rows.len(), 5);
        for (name, stats) in &rows {
            assert_eq!(stats.committed_uops, 1_500, "{name}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_with_a_budget_prefix_still_commits_the_budget() {
        let machine = MachineConfig::paper_2cluster();
        let p = point("gzip-1");
        let path = tmp("prefix.vctb");
        record_point(&p, 2_000, Codec::Binary, &path).unwrap();
        let stats =
            replay_trace(&path, &Configuration::Op, &machine, &RunLimits::uops(800)).unwrap();
        assert_eq!(stats.committed_uops, 800);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_trace_files_error_instead_of_short_running() {
        let machine = MachineConfig::paper_2cluster();
        let p = point("gzip-1");
        let path = tmp("corrupt.vctb");
        record_point(&p, 1_000, Codec::Binary, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        let err = replay_trace(&path, &Configuration::Op, &machine, &RunLimits::unlimited());
        assert!(err.is_err());
        std::fs::remove_file(&path).ok();
    }
}
