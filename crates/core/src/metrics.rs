//! The paper's evaluation metrics.
//!
//! * **slowdown vs OP** (Fig. 5, Fig. 7): `(cycles / cycles_OP − 1) × 100`;
//! * **copy reduction** (Fig. 6 a): `(copies_other − copies_VC) /
//!   copies_other × 100`;
//! * **workload-balance improvement** (Fig. 6 b): *"computed as the total
//!   reduction of the allocation stalls in the issue queues"* —
//!   `(stalls_other − stalls_VC) / stalls_other × 100`;
//! * **suite averages**: per-benchmark PinPoints-weighted means, then an
//!   unweighted mean across benchmarks (the paper's INT AVG / FP AVG /
//!   CPU2000 AVG bars).

use std::collections::BTreeMap;

use virtclust_sim::SimStats;
use virtclust_workloads::{Suite, TracePoint};

/// Slowdown of `cycles` relative to `base_cycles`, in percent (positive =
/// slower than baseline).
pub fn slowdown_pct(base_cycles: u64, cycles: u64) -> f64 {
    assert!(base_cycles > 0, "baseline must have run");
    (cycles as f64 / base_cycles as f64 - 1.0) * 100.0
}

/// Speedup of `cycles` over `other_cycles`, in percent (positive = faster
/// than the other scheme). Used for Fig. 6's x-axes.
pub fn speedup_pct(other_cycles: u64, cycles: u64) -> f64 {
    assert!(cycles > 0);
    (other_cycles as f64 / cycles as f64 - 1.0) * 100.0
}

/// Relative reduction `(other − ours) / other × 100`; 0 when `other` is 0.
/// Used for copy reduction and allocation-stall (balance) improvement.
pub fn reduction_pct(other: u64, ours: u64) -> f64 {
    if other == 0 {
        return 0.0;
    }
    (other as f64 - ours as f64) / other as f64 * 100.0
}

/// One evaluated (point, configuration) outcome paired with its point
/// metadata — the row currency of the figure generators.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// Trace-point name (e.g. `"gzip-2"`).
    pub point: String,
    /// Benchmark family (e.g. `"gzip"`).
    pub bench: &'static str,
    /// SPECint or SPECfp.
    pub suite: Suite,
    /// PinPoints weight within the benchmark.
    pub weight: f64,
    /// Simulation statistics.
    pub stats: SimStats,
}

impl PointOutcome {
    /// Bundle a stats record with its point metadata.
    pub fn new(point: &TracePoint, stats: SimStats) -> Self {
        PointOutcome {
            point: point.name.clone(),
            bench: point.bench,
            suite: point.suite,
            weight: point.weight,
            stats,
        }
    }
}

/// The paper's suite averaging: first average each benchmark's points with
/// their PinPoints weights, then take the unweighted mean over benchmarks.
/// `values` pairs each point with the metric value to average. Returns
/// `None` when no point matches `suite_filter`.
pub fn suite_weighted_average(
    values: &[(&PointOutcome, f64)],
    suite_filter: Option<Suite>,
) -> Option<f64> {
    let mut per_bench: BTreeMap<&str, (f64, f64)> = BTreeMap::new();
    for (outcome, v) in values {
        if let Some(s) = suite_filter {
            if outcome.suite != s {
                continue;
            }
        }
        let e = per_bench.entry(outcome.bench).or_insert((0.0, 0.0));
        e.0 += outcome.weight * v;
        e.1 += outcome.weight;
    }
    if per_bench.is_empty() {
        return None;
    }
    let mean = per_bench.values().map(|&(sum, w)| sum / w).sum::<f64>() / per_bench.len() as f64;
    Some(mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtclust_workloads::spec2000_points;

    #[test]
    fn slowdown_and_speedup_are_inverse_views() {
        assert!((slowdown_pct(100, 110) - 10.0).abs() < 1e-12);
        assert!((slowdown_pct(100, 100)).abs() < 1e-12);
        assert!((speedup_pct(110, 100) - 10.0).abs() < 1e-12);
        assert!(speedup_pct(100, 110) < 0.0, "slower means negative speedup");
    }

    #[test]
    fn reduction_handles_zero_baseline() {
        assert_eq!(reduction_pct(0, 5), 0.0);
        assert!((reduction_pct(100, 80) - 20.0).abs() < 1e-12);
        assert!(reduction_pct(100, 120) < 0.0);
    }

    fn outcome(point_name: &str, v: f64) -> (PointOutcome, f64) {
        let points = spec2000_points();
        let p = points.iter().find(|p| p.name == point_name).unwrap();
        (PointOutcome::new(p, SimStats::new(2)), v)
    }

    #[test]
    fn suite_average_weights_points_within_benchmarks() {
        // gzip has 5 points with weights summing to 1; a constant metric
        // must average to that constant.
        let rows: Vec<(PointOutcome, f64)> = ["gzip-1", "gzip-2", "gzip-3", "gzip-4", "gzip-5"]
            .iter()
            .map(|n| outcome(n, 8.0))
            .collect();
        let refs: Vec<(&PointOutcome, f64)> = rows.iter().map(|(o, v)| (o, *v)).collect();
        let avg = suite_weighted_average(&refs, None).unwrap();
        assert!((avg - 8.0).abs() < 1e-9);
    }

    #[test]
    fn suite_average_is_unweighted_across_benchmarks() {
        // Two benchmarks with metric 10 and 20 -> mean 15, regardless of
        // how many points each one has.
        let mut rows = vec![outcome("mcf", 10.0)];
        for n in ["gzip-1", "gzip-2", "gzip-3", "gzip-4", "gzip-5"] {
            rows.push(outcome(n, 20.0));
        }
        let refs: Vec<(&PointOutcome, f64)> = rows.iter().map(|(o, v)| (o, *v)).collect();
        let avg = suite_weighted_average(&refs, Some(Suite::Int)).unwrap();
        assert!((avg - 15.0).abs() < 1e-9, "got {avg}");
    }

    #[test]
    fn suite_filter_excludes_other_suite() {
        let rows = [outcome("mcf", 10.0), outcome("galgel", 99.0)];
        let refs: Vec<(&PointOutcome, f64)> = rows.iter().map(|(o, v)| (o, *v)).collect();
        assert_eq!(suite_weighted_average(&refs, Some(Suite::Int)), Some(10.0));
        assert_eq!(suite_weighted_average(&refs, Some(Suite::Fp)), Some(99.0));
        assert_eq!(suite_weighted_average(&[], None), None);
    }
}
