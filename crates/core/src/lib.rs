//! # virtclust-core
//!
//! The experiment driver for the reproduction of *"A Software-Hardware
//! Hybrid Steering Mechanism for Clustered Microarchitectures"*
//! (Cai et al., IPDPS 2008): the five steering configurations of the
//! paper's Table 3, a batched evaluation engine ([`batch::EvalDriver`])
//! that drains heterogeneous job queues over reusable per-worker
//! simulation sessions, the parallel matrix runner built on it, the
//! paper's metrics (slowdown vs the `OP` baseline, copy reduction,
//! workload-balance improvement), and generators for every figure in the
//! evaluation (Figs. 5, 6, 7).
//!
//! Quick start:
//!
//! ```
//! use virtclust_core::{run_point, Configuration};
//! use virtclust_uarch::MachineConfig;
//! use virtclust_workloads::spec2000_points;
//!
//! let point = &spec2000_points()[0]; // gzip-1
//! let machine = MachineConfig::paper_2cluster();
//! let op = run_point(point, &Configuration::Op, &machine, 5_000);
//! let vc = run_point(point, &Configuration::Vc { num_vcs: 2 }, &machine, 5_000);
//! assert_eq!(op.committed_uops, vc.committed_uops);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod experiment;
pub mod fault;
pub mod figures;
pub mod metrics;
pub mod replay;
pub mod runner;

pub use batch::{
    BatchHandle, BatchMetrics, BatchReport, CellOutcome, EvalDriver, EvalJob, JobDone, JobError,
    JobMetrics, JobSource, JobTally, ResilientOptions, RetryPolicy, SourcedJob,
};
pub use experiment::{run_point, run_point_on, Configuration};
pub use figures::{fig5, fig6, fig7, Fig5Data, Fig6Data, Fig7Data};
pub use metrics::{slowdown_pct, suite_weighted_average, PointOutcome};
pub use replay::{
    record_point, replay_compare, replay_reader, replay_trace, replay_trace_observed,
};
pub use runner::{run_matrix, EvalMatrix};
pub use virtclust_sim::{CancelToken, StopCause};
