//! The batched evaluation engine: a job queue of heterogeneous simulation
//! cells drained by workers that **reuse** everything reusable.
//!
//! [`run_matrix`](crate::runner::run_matrix) fans the (point ×
//! configuration) matrix out over threads, but historically every cell
//! built a fresh machine (≈1 MB of allocations: cache line arrays,
//! predictor tables, event calendar) and every replayed cell re-opened and
//! re-parsed its trace. [`EvalDriver`] replaces that with service-style
//! plumbing:
//!
//! * each worker owns one [`SimSession`], reset — not reallocated — per
//!   cell;
//! * each worker caches open [`TraceReader`]s, so a `.vct`/`.vctb` file is
//!   parsed once and then [`rewound`](TraceReader::rewind) per cell (with
//!   [`TraceReader::set_program`] swapping the steering hints per
//!   configuration);
//! * jobs are heterogeneous ([`EvalJob`]): generated suite points, imported
//!   kernel programs, and stored-trace replays mix freely in one queue;
//! * completion streams through an `on_cell` callback as cells finish
//!   (out of order), while the returned vector is always in job order —
//!   so results are deterministic regardless of worker count.
//!
//! `run_matrix` is now one [`EvalDriver::run`] call, so every figure,
//! metric and replay-comparison path in the repo goes through the batch
//! engine.

use std::collections::HashMap;
use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use virtclust_obs::{ChromeTrace, Log2Hist};
use virtclust_sim::{RunLimits, SimSession, SimStats};
use virtclust_trace::{TraceError, TraceReader};
use virtclust_uarch::{MachineConfig, Program};
use virtclust_workloads::{KernelParams, TraceExpander, TracePoint};

use crate::experiment::{run_point_on, Configuration};
use crate::replay::annotate_for_replay;

/// One unit of work for the [`EvalDriver`]: a workload crossed with a
/// steering configuration.
#[derive(Debug, Clone)]
pub enum EvalJob {
    /// A generated suite point, exactly as [`crate::run_point`] would run
    /// it: build the point's program, apply the configuration's compiler
    /// pass, expand and simulate `uops` micro-ops.
    Point {
        /// The suite point to generate.
        point: TracePoint,
        /// Steering configuration.
        config: Configuration,
        /// Micro-op budget.
        uops: u64,
    },
    /// An imported (or hand-built) kernel program expanded with the
    /// synthetic dynamic model. Hints are cleared before the
    /// configuration's pass runs, so an annotated input does not leak
    /// stale steering decisions.
    Kernel {
        /// The static program (e.g. from `virtclust-trace`'s importer).
        program: Program,
        /// Dynamic-behaviour parameters for the expander.
        params: KernelParams,
        /// Expansion seed.
        seed: u64,
        /// Steering configuration.
        config: Configuration,
        /// Micro-op budget.
        uops: u64,
    },
    /// Replay of a stored `.vct`/`.vctb` trace, exactly as
    /// [`crate::replay_trace`] would: clear the embedded program's hints,
    /// apply the configuration's pass, stream the stored dynamic facts.
    /// Workers keep the reader open across jobs and rewind it, so a file
    /// is parsed once per worker no matter how many configurations replay
    /// it.
    Trace {
        /// Path of the stored trace.
        path: PathBuf,
        /// Steering configuration.
        config: Configuration,
        /// Run limits (use [`RunLimits::unlimited`] for the whole stream).
        limits: RunLimits,
    },
}

impl EvalJob {
    /// The steering configuration of the job.
    pub fn config(&self) -> &Configuration {
        match self {
            EvalJob::Point { config, .. }
            | EvalJob::Kernel { config, .. }
            | EvalJob::Trace { config, .. } => config,
        }
    }

    /// Short human-readable label (`workload × scheme`).
    pub fn label(&self, clusters: u32) -> String {
        let scheme = self.config().name(clusters);
        match self {
            EvalJob::Point { point, .. } => format!("{} × {scheme}", point.name),
            EvalJob::Kernel { program, .. } => format!("{} × {scheme}", program.name),
            EvalJob::Trace { path, .. } => {
                let file = path.file_name().map_or_else(
                    || path.display().to_string(),
                    |f| f.to_string_lossy().into_owned(),
                );
                format!("{file} × {scheme}")
            }
        }
    }
}

/// Outcome of one job: the statistics (or the trace error that stopped it)
/// plus the cell's wall-clock time on its worker.
#[derive(Debug)]
pub struct CellOutcome {
    /// Simulation statistics, or the error for unreadable trace jobs.
    /// `Point` jobs cannot fail.
    pub stats: Result<SimStats, TraceError>,
    /// Wall-clock time the cell spent on its worker thread (includes
    /// program generation / compiler pass / trace rewind, excludes queue
    /// wait).
    pub wall: Duration,
}

impl CellOutcome {
    /// Simulated micro-ops per wall-clock second for this cell (0 on
    /// error). With more workers than cores the figure degrades with
    /// contention; on an unloaded machine it is the per-cell throughput.
    pub fn uops_per_sec(&self) -> f64 {
        match &self.stats {
            Ok(s) if self.wall.as_secs_f64() > 0.0 => {
                s.committed_uops as f64 / self.wall.as_secs_f64()
            }
            _ => 0.0,
        }
    }
}

/// Scheduling telemetry of one job within a batch: where it ran and how
/// long it waited. All durations are measured from the batch's start
/// instant on the driver's clock.
#[derive(Debug, Clone)]
pub struct JobMetrics {
    /// Index of the worker thread that ran the job.
    pub worker: usize,
    /// Time from batch start until a worker picked the job up (queue wait).
    pub queued: Duration,
    /// Time the job spent running on its worker (same figure as
    /// [`CellOutcome::wall`]).
    pub run: Duration,
    /// Time from batch start until the job finished — the job's latency,
    /// the quantity the async-service success metric ("sustained uops/s
    /// and p99 job latency") is defined over.
    pub done_at: Duration,
}

/// Batch-level telemetry from [`EvalDriver::run_with_metrics`]: per-job
/// spans, per-worker utilization, and the job-latency distribution.
#[derive(Debug)]
pub struct BatchMetrics {
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Worker threads used.
    pub workers: usize,
    /// Per-job telemetry, in job order (parallel to the outcome vector).
    pub jobs: Vec<JobMetrics>,
    /// Job-latency histogram (`done_at`, in microseconds).
    pub latency_hist: Log2Hist,
}

impl BatchMetrics {
    /// Busy time per worker (sum of run spans scheduled onto it).
    pub fn worker_busy(&self) -> Vec<Duration> {
        let mut busy = vec![Duration::ZERO; self.workers];
        for m in &self.jobs {
            busy[m.worker] += m.run;
        }
        busy
    }

    /// Fraction of the batch's `workers × wall` budget spent running jobs,
    /// in [0, 1]. Low utilization with a deep queue means stragglers or
    /// load imbalance.
    pub fn utilization(&self) -> f64 {
        let budget = self.wall.as_secs_f64() * self.workers as f64;
        if budget <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.jobs.iter().map(|m| m.run.as_secs_f64()).sum();
        (busy / budget).min(1.0)
    }

    /// Job latency at quantile `q` (microseconds, log2-bucket resolution).
    pub fn latency_percentile(&self, q: f64) -> u64 {
        self.latency_hist.percentile(q)
    }

    /// Render the batch as a Chrome trace: one thread track per worker,
    /// one complete slice per job (`labels[i]` names job `i`; shorter
    /// label vectors fall back to the job index). Timestamps are real
    /// microseconds from batch start.
    pub fn chrome_trace(&self, labels: &[String]) -> ChromeTrace {
        let pid = 1;
        let mut trace = ChromeTrace::new();
        trace.process_name(pid, "EvalDriver");
        for w in 0..self.workers {
            trace.thread_name(pid, w as u64, &format!("worker {w}"));
            trace.thread_sort_index(pid, w as u64, w as u64);
        }
        for (i, m) in self.jobs.iter().enumerate() {
            let fallback;
            let name = match labels.get(i) {
                Some(l) => l.as_str(),
                None => {
                    fallback = format!("job {i}");
                    &fallback
                }
            };
            trace.complete(
                name,
                pid,
                m.worker as u64,
                m.queued.as_micros() as u64,
                m.run.as_micros() as u64,
                &[("queue_wait_us", m.queued.as_micros() as u64)],
            );
        }
        trace
    }
}

/// The batch engine: drains an [`EvalJob`] queue over worker threads with
/// per-worker session and trace-reader reuse.
#[derive(Debug, Clone)]
pub struct EvalDriver {
    machine: MachineConfig,
    threads: usize,
}

impl EvalDriver {
    /// A driver simulating every job on `machine`, with one worker per
    /// available CPU.
    pub fn new(machine: &MachineConfig) -> Self {
        EvalDriver {
            machine: machine.clone(),
            threads: 0,
        }
    }

    /// Use up to `n` worker threads (0 = one per available CPU).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Run every job to completion, returning outcomes in job order.
    pub fn run(&self, jobs: &[EvalJob]) -> Vec<CellOutcome> {
        self.run_streaming(jobs, |_, _| {})
    }

    /// Run every job, invoking `on_cell(index, outcome)` from the worker
    /// thread as each cell completes (completion order is scheduling-
    /// dependent; the returned vector is always in job order and its
    /// statistics are deterministic for any thread count).
    pub fn run_streaming(
        &self,
        jobs: &[EvalJob],
        on_cell: impl Fn(usize, &CellOutcome) + Sync,
    ) -> Vec<CellOutcome> {
        self.run_with_metrics(jobs, on_cell).0
    }

    /// [`EvalDriver::run_streaming`] plus batch telemetry: per-job
    /// queue-wait/run spans, which worker ran each job, per-worker
    /// utilization, and a job-latency histogram. The simulation outcomes
    /// are identical to the other entry points (all of them run through
    /// here); the metrics cost per job is two clock reads.
    pub fn run_with_metrics(
        &self,
        jobs: &[EvalJob],
        on_cell: impl Fn(usize, &CellOutcome) + Sync,
    ) -> (Vec<CellOutcome>, BatchMetrics) {
        let t0 = Instant::now();
        let n_jobs = jobs.len();
        let threads = if self.threads == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            self.threads
        }
        .min(n_jobs.max(1));

        let mut flat: Vec<Option<CellOutcome>> = (0..n_jobs).map(|_| None).collect();
        let mut metrics_flat: Vec<Option<JobMetrics>> = (0..n_jobs).map(|_| None).collect();
        if n_jobs > 0 {
            let next = AtomicUsize::new(0);
            let slots: Vec<std::sync::Mutex<&mut Option<CellOutcome>>> =
                flat.iter_mut().map(std::sync::Mutex::new).collect();
            let metric_slots: Vec<std::sync::Mutex<&mut Option<JobMetrics>>> =
                metrics_flat.iter_mut().map(std::sync::Mutex::new).collect();
            let (next, slots, metric_slots, on_cell) = (&next, &slots, &metric_slots, &on_cell);
            std::thread::scope(|scope| {
                for w in 0..threads {
                    scope.spawn(move || {
                        let mut worker = Worker::new(&self.machine);
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n_jobs {
                                break;
                            }
                            let queued = t0.elapsed();
                            let start = Instant::now();
                            let stats = worker.run_job(&jobs[i]);
                            let outcome = CellOutcome {
                                stats,
                                wall: start.elapsed(),
                            };
                            on_cell(i, &outcome);
                            let metrics = JobMetrics {
                                worker: w,
                                queued,
                                run: outcome.wall,
                                done_at: t0.elapsed(),
                            };
                            **slots[i].lock().expect("slot lock") = Some(outcome);
                            **metric_slots[i].lock().expect("metric lock") = Some(metrics);
                        }
                    });
                }
            });
        }
        let wall = t0.elapsed();
        let outcomes: Vec<CellOutcome> = flat
            .into_iter()
            .map(|c| c.expect("every job produced an outcome"))
            .collect();
        let job_metrics: Vec<JobMetrics> = metrics_flat
            .into_iter()
            .map(|m| m.expect("every job produced metrics"))
            .collect();
        let mut latency_hist = Log2Hist::new();
        for m in &job_metrics {
            latency_hist.record(m.done_at.as_micros() as u64);
        }
        (
            outcomes,
            BatchMetrics {
                wall,
                workers: threads,
                jobs: job_metrics,
                latency_hist,
            },
        )
    }
}

/// A cached open trace: the reader (parsed once) plus the pristine
/// embedded program, cloned per configuration before the hint swap.
struct CachedTrace {
    reader: TraceReader<BufReader<File>>,
    pristine: Program,
}

/// Per-worker reusable state.
struct Worker<'m> {
    machine: &'m MachineConfig,
    session: SimSession,
    traces: HashMap<PathBuf, CachedTrace>,
}

impl<'m> Worker<'m> {
    fn new(machine: &'m MachineConfig) -> Self {
        Worker {
            machine,
            session: SimSession::new(machine),
            traces: HashMap::new(),
        }
    }

    fn run_job(&mut self, job: &EvalJob) -> Result<SimStats, TraceError> {
        match job {
            EvalJob::Point {
                point,
                config,
                uops,
            } => Ok(run_point_on(
                &mut self.session,
                point,
                config,
                self.machine,
                *uops,
            )),
            EvalJob::Kernel {
                program,
                params,
                seed,
                config,
                uops,
            } => {
                let program = annotate_for_replay(program.clone(), config, self.machine);
                let mut trace = TraceExpander::new(&program, params, *seed);
                let mut policy = config.make_policy();
                Ok(self.session.simulate(
                    self.machine,
                    &mut trace,
                    policy.as_mut(),
                    &RunLimits::uops(*uops),
                ))
            }
            EvalJob::Trace {
                path,
                config,
                limits,
            } => {
                let cached = match self.traces.entry(path.clone()) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let reader = TraceReader::open(path)?;
                        let pristine = reader.program().clone();
                        e.insert(CachedTrace { reader, pristine })
                    }
                };
                // The `replay_trace` preparation, over the already-parsed,
                // rewound reader.
                let program = annotate_for_replay(cached.pristine.clone(), config, self.machine);
                cached.reader.set_program(program)?;
                cached.reader.rewind()?;
                let mut policy = config.make_policy();
                let stats = self.session.simulate(
                    self.machine,
                    &mut cached.reader,
                    policy.as_mut(),
                    limits,
                );
                // Errors inside the simulation loop surface as a silently-
                // ended trace; re-raise them so a corrupt file can never
                // masquerade as a short run.
                if let Some(err) = cached.reader.take_error() {
                    return Err(err);
                }
                Ok(stats)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::run_point;
    use crate::replay::{record_point, replay_trace};
    use virtclust_trace::Codec;
    use virtclust_uarch::{ArchReg, RegionBuilder};
    use virtclust_workloads::spec2000_points;

    fn point(name: &str) -> TracePoint {
        spec2000_points()
            .into_iter()
            .find(|p| p.name == name)
            .expect("suite point")
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("virtclust-batch-{}-{name}", std::process::id()))
    }

    #[test]
    fn point_jobs_match_run_point_bit_for_bit() {
        let machine = MachineConfig::paper_2cluster();
        let p = point("gzip-1");
        let jobs: Vec<EvalJob> = Configuration::table3()
            .into_iter()
            .map(|config| EvalJob::Point {
                point: p.clone(),
                config,
                uops: 1_500,
            })
            .collect();
        let outcomes = EvalDriver::new(&machine).threads(1).run(&jobs);
        for (job, outcome) in jobs.iter().zip(&outcomes) {
            let live = run_point(&p, job.config(), &machine, 1_500);
            assert_eq!(&live, outcome.stats.as_ref().unwrap(), "{}", job.label(2));
        }
    }

    #[test]
    fn trace_jobs_match_replay_trace_and_reuse_one_reader() {
        let machine = MachineConfig::paper_2cluster();
        let p = point("eon-1");
        let path = tmp("eon.vctb");
        record_point(&p, 2_000, Codec::Binary, &path).unwrap();
        // One worker, five schemes over the same file: the reader is opened
        // once and rewound four times.
        let jobs: Vec<EvalJob> = Configuration::table3()
            .into_iter()
            .map(|config| EvalJob::Trace {
                path: path.clone(),
                config,
                limits: RunLimits::unlimited(),
            })
            .collect();
        let outcomes = EvalDriver::new(&machine).threads(1).run(&jobs);
        for (job, outcome) in jobs.iter().zip(&outcomes) {
            let direct =
                replay_trace(&path, job.config(), &machine, &RunLimits::unlimited()).unwrap();
            assert_eq!(&direct, outcome.stats.as_ref().unwrap(), "{}", job.label(2));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kernel_jobs_match_a_manual_expander_run() {
        let machine = MachineConfig::paper_2cluster();
        let r = ArchReg::int;
        let mut program = Program::new("kern");
        program.add_region(
            RegionBuilder::new(0, "body")
                .alu(r(1), &[r(1), r(2)])
                .load(r(3), r(1))
                .alu(r(2), &[r(3)])
                .branch(r(2))
                .build(),
        );
        let params = KernelParams::base_int();
        let config = Configuration::Vc { num_vcs: 2 };
        let job = EvalJob::Kernel {
            program: program.clone(),
            params,
            seed: 9,
            config,
            uops: 1_200,
        };
        let outcomes = EvalDriver::new(&machine).run(std::slice::from_ref(&job));
        let manual = {
            let mut annotated = program.clone();
            annotated.clear_hints();
            config
                .software_pass(2)
                .apply(&mut annotated, &machine.latencies);
            let mut trace = TraceExpander::new(&annotated, &params, 9);
            let mut policy = config.make_policy();
            virtclust_sim::simulate(
                &machine,
                &mut trace,
                policy.as_mut(),
                &RunLimits::uops(1_200),
            )
        };
        assert_eq!(&manual, outcomes[0].stats.as_ref().unwrap());
    }

    #[test]
    fn heterogeneous_queue_is_deterministic_across_1_2_8_threads() {
        let machine = MachineConfig::paper_2cluster();
        let path = tmp("mix.vct");
        record_point(&point("gzip-1"), 1_000, Codec::Text, &path).unwrap();
        let mut jobs: Vec<EvalJob> = vec![
            EvalJob::Point {
                point: point("crafty"),
                config: Configuration::Op,
                uops: 800,
            },
            EvalJob::Trace {
                path: path.clone(),
                config: Configuration::Vc { num_vcs: 2 },
                limits: RunLimits::unlimited(),
            },
        ];
        for config in Configuration::table3() {
            jobs.push(EvalJob::Point {
                point: point("galgel"),
                config,
                uops: 600,
            });
            jobs.push(EvalJob::Trace {
                path: path.clone(),
                config,
                limits: RunLimits::uops(500),
            });
        }
        let stats_of = |threads: usize| -> Vec<SimStats> {
            EvalDriver::new(&machine)
                .threads(threads)
                .run(&jobs)
                .into_iter()
                .map(|o| o.stats.expect("readable"))
                .collect()
        };
        let one = stats_of(1);
        let two = stats_of(2);
        let eight = stats_of(8);
        assert_eq!(one, two, "1 vs 2 workers");
        assert_eq!(one, eight, "1 vs 8 workers");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_callback_sees_every_cell_exactly_once() {
        let machine = MachineConfig::paper_2cluster();
        let jobs: Vec<EvalJob> = Configuration::table3()
            .into_iter()
            .map(|config| EvalJob::Point {
                point: point("gzip-1"),
                config,
                uops: 400,
            })
            .collect();
        let seen = std::sync::Mutex::new(vec![0u32; jobs.len()]);
        let outcomes = EvalDriver::new(&machine)
            .threads(2)
            .run_streaming(&jobs, |i, outcome| {
                assert!(outcome.stats.is_ok());
                seen.lock().unwrap()[i] += 1;
            });
        assert_eq!(outcomes.len(), jobs.len());
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
        // Per-cell throughput is a positive finite number.
        assert!(outcomes.iter().all(|o| o.uops_per_sec() > 0.0));
    }

    #[test]
    fn run_with_metrics_matches_run_and_accounts_every_job() {
        let machine = MachineConfig::paper_2cluster();
        let jobs: Vec<EvalJob> = Configuration::table3()
            .into_iter()
            .map(|config| EvalJob::Point {
                point: point("gzip-1"),
                config,
                uops: 500,
            })
            .collect();
        let driver = EvalDriver::new(&machine).threads(2);
        let plain = driver.run(&jobs);
        let (outcomes, metrics) = driver.run_with_metrics(&jobs, |_, _| {});
        for (a, b) in plain.iter().zip(&outcomes) {
            assert_eq!(a.stats.as_ref().unwrap(), b.stats.as_ref().unwrap());
        }

        assert_eq!(metrics.workers, 2);
        assert_eq!(metrics.jobs.len(), jobs.len());
        assert_eq!(metrics.latency_hist.count(), jobs.len() as u64);
        for m in &metrics.jobs {
            assert!(m.worker < metrics.workers);
            assert!(m.done_at >= m.queued, "finish after pickup");
            assert!(m.done_at <= metrics.wall + Duration::from_millis(1));
        }
        let busy = metrics.worker_busy();
        assert_eq!(busy.len(), 2);
        let total_run: Duration = metrics.jobs.iter().map(|m| m.run).sum();
        assert_eq!(busy.iter().sum::<Duration>(), total_run);
        let u = metrics.utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
        assert!(metrics.latency_percentile(0.99) >= metrics.latency_percentile(0.5));
    }

    #[test]
    fn batch_chrome_trace_has_a_slice_per_job() {
        let machine = MachineConfig::paper_2cluster();
        let jobs: Vec<EvalJob> = Configuration::table3()
            .into_iter()
            .map(|config| EvalJob::Point {
                point: point("gzip-1"),
                config,
                uops: 300,
            })
            .collect();
        let (_, metrics) = EvalDriver::new(&machine)
            .threads(2)
            .run_with_metrics(&jobs, |_, _| {});
        let labels: Vec<String> = jobs.iter().map(|j| j.label(2)).collect();
        let trace = metrics.chrome_trace(&labels);
        // One process_name + per-worker (name + sort) + one slice per job.
        assert_eq!(trace.len(), 1 + 2 * metrics.workers + jobs.len());
        let json = trace.to_json();
        assert!(json.contains("EvalDriver"));
        assert!(json.contains(&labels[0]));
    }

    #[test]
    fn unreadable_trace_jobs_error_without_poisoning_the_queue() {
        let machine = MachineConfig::paper_2cluster();
        let jobs = vec![
            EvalJob::Trace {
                path: PathBuf::from("/nonexistent/ghost.vctb"),
                config: Configuration::Op,
                limits: RunLimits::unlimited(),
            },
            EvalJob::Point {
                point: point("gzip-1"),
                config: Configuration::Op,
                uops: 300,
            },
        ];
        let outcomes = EvalDriver::new(&machine).threads(1).run(&jobs);
        assert!(outcomes[0].stats.is_err());
        assert_eq!(
            outcomes[1].stats.as_ref().unwrap().committed_uops,
            300,
            "the queue keeps draining after an error"
        );
    }
}
