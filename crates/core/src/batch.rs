//! The batched evaluation engine: a job queue of heterogeneous simulation
//! cells drained by workers that **reuse** everything reusable — and keep
//! draining when individual cells fail.
//!
//! [`run_matrix`](crate::runner::run_matrix) fans the (point ×
//! configuration) matrix out over threads, but historically every cell
//! built a fresh machine (≈1 MB of allocations: cache line arrays,
//! predictor tables, event calendar) and every replayed cell re-opened and
//! re-parsed its trace. [`EvalDriver`] replaces that with service-style
//! plumbing:
//!
//! * each worker owns one [`SimSession`], reset — not reallocated — per
//!   cell;
//! * each worker caches open [`TraceReader`]s, so a `.vct`/`.vctb` file is
//!   parsed once and then [`rewound`](TraceReader::rewind) per cell (with
//!   [`TraceReader::set_program`] swapping the steering hints per
//!   configuration);
//! * jobs are heterogeneous ([`EvalJob`]): generated suite points, imported
//!   kernel programs, and stored-trace replays mix freely in one queue;
//! * completion streams through an `on_cell` callback as cells finish
//!   (out of order), while the returned vector is always in job order —
//!   so results are deterministic regardless of worker count.
//!
//! # Fault tolerance
//!
//! A batch is only as useful as its worst job lets it be, so the engine
//! hardens every per-cell seam (testable deterministically via
//! [`crate::fault`]):
//!
//! * **Typed failures** — every cell resolves to a [`CellOutcome`] whose
//!   error is a [`JobError`]: a trace error (split transient vs permanent
//!   by [`TraceError::is_transient`]), a caught panic, a missed deadline,
//!   or a cancellation. One bad job is one bad outcome, never an abort.
//! * **Panic isolation** — `catch_unwind` wraps each attempt; a panicked
//!   worker *quarantines* (fresh session, dropped trace cache, since its
//!   state died mid-mutation) and keeps draining the queue. Outcomes are
//!   collected over a channel, not shared mutexes, so a panic anywhere
//!   can poison nothing. A panicking `on_cell` callback is caught too and
//!   the first one is resurfaced exactly once after all workers join.
//! * **Bounded retries** — [`run_resilient`](EvalDriver::run_resilient)
//!   takes a [`RetryPolicy`]; transient errors (and optionally panics)
//!   re-attempt after a full worker-state rebuild, so a retried success
//!   is bit-identical to a fault-free run (the session bit-identity
//!   contract: a rebuilt worker *is* a fresh machine).
//! * **Deadlines and cancellation** — per-job wall-clock deadlines and a
//!   batch-level [`BatchHandle`] ride the cooperative interrupt checks
//!   inside [`SimSession`]'s run loop (one relaxed load per
//!   `CHECK_INTERVAL_CYCLES`, composing with cycle skipping): running
//!   jobs stop at the next check, queued jobs resolve to
//!   [`JobError::Cancelled`] without running, and the worker's session
//!   resets cleanly for whatever comes next.
//!
//! `run_matrix` is now one [`EvalDriver::run`] call, so every figure,
//! metric and replay-comparison path in the repo goes through the batch
//! engine; the fault machinery costs the fault-free path nothing
//! measurable (a disarmed failpoint is one relaxed atomic load, and the
//! interrupt poll is one `Option` branch).
//!
//! # Job intake
//!
//! Jobs reach the workers through a pull-based [`JobSource`]: the
//! slice-based entry points wrap their `&[EvalJob]` in an internal
//! atomic-cursor source, and a long-lived front end (the `virtclust-svc`
//! evaluation service) implements the trait over its priority queues —
//! both drain through [`EvalDriver::drain_source`], the one worker loop,
//! so batch and service execution are the same code path. A [`SourcedJob`]
//! may carry its own cancellation token and deadline (per-client fan-out),
//! composing with the batch-level [`ResilientOptions`].
//!
//! Driver-side seams degrade, never panic: outcome collection recovers
//! from a poisoned slot mutex ([`std::sync::PoisonError::into_inner`] —
//! the slots are plain writes), a worker that somehow produces no outcome
//! yields a typed [`JobError::Panicked`] placeholder instead of unwinding
//! the collector, and cached-reader rebuilds surface [`TraceError`]s
//! through the retry machinery. The module denies `clippy::unwrap_used` /
//! `clippy::expect_used` outside tests to keep it that way.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::any::Any;
use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::BufReader;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use virtclust_obs::{ChromeTrace, Counter, Log2Hist};
use virtclust_sim::{CancelToken, RunLimits, SimSession, SimStats, StopCause};
use virtclust_trace::{TraceError, TraceReader};
use virtclust_uarch::{MachineConfig, Program};
use virtclust_workloads::{KernelParams, TraceExpander, TracePoint};

use crate::experiment::{run_point_on, Configuration};
use crate::fault;
use crate::replay::annotate_for_replay;

/// One unit of work for the [`EvalDriver`]: a workload crossed with a
/// steering configuration.
#[derive(Debug, Clone)]
pub enum EvalJob {
    /// A generated suite point, exactly as [`crate::run_point`] would run
    /// it: build the point's program, apply the configuration's compiler
    /// pass, expand and simulate `uops` micro-ops.
    Point {
        /// The suite point to generate.
        point: TracePoint,
        /// Steering configuration.
        config: Configuration,
        /// Micro-op budget.
        uops: u64,
    },
    /// An imported (or hand-built) kernel program expanded with the
    /// synthetic dynamic model. Hints are cleared before the
    /// configuration's pass runs, so an annotated input does not leak
    /// stale steering decisions.
    Kernel {
        /// The static program (e.g. from `virtclust-trace`'s importer).
        program: Program,
        /// Dynamic-behaviour parameters for the expander.
        params: KernelParams,
        /// Expansion seed.
        seed: u64,
        /// Steering configuration.
        config: Configuration,
        /// Micro-op budget.
        uops: u64,
    },
    /// Replay of a stored `.vct`/`.vctb` trace, exactly as
    /// [`crate::replay_trace`] would: clear the embedded program's hints,
    /// apply the configuration's pass, stream the stored dynamic facts.
    /// Workers keep the reader open across jobs and rewind it, so a file
    /// is parsed once per worker no matter how many configurations replay
    /// it.
    Trace {
        /// Path of the stored trace.
        path: PathBuf,
        /// Steering configuration.
        config: Configuration,
        /// Run limits (use [`RunLimits::unlimited`] for the whole stream).
        limits: RunLimits,
    },
}

impl EvalJob {
    /// The steering configuration of the job.
    pub fn config(&self) -> &Configuration {
        match self {
            EvalJob::Point { config, .. }
            | EvalJob::Kernel { config, .. }
            | EvalJob::Trace { config, .. } => config,
        }
    }

    /// Short human-readable label (`workload × scheme`).
    pub fn label(&self, clusters: u32) -> String {
        let scheme = self.config().name(clusters);
        match self {
            EvalJob::Point { point, .. } => format!("{} × {scheme}", point.name),
            EvalJob::Kernel { program, .. } => format!("{} × {scheme}", program.name),
            EvalJob::Trace { path, .. } => {
                let file = path.file_name().map_or_else(
                    || path.display().to_string(),
                    |f| f.to_string_lossy().into_owned(),
                );
                format!("{file} × {scheme}")
            }
        }
    }
}

/// A pull-based job intake: workers call [`pull`](JobSource::pull)
/// concurrently until it returns `None`, which ends the drain (a source
/// is drained once, not polled again). The slice entry points use an
/// internal atomic-cursor source over `&[EvalJob]`; a service front end
/// implements this over its priority queues (blocking in `pull` until a
/// job arrives or the service shuts down) so socket intake and batch
/// intake share one worker loop.
pub trait JobSource: Sync {
    /// The next job to run, or `None` when the source is permanently
    /// drained. Called concurrently from every worker thread; a blocking
    /// implementation stalls only the calling worker.
    fn pull(&self) -> Option<SourcedJob<'_>>;
}

/// One job handed out by a [`JobSource`], with optional per-job interrupt
/// overrides (a service's per-client cancellation token, a per-request
/// deadline). The `ticket` is the source's own identifier for the job and
/// is passed through verbatim to the [`JobDone`] delivery.
#[derive(Debug)]
pub struct SourcedJob<'a> {
    /// Source-chosen identifier, echoed in [`JobDone::ticket`].
    pub ticket: u64,
    /// The job itself; borrowed for slice sources, owned for queues that
    /// hand over their jobs.
    pub job: Cow<'a, EvalJob>,
    /// Per-job cancellation token. When set it **replaces** the batch
    /// token ([`ResilientOptions::token`]) for this job's run; batch-level
    /// cancellation is still honoured before the job starts.
    pub token: Option<CancelToken>,
    /// Per-job wall-clock budget; the effective deadline is the smaller
    /// of this and [`ResilientOptions::deadline`].
    pub deadline: Option<Duration>,
}

impl<'a> SourcedJob<'a> {
    /// A sourced job with no per-job interrupt overrides.
    pub fn new(ticket: u64, job: Cow<'a, EvalJob>) -> Self {
        SourcedJob {
            ticket,
            job,
            token: None,
            deadline: None,
        }
    }
}

/// A completed sourced job, delivered to [`EvalDriver::drain_source`]'s
/// sink from the worker thread that ran it (completion order is
/// scheduling-dependent).
#[derive(Debug)]
pub struct JobDone {
    /// The [`SourcedJob::ticket`] this outcome belongs to.
    pub ticket: u64,
    /// Index of the worker thread that ran the job.
    pub worker: usize,
    /// When the worker pulled the job off the source (queue wait is
    /// `picked_at` minus the source's own submit timestamp).
    pub picked_at: Instant,
    /// The job's outcome.
    pub outcome: CellOutcome,
    /// Fault bookkeeping across the job's attempts.
    pub tally: JobTally,
}

/// The internal source behind the slice-based entry points: an atomic
/// cursor over a borrowed job slice — exactly the pre-service drain
/// order, so slice batches stay deterministic for any worker count.
struct SliceSource<'a> {
    jobs: &'a [EvalJob],
    next: AtomicUsize,
}

impl JobSource for SliceSource<'_> {
    fn pull(&self) -> Option<SourcedJob<'_>> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        self.jobs
            .get(i)
            .map(|job| SourcedJob::new(i as u64, Cow::Borrowed(job)))
    }
}

/// Why a job failed. The taxonomy drives the [`RetryPolicy`]: trace
/// errors split transient-vs-permanent via [`TraceError::is_transient`],
/// panics are retryable only if explicitly opted into, and
/// deadline/cancellation outcomes are never retried (the budget or the
/// caller already decided).
#[derive(Debug)]
pub enum JobError {
    /// The trace layer failed (open, parse, rewind, program swap, or an
    /// error surfaced mid-stream).
    Trace(TraceError),
    /// The job panicked on its worker; the panic was caught, the worker
    /// quarantined, and the batch kept going.
    Panicked {
        /// The panic payload's message.
        message: String,
    },
    /// The job's wall-clock deadline passed; the run stopped at the next
    /// cooperative check.
    DeadlineExceeded {
        /// How long the job had been running (across attempts) when it
        /// was stopped.
        after: Duration,
    },
    /// The batch was cancelled: either before this job started (it never
    /// ran) or mid-run (it stopped at the next cooperative check).
    Cancelled,
}

impl JobError {
    /// Whether retrying could plausibly succeed (used by the default
    /// [`RetryPolicy`]): transient trace errors only. Panics are opt-in
    /// via [`RetryPolicy::retry_panics`]; deadline and cancellation are
    /// final by definition.
    pub fn is_transient(&self) -> bool {
        match self {
            JobError::Trace(e) => e.is_transient(),
            _ => false,
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Trace(e) => write!(f, "{e}"),
            JobError::Panicked { message } => write!(f, "job panicked: {message}"),
            JobError::DeadlineExceeded { after } => {
                write!(f, "job deadline exceeded after {after:?}")
            }
            JobError::Cancelled => write!(f, "job cancelled"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for JobError {
    fn from(e: TraceError) -> Self {
        JobError::Trace(e)
    }
}

/// Bounded retry policy for [`EvalDriver::run_resilient`]. An error is
/// retried while the attempt count is within budget **and** the error
/// class qualifies: transient trace errors always qualify, panics only
/// with [`retry_panics`](RetryPolicy::retry_panics), permanent trace
/// errors, deadlines and cancellations never. Every retry rebuilds the
/// worker's state (fresh session, dropped trace cache) so a retried
/// success is bit-identical to a fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum *re*-attempts per job (0 = first failure is final).
    pub max_retries: u32,
    /// Also retry jobs that panicked (after quarantine). Off by default:
    /// a panic is a bug, and retrying one hides it unless the caller
    /// explicitly wants availability over signal.
    pub retry_panics: bool,
}

impl RetryPolicy {
    /// No retries: the first failure is the job's outcome.
    pub fn none() -> Self {
        RetryPolicy::default()
    }

    /// Retry transient errors up to `max_retries` times.
    pub fn transient(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            retry_panics: false,
        }
    }

    /// Whether to retry after `err`, given `attempts` attempts already
    /// made.
    pub fn should_retry(&self, err: &JobError, attempts: u32) -> bool {
        if attempts > self.max_retries {
            return false;
        }
        match err {
            JobError::Trace(e) => e.is_transient(),
            JobError::Panicked { .. } => self.retry_panics,
            JobError::DeadlineExceeded { .. } | JobError::Cancelled => false,
        }
    }
}

/// A batch-level cancellation handle: clone-free to create, cheap to
/// share, and usable from any thread (including an `on_cell` callback).
/// Pass it to [`ResilientOptions::cancelled_by`]; calling
/// [`cancel`](BatchHandle::cancel) resolves queued jobs to
/// [`JobError::Cancelled`] without running them and stops running jobs at
/// their next cooperative check.
#[derive(Debug, Clone, Default)]
pub struct BatchHandle {
    token: CancelToken,
}

impl BatchHandle {
    /// A fresh, un-cancelled handle.
    pub fn new() -> Self {
        BatchHandle::default()
    }

    /// Request cancellation of every batch using this handle.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.token.is_cancelled()
    }

    /// The underlying [`CancelToken`] (shares this handle's flag).
    pub fn token(&self) -> CancelToken {
        self.token.clone()
    }
}

/// Options for [`EvalDriver::run_resilient`]: retry budget, per-job
/// wall-clock deadline, and an optional cancellation source.
#[derive(Debug, Clone, Default)]
pub struct ResilientOptions {
    /// Retry policy (default: no retries).
    pub retry: RetryPolicy,
    /// Per-job wall-clock budget, covering all of the job's attempts.
    /// `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Cancellation source shared with a [`BatchHandle`] (or any
    /// [`CancelToken`] clone). `None` = not cancellable.
    pub token: Option<CancelToken>,
}

impl ResilientOptions {
    /// Defaults: no retries, no deadline, not cancellable.
    pub fn new() -> Self {
        ResilientOptions::default()
    }

    /// Retry transient failures up to `n` times per job.
    #[must_use]
    pub fn retries(mut self, n: u32) -> Self {
        self.retry.max_retries = n;
        self
    }

    /// Also retry panicked jobs (see [`RetryPolicy::retry_panics`]).
    #[must_use]
    pub fn retry_panics(mut self, yes: bool) -> Self {
        self.retry.retry_panics = yes;
        self
    }

    /// Give every job a wall-clock budget of `d` (all attempts included).
    #[must_use]
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Make the batch cancellable through `handle`.
    #[must_use]
    pub fn cancelled_by(mut self, handle: &BatchHandle) -> Self {
        self.token = Some(handle.token());
        self
    }
}

/// Outcome of one job: the statistics (or the typed [`JobError`] that
/// stopped it) plus the cell's wall-clock time on its worker.
#[derive(Debug)]
pub struct CellOutcome {
    /// Simulation statistics, or why the job failed. Under
    /// [`EvalDriver::run`]/[`run_with_metrics`](EvalDriver::run_with_metrics)
    /// `Point`/`Kernel` jobs cannot fail (only trace jobs can); under
    /// [`run_resilient`](EvalDriver::run_resilient) any job can resolve
    /// to a deadline, cancellation or (isolated) panic.
    pub stats: Result<SimStats, JobError>,
    /// Wall-clock time the cell spent on its worker thread (includes
    /// program generation / compiler pass / trace rewind and every retry
    /// attempt, excludes queue wait; zero for jobs cancelled before they
    /// started).
    pub wall: Duration,
}

impl CellOutcome {
    /// Simulated micro-ops per wall-clock second for this cell (0 on
    /// error). With more workers than cores the figure degrades with
    /// contention; on an unloaded machine it is the per-cell throughput.
    pub fn uops_per_sec(&self) -> f64 {
        match &self.stats {
            Ok(s) if self.wall.as_secs_f64() > 0.0 => {
                s.committed_uops as f64 / self.wall.as_secs_f64()
            }
            _ => 0.0,
        }
    }
}

/// Scheduling telemetry of one job within a batch: where it ran and how
/// long it waited. All durations are measured from the batch's start
/// instant on the driver's clock.
#[derive(Debug, Clone)]
pub struct JobMetrics {
    /// Index of the worker thread that ran the job.
    pub worker: usize,
    /// Time from batch start until a worker picked the job up (queue wait).
    pub queued: Duration,
    /// Time the job spent running on its worker (same figure as
    /// [`CellOutcome::wall`]).
    pub run: Duration,
    /// Time from batch start until the job finished — the job's latency,
    /// the quantity the async-service success metric ("sustained uops/s
    /// and p99 job latency") is defined over.
    pub done_at: Duration,
}

/// Batch-level telemetry from [`EvalDriver::run_with_metrics`]: per-job
/// spans, per-worker utilization, and the job-latency distribution.
#[derive(Debug)]
pub struct BatchMetrics {
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Worker threads used.
    pub workers: usize,
    /// Per-job telemetry, in job order (parallel to the outcome vector).
    pub jobs: Vec<JobMetrics>,
    /// Job-latency histogram over **successful** jobs only (`done_at`, in
    /// microseconds). Failed/cancelled cells go to
    /// [`failed_latency_hist`](BatchMetrics::failed_latency_hist) so that
    /// the p99 the async-service metric is defined over is not dragged
    /// around by instantly-resolving errors or deadline-length failures.
    pub latency_hist: Log2Hist,
    /// Job-latency histogram over failed/cancelled jobs (`done_at`, in
    /// microseconds).
    pub failed_latency_hist: Log2Hist,
}

impl BatchMetrics {
    /// Busy time per worker (sum of run spans scheduled onto it).
    pub fn worker_busy(&self) -> Vec<Duration> {
        let mut busy = vec![Duration::ZERO; self.workers];
        for m in &self.jobs {
            busy[m.worker] += m.run;
        }
        busy
    }

    /// Fraction of the batch's `workers × wall` budget spent running jobs,
    /// in [0, 1]. Low utilization with a deep queue means stragglers or
    /// load imbalance.
    pub fn utilization(&self) -> f64 {
        let budget = self.wall.as_secs_f64() * self.workers as f64;
        if budget <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.jobs.iter().map(|m| m.run.as_secs_f64()).sum();
        (busy / budget).min(1.0)
    }

    /// Latency at quantile `q` over **successful** jobs (microseconds,
    /// log2-bucket resolution). Unaffected by failed or cancelled cells.
    pub fn latency_percentile(&self, q: f64) -> u64 {
        self.latency_hist.percentile(q)
    }

    /// Render the batch as a Chrome trace: one thread track per worker,
    /// one complete slice per job (`labels[i]` names job `i`; shorter
    /// label vectors fall back to the job index). Timestamps are real
    /// microseconds from batch start.
    pub fn chrome_trace(&self, labels: &[String]) -> ChromeTrace {
        let pid = 1;
        let mut trace = ChromeTrace::new();
        trace.process_name(pid, "EvalDriver");
        for w in 0..self.workers {
            trace.thread_name(pid, w as u64, &format!("worker {w}"));
            trace.thread_sort_index(pid, w as u64, w as u64);
        }
        for (i, m) in self.jobs.iter().enumerate() {
            let fallback;
            let name = match labels.get(i) {
                Some(l) => l.as_str(),
                None => {
                    fallback = format!("job {i}");
                    &fallback
                }
            };
            trace.complete(
                name,
                pid,
                m.worker as u64,
                m.queued.as_micros() as u64,
                m.run.as_micros() as u64,
                &[("queue_wait_us", m.queued.as_micros() as u64)],
            );
        }
        trace
    }
}

/// Degraded-completion summary from [`EvalDriver::run_resilient`]:
/// per-job attempt counts and fault/retry/cancel counters
/// ([`virtclust_obs::Counter`]), plus the batch telemetry.
#[derive(Debug)]
pub struct BatchReport {
    /// Attempts per job, in job order (0 = cancelled before it started;
    /// 1 = succeeded or failed on the first attempt; >1 = retried).
    pub attempts: Vec<u32>,
    /// Jobs that produced statistics.
    pub ok: Counter,
    /// Jobs whose final outcome is an error of any kind.
    pub failed: Counter,
    /// Total re-attempts across the batch (Σ max(attempts − 1, 0)).
    pub retries: Counter,
    /// Panics caught across all attempts (retried panics count too).
    pub panics: Counter,
    /// Transient trace errors observed across all attempts (a retried-
    /// then-successful fault still counts — this is the fault counter,
    /// not the failure counter).
    pub transient_faults: Counter,
    /// Jobs whose final outcome is [`JobError::Cancelled`].
    pub cancelled: Counter,
    /// Jobs whose final outcome is [`JobError::DeadlineExceeded`].
    pub deadline_exceeded: Counter,
    /// Batch telemetry (success/failure-split latency histograms).
    pub metrics: BatchMetrics,
}

impl BatchReport {
    fn build(outcomes: &[CellOutcome], tallies: &[JobTally], metrics: BatchMetrics) -> Self {
        let mut report = BatchReport {
            attempts: tallies.iter().map(|t| t.attempts).collect(),
            ok: Counter::new(),
            failed: Counter::new(),
            retries: Counter::new(),
            panics: Counter::new(),
            transient_faults: Counter::new(),
            cancelled: Counter::new(),
            deadline_exceeded: Counter::new(),
            metrics,
        };
        for (outcome, tally) in outcomes.iter().zip(tallies) {
            match &outcome.stats {
                Ok(_) => report.ok.inc(),
                Err(e) => {
                    report.failed.inc();
                    match e {
                        JobError::Cancelled => report.cancelled.inc(),
                        JobError::DeadlineExceeded { .. } => report.deadline_exceeded.inc(),
                        _ => {}
                    }
                }
            }
            report
                .retries
                .add(u64::from(tally.attempts.saturating_sub(1)));
            report.panics.add(u64::from(tally.panics));
            report.transient_faults.add(u64::from(tally.transient));
        }
        report
    }

    /// Whether any job's final outcome is an error — the batch completed
    /// degraded rather than fully.
    pub fn degraded(&self) -> bool {
        self.failed.get() > 0
    }

    /// One-line human-readable completion summary.
    pub fn summary(&self) -> String {
        format!(
            "{} jobs: {} ok, {} failed ({} cancelled, {} deadline-exceeded); \
             {} retries, {} panics caught, {} transient faults",
            self.attempts.len(),
            self.ok,
            self.failed,
            self.cancelled,
            self.deadline_exceeded,
            self.retries,
            self.panics,
            self.transient_faults,
        )
    }
}

/// Per-job fault bookkeeping, carried next to the outcome (and delivered
/// with every [`JobDone`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct JobTally {
    /// Attempts made (0 = cancelled before the first).
    pub attempts: u32,
    /// Panics caught (across attempts).
    pub panics: u32,
    /// Transient trace errors observed (across attempts).
    pub transient: u32,
}

/// The batch engine: drains an [`EvalJob`] queue over worker threads with
/// per-worker session and trace-reader reuse.
#[derive(Debug, Clone)]
pub struct EvalDriver {
    machine: MachineConfig,
    threads: usize,
}

impl EvalDriver {
    /// A driver simulating every job on `machine`, with one worker per
    /// available CPU.
    pub fn new(machine: &MachineConfig) -> Self {
        EvalDriver {
            machine: machine.clone(),
            threads: 0,
        }
    }

    /// Use up to `n` worker threads (0 = one per available CPU).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Run every job to completion, returning outcomes in job order.
    pub fn run(&self, jobs: &[EvalJob]) -> Vec<CellOutcome> {
        self.run_streaming(jobs, |_, _| {})
    }

    /// Run every job, invoking `on_cell(index, outcome)` from the worker
    /// thread as each cell completes (completion order is scheduling-
    /// dependent; the returned vector is always in job order and its
    /// statistics are deterministic for any thread count). A panicking
    /// callback does not disturb the batch: every job still runs, and the
    /// first panic is rethrown once after the workers join.
    pub fn run_streaming(
        &self,
        jobs: &[EvalJob],
        on_cell: impl Fn(usize, &CellOutcome) + Sync,
    ) -> Vec<CellOutcome> {
        self.run_with_metrics(jobs, on_cell).0
    }

    /// [`EvalDriver::run_streaming`] plus batch telemetry: per-job
    /// queue-wait/run spans, which worker ran each job, per-worker
    /// utilization, and success/failure-split job-latency histograms. The
    /// simulation outcomes are identical to the other entry points (all
    /// of them run through here); the metrics cost per job is two clock
    /// reads.
    pub fn run_with_metrics(
        &self,
        jobs: &[EvalJob],
        on_cell: impl Fn(usize, &CellOutcome) + Sync,
    ) -> (Vec<CellOutcome>, BatchMetrics) {
        let (outcomes, metrics, _) = self.run_engine(jobs, None, &on_cell);
        (outcomes, metrics)
    }

    /// The degraded-completion entry point: run every job under `opts`'s
    /// retry policy, per-job deadline and cancellation source, and report
    /// what it took. One panicking/erroring/hung cell costs exactly its
    /// own outcome — the rest of the batch completes normally, with
    /// statistics bit-identical to a fault-free run (enforced by test).
    pub fn run_resilient(
        &self,
        jobs: &[EvalJob],
        opts: &ResilientOptions,
        on_cell: impl Fn(usize, &CellOutcome) + Sync,
    ) -> (Vec<CellOutcome>, BatchReport) {
        let (outcomes, metrics, tallies) = self.run_engine(jobs, Some(opts), &on_cell);
        let report = BatchReport::build(&outcomes, &tallies, metrics);
        (outcomes, report)
    }

    /// Drain a pull-based [`JobSource`] to completion: spawn the worker
    /// pool, have every worker [`pull`](JobSource::pull) until the source
    /// returns `None`, and deliver each finished job to `on_done` from
    /// the worker thread that ran it. This is **the** drain loop — the
    /// slice entry points run through it via an internal cursor source,
    /// and the evaluation service points its scheduler at it directly.
    ///
    /// Per-job interrupt overrides on the [`SourcedJob`] compose with
    /// `opts`: a job token replaces the batch token for the run (batch
    /// cancellation is still honoured before the job starts), and the
    /// effective deadline is the smaller of the two. `on_done` must not
    /// panic: a panic there kills its worker and resurfaces when the pool
    /// joins (the slice entry points wrap their user callback in
    /// `catch_unwind` for exactly this reason).
    pub fn drain_source(
        &self,
        source: &(dyn JobSource + '_),
        opts: &ResilientOptions,
        on_done: &(dyn Fn(JobDone) + Sync),
    ) {
        let threads = if self.threads == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            self.threads
        };
        // Workers inherit the spawning thread's failpoint participation,
        // so a chaos test's schedule reaches its own workers and no one
        // else's (see `fault::participate`).
        let participates = fault::participating();
        std::thread::scope(|scope| {
            for w in 0..threads {
                scope.spawn(move || {
                    fault::participate(participates);
                    let mut worker = Worker::new(&self.machine);
                    while let Some(sourced) = source.pull() {
                        let picked_at = Instant::now();
                        let token = sourced.token.as_ref().or(opts.token.as_ref());
                        let deadline = match (sourced.deadline, opts.deadline) {
                            (Some(a), Some(b)) => Some(a.min(b)),
                            (a, b) => a.or(b),
                        };
                        let batch_cancelled =
                            opts.token.as_ref().is_some_and(CancelToken::is_cancelled);
                        let (outcome, tally) = run_one(
                            &mut worker,
                            sourced.job.as_ref(),
                            &opts.retry,
                            token,
                            deadline,
                            batch_cancelled,
                        );
                        on_done(JobDone {
                            ticket: sourced.ticket,
                            worker: w,
                            picked_at,
                            outcome,
                            tally,
                        });
                    }
                });
            }
        });
    }

    /// The slice-based engine every batch entry point drains through: a
    /// cursor source over `jobs`, outcome slots filled as cells finish,
    /// metrics assembled in job order.
    fn run_engine(
        &self,
        jobs: &[EvalJob],
        opts: Option<&ResilientOptions>,
        on_cell: &(dyn Fn(usize, &CellOutcome) + Sync),
    ) -> (Vec<CellOutcome>, BatchMetrics, Vec<JobTally>) {
        let t0 = Instant::now();
        let n_jobs = jobs.len();
        let threads = if self.threads == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            self.threads
        }
        .min(n_jobs.max(1));
        let default_opts = ResilientOptions::default();
        let opts = opts.unwrap_or(&default_opts);

        // Outcome slots behind one mutex of plain writes. Poisoning is
        // survivable by construction: the critical section cannot panic,
        // and the collector below recovers the inner value anyway instead
        // of unwrapping a poisoned lock into a driver-thread panic.
        let slots: Mutex<Vec<Option<(CellOutcome, JobMetrics, JobTally)>>> =
            Mutex::new((0..n_jobs).map(|_| None).collect());
        let callback_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        if n_jobs > 0 {
            let source = SliceSource {
                jobs,
                next: AtomicUsize::new(0),
            };
            let sized = self.clone().threads(threads);
            sized.drain_source(&source, opts, &|done: JobDone| {
                let i = done.ticket as usize;
                if let Err(p) = catch_unwind(AssertUnwindSafe(|| on_cell(i, &done.outcome))) {
                    let mut first = callback_panic
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    first.get_or_insert(p);
                }
                let metrics = JobMetrics {
                    worker: done.worker,
                    queued: done.picked_at.saturating_duration_since(t0),
                    run: done.outcome.wall,
                    done_at: t0.elapsed(),
                };
                let mut slots = slots
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if let Some(slot) = slots.get_mut(i) {
                    *slot = Some((done.outcome, metrics, done.tally));
                }
            });
        }
        // Resurface the first on_cell panic exactly once, after every
        // worker joined and every other job completed normally.
        if let Some(p) = callback_panic
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
        {
            resume_unwind(p);
        }
        let slots = slots
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let wall = t0.elapsed();
        let mut outcomes = Vec::with_capacity(n_jobs);
        let mut job_metrics = Vec::with_capacity(n_jobs);
        let mut tallies = Vec::with_capacity(n_jobs);
        let mut latency_hist = Log2Hist::new();
        let mut failed_latency_hist = Log2Hist::new();
        for slot in slots {
            let (outcome, metrics, tally) = slot.unwrap_or_else(|| {
                // Defensive: every code path above produces an outcome;
                // should one ever not, degrade to a typed error instead
                // of aborting the whole batch.
                (
                    CellOutcome {
                        stats: Err(JobError::Panicked {
                            message: "worker produced no outcome for this job".into(),
                        }),
                        wall: Duration::ZERO,
                    },
                    JobMetrics {
                        worker: 0,
                        queued: Duration::ZERO,
                        run: Duration::ZERO,
                        done_at: wall,
                    },
                    JobTally::default(),
                )
            });
            if outcome.stats.is_ok() {
                latency_hist.record(metrics.done_at.as_micros() as u64);
            } else {
                failed_latency_hist.record(metrics.done_at.as_micros() as u64);
            }
            outcomes.push(outcome);
            job_metrics.push(metrics);
            tallies.push(tally);
        }
        (
            outcomes,
            BatchMetrics {
                wall,
                workers: threads,
                jobs: job_metrics,
                latency_hist,
                failed_latency_hist,
            },
            tallies,
        )
    }
}

/// Run one job to its final outcome: the attempt/retry loop, with panic
/// isolation and quarantine around every attempt. `token` and `deadline`
/// are the *effective* interrupt sources (batch options composed with any
/// per-job overrides by [`EvalDriver::drain_source`]); `batch_cancelled`
/// short-circuits a job whose batch was cancelled even when the job
/// carries its own (un-cancelled) token.
fn run_one(
    worker: &mut Worker<'_>,
    job: &EvalJob,
    retry: &RetryPolicy,
    token: Option<&CancelToken>,
    deadline: Option<Duration>,
    batch_cancelled: bool,
) -> (CellOutcome, JobTally) {
    let mut tally = JobTally::default();
    // Batch already cancelled (or the job's own token was cancelled while
    // it queued): resolve without running (attempts = 0).
    if batch_cancelled || token.is_some_and(CancelToken::is_cancelled) {
        return (
            CellOutcome {
                stats: Err(JobError::Cancelled),
                wall: Duration::ZERO,
            },
            tally,
        );
    }
    let start = Instant::now();
    let deadline = deadline.map(|d| start + d);
    let stats = loop {
        tally.attempts += 1;
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            worker.run_job(job, token, deadline, start)
        }));
        let err = match attempt {
            Ok(Ok(stats)) => break Ok(stats),
            Ok(Err(e)) => e,
            Err(payload) => {
                // The worker's session/caches died mid-mutation:
                // quarantine before anything else touches them.
                worker.quarantine();
                JobError::Panicked {
                    message: panic_message(payload.as_ref()),
                }
            }
        };
        match &err {
            JobError::Panicked { .. } => tally.panics += 1,
            JobError::Trace(e) if e.is_transient() => tally.transient += 1,
            _ => {}
        }
        let retry = retry.should_retry(&err, tally.attempts)
            && !token.is_some_and(CancelToken::is_cancelled)
            && deadline.is_none_or(|d| Instant::now() < d);
        if !retry {
            break Err(err);
        }
        // Per-attempt worker-state rebuild (its own failpoint — a second
        // fault here fails the job instead of looping).
        match catch_unwind(AssertUnwindSafe(|| worker.rebuild())) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => break Err(e),
            Err(payload) => {
                worker.quarantine();
                break Err(JobError::Panicked {
                    message: panic_message(payload.as_ref()),
                });
            }
        }
    };
    (
        CellOutcome {
            stats,
            wall: start.elapsed(),
        },
        tally,
    )
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// A cached open trace: the reader (parsed once) plus the pristine
/// embedded program, cloned per configuration before the hint swap.
struct CachedTrace {
    reader: TraceReader<BufReader<File>>,
    pristine: Program,
}

/// Per-worker reusable state.
struct Worker<'m> {
    machine: &'m MachineConfig,
    session: SimSession,
    traces: HashMap<PathBuf, CachedTrace>,
}

impl<'m> Worker<'m> {
    fn new(machine: &'m MachineConfig) -> Self {
        Worker {
            machine,
            session: SimSession::new(machine),
            traces: HashMap::new(),
        }
    }

    /// Drop everything reused across jobs: the session (whose state may
    /// have died mid-mutation in a panic) and the trace-reader cache
    /// (whose readers may be mid-stream). The bit-identity contract makes
    /// this safe: a rebuilt worker *is* a fresh machine.
    fn quarantine(&mut self) {
        self.session = SimSession::new(self.machine);
        self.traces.clear();
    }

    /// Per-attempt state rebuild before a retry — the quarantine plus the
    /// `session.reset` failpoint, so chaos schedules can exercise a fault
    /// *inside* fault recovery.
    fn rebuild(&mut self) -> Result<(), JobError> {
        fault::fire(fault::SESSION_RESET)?;
        self.quarantine();
        Ok(())
    }

    /// One attempt at one job, with interruption wired into the session.
    fn run_job(
        &mut self,
        job: &EvalJob,
        token: Option<&CancelToken>,
        deadline: Option<Instant>,
        started: Instant,
    ) -> Result<SimStats, JobError> {
        fault::fire(fault::JOB_RUN)?;
        if token.is_some() || deadline.is_some() {
            self.session.set_interrupt(token.cloned(), deadline);
        }
        let result = self.dispatch(job);
        let cause = self.session.stop_cause();
        self.session.clear_interrupt();
        match cause {
            Some(StopCause::Cancelled) => Err(JobError::Cancelled),
            Some(StopCause::DeadlineExceeded) => Err(JobError::DeadlineExceeded {
                after: started.elapsed(),
            }),
            None => result.map_err(JobError::from),
        }
    }

    fn dispatch(&mut self, job: &EvalJob) -> Result<SimStats, TraceError> {
        match job {
            EvalJob::Point {
                point,
                config,
                uops,
            } => Ok(run_point_on(
                &mut self.session,
                point,
                config,
                self.machine,
                *uops,
            )),
            EvalJob::Kernel {
                program,
                params,
                seed,
                config,
                uops,
            } => {
                let program = annotate_for_replay(program.clone(), config, self.machine);
                let mut trace = TraceExpander::new(&program, params, *seed);
                let mut policy = config.make_policy();
                Ok(self.session.simulate(
                    self.machine,
                    &mut trace,
                    policy.as_mut(),
                    &RunLimits::uops(*uops),
                ))
            }
            EvalJob::Trace {
                path,
                config,
                limits,
            } => {
                let cached = match self.traces.entry(path.clone()) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        fault::fire(fault::TRACE_OPEN)?;
                        let reader = TraceReader::open(path)?;
                        let pristine = reader.program().clone();
                        e.insert(CachedTrace { reader, pristine })
                    }
                };
                // The `replay_trace` preparation, over the already-parsed,
                // rewound reader.
                let program = annotate_for_replay(cached.pristine.clone(), config, self.machine);
                fault::fire(fault::TRACE_SET_PROGRAM)?;
                cached.reader.set_program(program)?;
                fault::fire(fault::TRACE_REWIND)?;
                cached.reader.rewind()?;
                let mut policy = config.make_policy();
                let stats = self.session.simulate(
                    self.machine,
                    &mut cached.reader,
                    policy.as_mut(),
                    limits,
                );
                // Errors inside the simulation loop surface as a silently-
                // ended trace; re-raise them so a corrupt file can never
                // masquerade as a short run.
                if let Some(err) = cached.reader.take_error() {
                    return Err(err);
                }
                Ok(stats)
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::experiment::run_point;
    use crate::fault::{FaultKind, FaultSchedule, FaultSpec, ScopedFaults, Trigger};
    use crate::replay::{record_point, replay_trace};
    use virtclust_trace::Codec;
    use virtclust_uarch::{ArchReg, RegionBuilder};
    use virtclust_workloads::spec2000_points;

    fn point(name: &str) -> TracePoint {
        spec2000_points()
            .into_iter()
            .find(|p| p.name == name)
            .expect("suite point")
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("virtclust-batch-{}-{name}", std::process::id()))
    }

    fn sched(site: &str, kind: FaultKind, trigger: Trigger) -> FaultSchedule {
        FaultSchedule::new().with(site, FaultSpec { kind, trigger })
    }

    #[test]
    fn point_jobs_match_run_point_bit_for_bit() {
        let machine = MachineConfig::paper_2cluster();
        let p = point("gzip-1");
        let jobs: Vec<EvalJob> = Configuration::table3()
            .into_iter()
            .map(|config| EvalJob::Point {
                point: p.clone(),
                config,
                uops: 1_500,
            })
            .collect();
        let outcomes = EvalDriver::new(&machine).threads(1).run(&jobs);
        for (job, outcome) in jobs.iter().zip(&outcomes) {
            let live = run_point(&p, job.config(), &machine, 1_500);
            assert_eq!(&live, outcome.stats.as_ref().unwrap(), "{}", job.label(2));
        }
    }

    #[test]
    fn trace_jobs_match_replay_trace_and_reuse_one_reader() {
        let machine = MachineConfig::paper_2cluster();
        let p = point("eon-1");
        let path = tmp("eon.vctb");
        record_point(&p, 2_000, Codec::Binary, &path).unwrap();
        // One worker, five schemes over the same file: the reader is opened
        // once and rewound four times.
        let jobs: Vec<EvalJob> = Configuration::table3()
            .into_iter()
            .map(|config| EvalJob::Trace {
                path: path.clone(),
                config,
                limits: RunLimits::unlimited(),
            })
            .collect();
        let outcomes = EvalDriver::new(&machine).threads(1).run(&jobs);
        for (job, outcome) in jobs.iter().zip(&outcomes) {
            let direct =
                replay_trace(&path, job.config(), &machine, &RunLimits::unlimited()).unwrap();
            assert_eq!(&direct, outcome.stats.as_ref().unwrap(), "{}", job.label(2));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kernel_jobs_match_a_manual_expander_run() {
        let machine = MachineConfig::paper_2cluster();
        let r = ArchReg::int;
        let mut program = Program::new("kern");
        program.add_region(
            RegionBuilder::new(0, "body")
                .alu(r(1), &[r(1), r(2)])
                .load(r(3), r(1))
                .alu(r(2), &[r(3)])
                .branch(r(2))
                .build(),
        );
        let params = KernelParams::base_int();
        let config = Configuration::Vc { num_vcs: 2 };
        let job = EvalJob::Kernel {
            program: program.clone(),
            params,
            seed: 9,
            config,
            uops: 1_200,
        };
        let outcomes = EvalDriver::new(&machine).run(std::slice::from_ref(&job));
        let manual = {
            let mut annotated = program.clone();
            annotated.clear_hints();
            config
                .software_pass(2)
                .apply(&mut annotated, &machine.latencies);
            let mut trace = TraceExpander::new(&annotated, &params, 9);
            let mut policy = config.make_policy();
            virtclust_sim::simulate(
                &machine,
                &mut trace,
                policy.as_mut(),
                &RunLimits::uops(1_200),
            )
        };
        assert_eq!(&manual, outcomes[0].stats.as_ref().unwrap());
    }

    #[test]
    fn heterogeneous_queue_is_deterministic_across_1_2_8_threads() {
        let machine = MachineConfig::paper_2cluster();
        let path = tmp("mix.vct");
        record_point(&point("gzip-1"), 1_000, Codec::Text, &path).unwrap();
        let mut jobs: Vec<EvalJob> = vec![
            EvalJob::Point {
                point: point("crafty"),
                config: Configuration::Op,
                uops: 800,
            },
            EvalJob::Trace {
                path: path.clone(),
                config: Configuration::Vc { num_vcs: 2 },
                limits: RunLimits::unlimited(),
            },
        ];
        for config in Configuration::table3() {
            jobs.push(EvalJob::Point {
                point: point("galgel"),
                config,
                uops: 600,
            });
            jobs.push(EvalJob::Trace {
                path: path.clone(),
                config,
                limits: RunLimits::uops(500),
            });
        }
        let stats_of = |threads: usize| -> Vec<SimStats> {
            EvalDriver::new(&machine)
                .threads(threads)
                .run(&jobs)
                .into_iter()
                .map(|o| o.stats.expect("readable"))
                .collect()
        };
        let one = stats_of(1);
        let two = stats_of(2);
        let eight = stats_of(8);
        assert_eq!(one, two, "1 vs 2 workers");
        assert_eq!(one, eight, "1 vs 8 workers");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_callback_sees_every_cell_exactly_once() {
        let machine = MachineConfig::paper_2cluster();
        let jobs: Vec<EvalJob> = Configuration::table3()
            .into_iter()
            .map(|config| EvalJob::Point {
                point: point("gzip-1"),
                config,
                uops: 400,
            })
            .collect();
        let seen = std::sync::Mutex::new(vec![0u32; jobs.len()]);
        let outcomes = EvalDriver::new(&machine)
            .threads(2)
            .run_streaming(&jobs, |i, outcome| {
                assert!(outcome.stats.is_ok());
                seen.lock().unwrap()[i] += 1;
            });
        assert_eq!(outcomes.len(), jobs.len());
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
        // Per-cell throughput is a positive finite number.
        assert!(outcomes.iter().all(|o| o.uops_per_sec() > 0.0));
    }

    #[test]
    fn run_with_metrics_matches_run_and_accounts_every_job() {
        let machine = MachineConfig::paper_2cluster();
        let jobs: Vec<EvalJob> = Configuration::table3()
            .into_iter()
            .map(|config| EvalJob::Point {
                point: point("gzip-1"),
                config,
                uops: 500,
            })
            .collect();
        let driver = EvalDriver::new(&machine).threads(2);
        let plain = driver.run(&jobs);
        let (outcomes, metrics) = driver.run_with_metrics(&jobs, |_, _| {});
        for (a, b) in plain.iter().zip(&outcomes) {
            assert_eq!(a.stats.as_ref().unwrap(), b.stats.as_ref().unwrap());
        }

        assert_eq!(metrics.workers, 2);
        assert_eq!(metrics.jobs.len(), jobs.len());
        assert_eq!(metrics.latency_hist.count(), jobs.len() as u64);
        assert_eq!(metrics.failed_latency_hist.count(), 0);
        for m in &metrics.jobs {
            assert!(m.worker < metrics.workers);
            assert!(m.done_at >= m.queued, "finish after pickup");
            assert!(m.done_at <= metrics.wall + Duration::from_millis(1));
        }
        let busy = metrics.worker_busy();
        assert_eq!(busy.len(), 2);
        let total_run: Duration = metrics.jobs.iter().map(|m| m.run).sum();
        assert_eq!(busy.iter().sum::<Duration>(), total_run);
        let u = metrics.utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
        assert!(metrics.latency_percentile(0.99) >= metrics.latency_percentile(0.5));
    }

    #[test]
    fn batch_chrome_trace_has_a_slice_per_job() {
        let machine = MachineConfig::paper_2cluster();
        let jobs: Vec<EvalJob> = Configuration::table3()
            .into_iter()
            .map(|config| EvalJob::Point {
                point: point("gzip-1"),
                config,
                uops: 300,
            })
            .collect();
        let (_, metrics) = EvalDriver::new(&machine)
            .threads(2)
            .run_with_metrics(&jobs, |_, _| {});
        let labels: Vec<String> = jobs.iter().map(|j| j.label(2)).collect();
        let trace = metrics.chrome_trace(&labels);
        // One process_name + per-worker (name + sort) + one slice per job.
        assert_eq!(trace.len(), 1 + 2 * metrics.workers + jobs.len());
        let json = trace.to_json();
        assert!(json.contains("EvalDriver"));
        assert!(json.contains(&labels[0]));
    }

    #[test]
    fn unreadable_trace_jobs_error_without_poisoning_the_queue() {
        let machine = MachineConfig::paper_2cluster();
        let jobs = vec![
            EvalJob::Trace {
                path: PathBuf::from("/nonexistent/ghost.vctb"),
                config: Configuration::Op,
                limits: RunLimits::unlimited(),
            },
            EvalJob::Point {
                point: point("gzip-1"),
                config: Configuration::Op,
                uops: 300,
            },
        ];
        let outcomes = EvalDriver::new(&machine).threads(1).run(&jobs);
        assert!(outcomes[0].stats.is_err());
        assert_eq!(
            outcomes[1].stats.as_ref().unwrap().committed_uops,
            300,
            "the queue keeps draining after an error"
        );
    }

    #[test]
    fn failed_jobs_do_not_pollute_the_success_latency_hist() {
        let machine = MachineConfig::paper_2cluster();
        let mut jobs = vec![EvalJob::Trace {
            path: PathBuf::from("/nonexistent/ghost.vctb"),
            config: Configuration::Op,
            limits: RunLimits::unlimited(),
        }];
        for config in Configuration::table3() {
            jobs.push(EvalJob::Point {
                point: point("gzip-1"),
                config,
                uops: 400,
            });
        }
        let (outcomes, metrics) = EvalDriver::new(&machine)
            .threads(2)
            .run_with_metrics(&jobs, |_, _| {});
        let ok = outcomes.iter().filter(|o| o.stats.is_ok()).count();
        assert_eq!(ok, jobs.len() - 1);
        // The p99-bearing histogram is defined over successes only; the
        // instantly-resolving failure lands in the failed hist instead of
        // dragging the success percentiles toward zero.
        assert_eq!(metrics.latency_hist.count(), ok as u64);
        assert_eq!(metrics.failed_latency_hist.count(), 1);
        assert!(metrics.latency_percentile(0.5) > 0);
    }

    #[test]
    fn all_failed_batch_metrics_stay_well_formed() {
        // Regression for the all-fail chaos aggregate: when every job
        // fails, the success-side histogram is empty, and every derived
        // quantity (percentiles, utilization) must degrade to 0 instead
        // of dividing by zero or panicking — the aggregate rows the CLI
        // tools print are built from exactly these calls.
        let machine = MachineConfig::paper_2cluster();
        let jobs: Vec<EvalJob> = Configuration::table3()
            .into_iter()
            .map(|config| EvalJob::Point {
                point: point("gzip-1"),
                config,
                uops: 300,
            })
            .collect();
        let _faults = ScopedFaults::arm(&sched(fault::JOB_RUN, FaultKind::Io, Trigger::Every(1)));
        let (outcomes, report) = EvalDriver::new(&machine).threads(2).run_resilient(
            &jobs,
            &ResilientOptions::new(),
            |_, _| {},
        );
        assert!(outcomes.iter().all(|o| o.stats.is_err()), "chaos fails all");
        assert_eq!(report.ok.get(), 0);
        assert_eq!(report.failed.get(), jobs.len() as u64);
        let m = &report.metrics;
        assert_eq!(m.latency_hist.count(), 0);
        assert_eq!(m.failed_latency_hist.count(), jobs.len() as u64);
        assert_eq!(m.latency_percentile(0.5), 0, "empty hist percentile is 0");
        assert_eq!(m.latency_percentile(0.99), 0);
        let u = m.utilization();
        assert!(u.is_finite() && (0.0..=1.0).contains(&u));
        for o in &outcomes {
            assert_eq!(o.uops_per_sec(), 0.0, "failed cells report 0 uops/s");
        }
        assert!(report.summary().contains("0 ok"));
    }

    #[test]
    fn injected_panic_isolates_one_job_and_keeps_the_rest_bit_identical() {
        let machine = MachineConfig::paper_2cluster();
        let jobs: Vec<EvalJob> = Configuration::table3()
            .into_iter()
            .map(|config| EvalJob::Point {
                point: point("gzip-1"),
                config,
                uops: 400,
            })
            .collect();
        // Fault-free reference first (the registry is disarmed here).
        let clean = EvalDriver::new(&machine).threads(1).run(&jobs);
        let _faults = ScopedFaults::arm(&sched(fault::JOB_RUN, FaultKind::Panic, Trigger::Nth(2)));
        let (outcomes, report) = EvalDriver::new(&machine).threads(1).run_resilient(
            &jobs,
            &ResilientOptions::new(),
            |_, _| {},
        );
        match &outcomes[1].stats {
            Err(JobError::Panicked { message }) => {
                assert!(message.contains("injected panic"), "{message}");
            }
            other => panic!("job 1 should have panicked, got {other:?}"),
        }
        for (i, (clean, got)) in clean.iter().zip(&outcomes).enumerate() {
            if i == 1 {
                continue;
            }
            assert_eq!(
                clean.stats.as_ref().unwrap(),
                got.stats.as_ref().unwrap(),
                "job {i} must be bit-identical despite job 1 panicking"
            );
        }
        assert_eq!(report.ok.get(), jobs.len() as u64 - 1);
        assert_eq!(report.failed.get(), 1);
        assert_eq!(report.panics.get(), 1);
        assert_eq!(report.retries.get(), 0);
        assert!(report.degraded());
        assert!(
            report.summary().contains("1 failed"),
            "{}",
            report.summary()
        );
    }

    #[test]
    fn transient_open_fault_retries_to_bit_identical_stats() {
        let machine = MachineConfig::paper_2cluster();
        let path = tmp("retry.vctb");
        record_point(&point("gzip-1"), 1_000, Codec::Binary, &path).unwrap();
        let clean =
            replay_trace(&path, &Configuration::Op, &machine, &RunLimits::unlimited()).unwrap();
        let jobs = vec![EvalJob::Trace {
            path: path.clone(),
            config: Configuration::Op,
            limits: RunLimits::unlimited(),
        }];
        let _faults = ScopedFaults::arm(&sched(fault::TRACE_OPEN, FaultKind::Io, Trigger::Nth(1)));
        let (outcomes, report) = EvalDriver::new(&machine).threads(1).run_resilient(
            &jobs,
            &ResilientOptions::new().retries(2),
            |_, _| {},
        );
        assert_eq!(
            outcomes[0].stats.as_ref().unwrap(),
            &clean,
            "the retried success must match the fault-free run bit for bit"
        );
        assert_eq!(report.attempts, vec![2]);
        assert_eq!(report.retries.get(), 1);
        assert_eq!(report.transient_faults.get(), 1);
        assert!(!report.degraded());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn permanent_faults_fail_without_retry() {
        let machine = MachineConfig::paper_2cluster();
        let path = tmp("perm.vctb");
        record_point(&point("gzip-1"), 500, Codec::Binary, &path).unwrap();
        let jobs = vec![EvalJob::Trace {
            path: path.clone(),
            config: Configuration::Op,
            limits: RunLimits::unlimited(),
        }];
        let _faults = ScopedFaults::arm(&sched(
            fault::TRACE_OPEN,
            FaultKind::Corrupt,
            Trigger::Nth(1),
        ));
        let (outcomes, report) = EvalDriver::new(&machine).threads(1).run_resilient(
            &jobs,
            &ResilientOptions::new().retries(3),
            |_, _| {},
        );
        match &outcomes[0].stats {
            Err(JobError::Trace(e)) => assert!(!e.is_transient(), "{e}"),
            other => panic!("expected a permanent trace error, got {other:?}"),
        }
        assert_eq!(report.attempts, vec![1], "permanent errors retry nothing");
        assert_eq!(report.retries.get(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn retries_are_bounded_by_the_policy() {
        let machine = MachineConfig::paper_2cluster();
        let path = tmp("bounded.vctb");
        record_point(&point("gzip-1"), 500, Codec::Binary, &path).unwrap();
        let jobs = vec![EvalJob::Trace {
            path: path.clone(),
            config: Configuration::Op,
            limits: RunLimits::unlimited(),
        }];
        // Every rewind attempt fails — the job must give up after
        // 1 + max_retries attempts.
        let _faults = ScopedFaults::arm(&sched(
            fault::TRACE_REWIND,
            FaultKind::Io,
            Trigger::Every(1),
        ));
        let (outcomes, report) = EvalDriver::new(&machine).threads(1).run_resilient(
            &jobs,
            &ResilientOptions::new().retries(2),
            |_, _| {},
        );
        assert!(matches!(&outcomes[0].stats, Err(JobError::Trace(_))));
        assert_eq!(report.attempts, vec![3], "1 initial + 2 retries");
        assert_eq!(report.retries.get(), 2);
        assert_eq!(report.transient_faults.get(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn a_fault_during_rebuild_fails_the_job_instead_of_looping() {
        let machine = MachineConfig::paper_2cluster();
        let path = tmp("rebuild.vctb");
        record_point(&point("gzip-1"), 500, Codec::Binary, &path).unwrap();
        let jobs = vec![EvalJob::Trace {
            path: path.clone(),
            config: Configuration::Op,
            limits: RunLimits::unlimited(),
        }];
        let schedule = sched(fault::TRACE_REWIND, FaultKind::Io, Trigger::Nth(1)).with(
            fault::SESSION_RESET,
            FaultSpec {
                kind: FaultKind::Io,
                trigger: Trigger::Every(1),
            },
        );
        let _faults = ScopedFaults::arm(&schedule);
        let (outcomes, report) = EvalDriver::new(&machine).threads(1).run_resilient(
            &jobs,
            &ResilientOptions::new().retries(5),
            |_, _| {},
        );
        // The transient rewind fault would retry, but the rebuild itself
        // faults: double fault, job over, no infinite loop.
        assert!(matches!(&outcomes[0].stats, Err(JobError::Trace(_))));
        assert_eq!(report.attempts, vec![1]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn deadline_stops_a_runaway_job_and_the_worker_recovers() {
        let machine = MachineConfig::paper_2cluster();
        let small = point("gzip-1");
        let jobs = vec![
            // Far more work than fits in the budget below.
            EvalJob::Point {
                point: point("crafty"),
                config: Configuration::Op,
                uops: 3_000_000,
            },
            EvalJob::Point {
                point: small.clone(),
                config: Configuration::Op,
                uops: 300,
            },
        ];
        let (outcomes, report) = EvalDriver::new(&machine).threads(1).run_resilient(
            &jobs,
            &ResilientOptions::new().deadline(Duration::from_millis(80)),
            |_, _| {},
        );
        match &outcomes[0].stats {
            Err(JobError::DeadlineExceeded { after }) => {
                assert!(*after >= Duration::from_millis(80), "stopped at {after:?}");
            }
            other => panic!("expected a deadline outcome, got {other:?}"),
        }
        // The same worker (threads = 1) runs the next job on its cleanly
        // reset session: bit-identical to a fresh fault-free run.
        let clean = run_point(&small, &Configuration::Op, &machine, 300);
        assert_eq!(outcomes[1].stats.as_ref().unwrap(), &clean);
        assert_eq!(report.deadline_exceeded.get(), 1);
        assert_eq!(report.ok.get(), 1);
    }

    #[test]
    fn deadline_fires_promptly_on_idle_heavy_skipping_points() {
        // Regression for the deadline-vs-cycle-skipping bug: `mcf` is the
        // suite's memory-bound point, where the PR 6 skipper replicates
        // most cycles in long idle spans. Before the span clamp a skip
        // could carry the session past many interrupt-check boundaries in
        // one step, so a tight deadline fired late (bounded only by the
        // span length, not CHECK_INTERVAL_CYCLES). With the clamp the run
        // stops within one check interval of the deadline passing — in
        // wall-clock terms, microseconds after it.
        let machine = MachineConfig::paper_2cluster();
        let deadline = Duration::from_millis(60);
        let jobs = vec![EvalJob::Point {
            point: point("mcf"),
            config: Configuration::Op,
            uops: 50_000_000, // far more than fits in the budget
        }];
        let (outcomes, report) = EvalDriver::new(&machine).threads(1).run_resilient(
            &jobs,
            &ResilientOptions::new().deadline(deadline),
            |_, _| {},
        );
        match &outcomes[0].stats {
            Err(JobError::DeadlineExceeded { after }) => {
                assert!(*after >= deadline, "stopped early at {after:?}");
                // Generous CI margin, but far below what an unclamped
                // multi-thousand-cycle span overshoot used to allow on a
                // point this idle-heavy.
                assert!(
                    *after < deadline + Duration::from_secs(2),
                    "deadline enforcement lagged: stopped only after {after:?}"
                );
            }
            other => panic!("expected a deadline outcome, got {other:?}"),
        }
        assert_eq!(report.deadline_exceeded.get(), 1);
    }

    #[test]
    fn drain_source_matches_the_slice_engine_bit_for_bit() {
        // A hand-rolled pull source must produce exactly what the slice
        // entry points produce — they are the same drain loop.
        let machine = MachineConfig::paper_2cluster();
        let jobs: Vec<EvalJob> = Configuration::table3()
            .into_iter()
            .map(|config| EvalJob::Point {
                point: point("gzip-1"),
                config,
                uops: 500,
            })
            .collect();
        let reference = EvalDriver::new(&machine).threads(2).run(&jobs);

        struct Queue<'a> {
            jobs: &'a [EvalJob],
            next: AtomicUsize,
        }
        impl JobSource for Queue<'_> {
            fn pull(&self) -> Option<SourcedJob<'_>> {
                let i = self.next.fetch_add(1, Ordering::Relaxed);
                self.jobs
                    .get(i)
                    .map(|j| SourcedJob::new(i as u64, Cow::Owned(j.clone())))
            }
        }
        let source = Queue {
            jobs: &jobs,
            next: AtomicUsize::new(0),
        };
        let done: Mutex<Vec<Option<CellOutcome>>> =
            Mutex::new((0..jobs.len()).map(|_| None).collect());
        EvalDriver::new(&machine).threads(2).drain_source(
            &source,
            &ResilientOptions::new(),
            &|d: JobDone| {
                assert!(d.tally.attempts == 1);
                done.lock().unwrap()[d.ticket as usize] = Some(d.outcome);
            },
        );
        let done = done.into_inner().unwrap();
        for (i, (reference, got)) in reference.iter().zip(&done).enumerate() {
            let got = got.as_ref().expect("every ticket delivered");
            assert_eq!(
                reference.stats.as_ref().unwrap(),
                got.stats.as_ref().unwrap(),
                "job {i}"
            );
        }
    }

    #[test]
    fn per_job_token_cancels_one_sourced_job_without_touching_others() {
        // Per-client fan-out at the engine level: two jobs share a source,
        // one carries a pre-cancelled per-job token, the other must run
        // to bit-identical completion.
        let machine = MachineConfig::paper_2cluster();
        let job = EvalJob::Point {
            point: point("gzip-1"),
            config: Configuration::Op,
            uops: 400,
        };
        let clean = run_point(&point("gzip-1"), &Configuration::Op, &machine, 400);
        let cancelled = CancelToken::new();
        cancelled.cancel();
        let items: Mutex<Vec<SourcedJob<'static>>> = Mutex::new(vec![
            SourcedJob {
                ticket: 0,
                job: Cow::Owned(job.clone()),
                token: Some(cancelled),
                deadline: None,
            },
            SourcedJob::new(1, Cow::Owned(job)),
        ]);
        struct Once<'a>(&'a Mutex<Vec<SourcedJob<'static>>>);
        impl JobSource for Once<'_> {
            fn pull(&self) -> Option<SourcedJob<'_>> {
                let mut items = self.0.lock().unwrap();
                if items.is_empty() {
                    None
                } else {
                    Some(items.remove(0))
                }
            }
        }
        let done: Mutex<Vec<(u64, CellOutcome)>> = Mutex::new(Vec::new());
        EvalDriver::new(&machine).threads(1).drain_source(
            &Once(&items),
            &ResilientOptions::new(),
            &|d: JobDone| done.lock().unwrap().push((d.ticket, d.outcome)),
        );
        let mut done = done.into_inner().unwrap();
        done.sort_by_key(|(t, _)| *t);
        assert!(matches!(done[0].1.stats, Err(JobError::Cancelled)));
        assert_eq!(done[0].1.wall, Duration::ZERO, "never ran");
        assert_eq!(done[1].1.stats.as_ref().unwrap(), &clean);
    }

    #[test]
    fn cancelling_from_the_callback_resolves_queued_jobs_without_running_them() {
        let machine = MachineConfig::paper_2cluster();
        let jobs: Vec<EvalJob> = (0..6)
            .map(|_| EvalJob::Point {
                point: point("gzip-1"),
                config: Configuration::Op,
                uops: 400,
            })
            .collect();
        let handle = BatchHandle::new();
        let opts = ResilientOptions::new().cancelled_by(&handle);
        let (outcomes, report) =
            EvalDriver::new(&machine)
                .threads(1)
                .run_resilient(&jobs, &opts, |_, _| handle.cancel());
        assert!(outcomes[0].stats.is_ok(), "the first job had already run");
        for (i, o) in outcomes.iter().enumerate().skip(1) {
            assert!(
                matches!(o.stats, Err(JobError::Cancelled)),
                "job {i} was queued at cancellation"
            );
            assert_eq!(o.wall, Duration::ZERO, "job {i} never ran");
            assert_eq!(report.attempts[i], 0);
        }
        assert_eq!(report.cancelled.get(), 5);
        assert_eq!(report.ok.get(), 1);
        assert_eq!(
            report.attempts.len(),
            jobs.len(),
            "every job is accounted exactly once"
        );
    }

    #[test]
    fn on_cell_panic_is_resurfaced_once_after_every_job_ran() {
        let machine = MachineConfig::paper_2cluster();
        let jobs: Vec<EvalJob> = Configuration::table3()
            .into_iter()
            .map(|config| EvalJob::Point {
                point: point("gzip-1"),
                config,
                uops: 300,
            })
            .collect();
        let calls = AtomicUsize::new(0);
        let n = jobs.len();
        let result = catch_unwind(AssertUnwindSafe(|| {
            EvalDriver::new(&machine)
                .threads(2)
                .run_streaming(&jobs, |_, _| {
                    calls.fetch_add(1, Ordering::SeqCst);
                    panic!("callback exploded");
                })
        }));
        let payload = result.expect_err("the first callback panic resurfaces");
        assert_eq!(panic_message(payload.as_ref()), "callback exploded");
        assert_eq!(
            calls.load(Ordering::SeqCst),
            n,
            "every job still ran and streamed despite the panicking callback"
        );
    }
}
