//! Parallel evaluation runner: the full (trace-point × configuration)
//! matrix, one simulation per cell, fanned out over worker threads.
//!
//! Since the batch refactor this is a thin shim over
//! [`crate::batch::EvalDriver`]: the matrix becomes a row-major job list,
//! the driver drains it with per-worker reusable sessions, and the results
//! land in disjoint slots — deterministic regardless of scheduling, now
//! without a fresh machine allocation per cell.

use virtclust_sim::SimStats;
use virtclust_uarch::MachineConfig;
use virtclust_workloads::TracePoint;

use crate::batch::{EvalDriver, EvalJob};
use crate::experiment::Configuration;

// Referenced by the docs below.
#[allow(unused_imports)]
use crate::experiment::run_point;

/// Results of a full evaluation matrix.
#[derive(Debug, Clone)]
pub struct EvalMatrix {
    /// Machine the matrix ran on.
    pub machine: MachineConfig,
    /// Configurations, column order.
    pub configs: Vec<Configuration>,
    /// Trace points, row order.
    pub points: Vec<TracePoint>,
    /// `stats[point][config]`.
    pub stats: Vec<Vec<SimStats>>,
    /// Micro-op budget per cell.
    pub uops: u64,
}

impl EvalMatrix {
    /// Stats cell for (point row, config column).
    pub fn cell(&self, point: usize, config: usize) -> &SimStats {
        &self.stats[point][config]
    }

    /// Column index of `config`.
    pub fn config_index(&self, config: &Configuration) -> Option<usize> {
        self.configs.iter().position(|c| c == config)
    }
}

/// Run all (point × config) cells, using up to `threads` worker threads
/// (0 = one per available CPU). Each cell is bit-identical to a standalone
/// [`run_point`] call; the cells execute on the batch engine's reusable
/// per-worker sessions.
pub fn run_matrix(
    machine: &MachineConfig,
    configs: &[Configuration],
    points: &[TracePoint],
    uops: u64,
    threads: usize,
) -> EvalMatrix {
    // Row-major: cell i = (point i / |configs|, config i % |configs|).
    let jobs: Vec<EvalJob> = points
        .iter()
        .flat_map(|point| {
            configs.iter().map(move |config| EvalJob::Point {
                point: point.clone(),
                config: *config,
                uops,
            })
        })
        .collect();
    let outcomes = EvalDriver::new(machine).threads(threads).run(&jobs);

    let mut stats = Vec::with_capacity(points.len());
    let mut it = outcomes.into_iter();
    for _ in 0..points.len() {
        let row: Vec<SimStats> = it
            .by_ref()
            .take(configs.len())
            .map(|o| o.stats.expect("point jobs cannot fail"))
            .collect();
        stats.push(row);
    }

    EvalMatrix {
        machine: machine.clone(),
        configs: configs.to_vec(),
        points: points.to_vec(),
        stats,
        uops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtclust_workloads::spec2000_points;

    fn small_points(n: usize) -> Vec<TracePoint> {
        spec2000_points().into_iter().take(n).collect()
    }

    #[test]
    fn matrix_has_all_cells_in_order() {
        let points = small_points(3);
        let configs = vec![Configuration::Op, Configuration::OneCluster];
        let m = run_matrix(
            &MachineConfig::paper_2cluster(),
            &configs,
            &points,
            1_000,
            2,
        );
        assert_eq!(m.stats.len(), 3);
        for row in &m.stats {
            assert_eq!(row.len(), 2);
            for cell in row {
                assert_eq!(cell.committed_uops, 1_000);
            }
        }
        assert_eq!(m.config_index(&Configuration::OneCluster), Some(1));
        assert_eq!(m.config_index(&Configuration::Rhop), None);
    }

    #[test]
    fn parallel_and_serial_results_agree() {
        let points = small_points(2);
        let configs = vec![Configuration::Op, Configuration::Vc { num_vcs: 2 }];
        let a = run_matrix(&MachineConfig::paper_2cluster(), &configs, &points, 800, 1);
        let b = run_matrix(&MachineConfig::paper_2cluster(), &configs, &points, 800, 4);
        assert_eq!(a.stats, b.stats, "thread count must not affect results");
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = run_matrix(&MachineConfig::paper_2cluster(), &[], &[], 100, 2);
        assert!(m.stats.is_empty());
    }
}
