//! Parallel evaluation runner: the full (trace-point × configuration)
//! matrix, one simulation per cell, fanned out over worker threads.
//!
//! Simulations are completely independent (every cell builds its own
//! program, trace and policy from seeds), so the runner is embarrassingly
//! parallel: a thread scope with one worker per CPU pulling cell indices
//! from an atomic counter. Results are written into disjoint slots, so the
//! output is deterministic regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

use virtclust_sim::SimStats;
use virtclust_uarch::MachineConfig;
use virtclust_workloads::TracePoint;

use crate::experiment::{run_point, Configuration};

/// Results of a full evaluation matrix.
#[derive(Debug, Clone)]
pub struct EvalMatrix {
    /// Machine the matrix ran on.
    pub machine: MachineConfig,
    /// Configurations, column order.
    pub configs: Vec<Configuration>,
    /// Trace points, row order.
    pub points: Vec<TracePoint>,
    /// `stats[point][config]`.
    pub stats: Vec<Vec<SimStats>>,
    /// Micro-op budget per cell.
    pub uops: u64,
}

impl EvalMatrix {
    /// Stats cell for (point row, config column).
    pub fn cell(&self, point: usize, config: usize) -> &SimStats {
        &self.stats[point][config]
    }

    /// Column index of `config`.
    pub fn config_index(&self, config: &Configuration) -> Option<usize> {
        self.configs.iter().position(|c| c == config)
    }
}

/// Run all (point × config) cells, using up to `threads` worker threads
/// (0 = one per available CPU).
pub fn run_matrix(
    machine: &MachineConfig,
    configs: &[Configuration],
    points: &[TracePoint],
    uops: u64,
    threads: usize,
) -> EvalMatrix {
    let n_cells = points.len() * configs.len();
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        threads
    }
    .min(n_cells.max(1));

    let mut flat: Vec<Option<SimStats>> = vec![None; n_cells];
    if n_cells > 0 {
        let next = AtomicUsize::new(0);
        let slots: Vec<std::sync::Mutex<&mut Option<SimStats>>> =
            flat.iter_mut().map(std::sync::Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_cells {
                        break;
                    }
                    let (pi, ci) = (i / configs.len(), i % configs.len());
                    let stats = run_point(&points[pi], &configs[ci], machine, uops);
                    **slots[i].lock().expect("slot lock") = Some(stats);
                });
            }
        });
    }

    let mut stats = Vec::with_capacity(points.len());
    let mut it = flat.into_iter();
    for _ in 0..points.len() {
        let mut row = Vec::with_capacity(configs.len());
        for _ in 0..configs.len() {
            row.push(it.next().expect("cell count").expect("cell computed"));
        }
        stats.push(row);
    }

    EvalMatrix {
        machine: machine.clone(),
        configs: configs.to_vec(),
        points: points.to_vec(),
        stats,
        uops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtclust_workloads::spec2000_points;

    fn small_points(n: usize) -> Vec<TracePoint> {
        spec2000_points().into_iter().take(n).collect()
    }

    #[test]
    fn matrix_has_all_cells_in_order() {
        let points = small_points(3);
        let configs = vec![Configuration::Op, Configuration::OneCluster];
        let m = run_matrix(
            &MachineConfig::paper_2cluster(),
            &configs,
            &points,
            1_000,
            2,
        );
        assert_eq!(m.stats.len(), 3);
        for row in &m.stats {
            assert_eq!(row.len(), 2);
            for cell in row {
                assert_eq!(cell.committed_uops, 1_000);
            }
        }
        assert_eq!(m.config_index(&Configuration::OneCluster), Some(1));
        assert_eq!(m.config_index(&Configuration::Rhop), None);
    }

    #[test]
    fn parallel_and_serial_results_agree() {
        let points = small_points(2);
        let configs = vec![Configuration::Op, Configuration::Vc { num_vcs: 2 }];
        let a = run_matrix(&MachineConfig::paper_2cluster(), &configs, &points, 800, 1);
        let b = run_matrix(&MachineConfig::paper_2cluster(), &configs, &points, 800, 4);
        assert_eq!(a.stats, b.stats, "thread count must not affect results");
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = run_matrix(&MachineConfig::paper_2cluster(), &[], &[], 100, 2);
        assert!(m.stats.is_empty());
    }
}
