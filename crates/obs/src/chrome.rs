//! Chrome-trace-event JSON builder.
//!
//! Emits the object form (`{"traceEvents": [...]}`) of the trace-event
//! format, loadable in `chrome://tracing` and <https://ui.perfetto.dev>.
//! Timestamps and durations are in microseconds; the simulator maps one
//! cycle to one microsecond so a timeline reads directly in cycles.
//!
//! Hand-rolled serialization keeps the crate zero-dependency; the format's
//! subset used here (complete `X`, counter `C`, instant `i`, metadata `M`
//! events with flat string/number args) needs only string escaping.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Escape a string for embedding in a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Format an `f64` as JSON (no NaN/Inf — clamp to 0).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // Trim to a compact fixed precision; traces do not need full f64.
        let s = format!("{v:.6}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        if s.is_empty() || s == "-" {
            "0".to_string()
        } else {
            s.to_string()
        }
    } else {
        "0".to_string()
    }
}

/// Builder accumulating trace events; serialize with [`ChromeTrace::to_json`]
/// or write to disk with [`ChromeTrace::save`].
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    /// New empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    #[allow(clippy::too_many_arguments)]
    fn push_event(
        &mut self,
        ph: char,
        name: &str,
        pid: u64,
        tid: u64,
        ts: u64,
        dur: Option<u64>,
        args: &[(&str, ArgValue<'_>)],
    ) {
        let mut e = String::with_capacity(96);
        e.push_str("{\"name\":\"");
        escape_into(&mut e, name);
        let _ = write!(
            e,
            "\",\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}"
        );
        if let Some(d) = dur {
            let _ = write!(e, ",\"dur\":{d}");
        }
        if ph == 'i' {
            // Instant events need a scope; thread scope renders as a tick.
            e.push_str(",\"s\":\"t\"");
        }
        if !args.is_empty() {
            e.push_str(",\"args\":{");
            for (i, (k, v)) in args.iter().enumerate() {
                if i > 0 {
                    e.push(',');
                }
                e.push('"');
                escape_into(&mut e, k);
                e.push_str("\":");
                match v {
                    ArgValue::Str(s) => {
                        e.push('"');
                        escape_into(&mut e, s);
                        e.push('"');
                    }
                    ArgValue::Num(n) => e.push_str(&fmt_f64(*n)),
                    ArgValue::Int(n) => {
                        let _ = write!(e, "{n}");
                    }
                }
            }
            e.push('}');
        }
        e.push('}');
        self.events.push(e);
    }

    /// A complete (`ph:"X"`) slice: `name` on track `(pid, tid)` covering
    /// `[ts, ts+dur)` microseconds, with integer args.
    pub fn complete(
        &mut self,
        name: &str,
        pid: u64,
        tid: u64,
        ts: u64,
        dur: u64,
        args: &[(&str, u64)],
    ) {
        let args: Vec<(&str, ArgValue<'_>)> =
            args.iter().map(|&(k, v)| (k, ArgValue::Int(v))).collect();
        self.push_event('X', name, pid, tid, ts, Some(dur), &args);
    }

    /// A counter (`ph:"C"`) sample: each `(series, value)` pair becomes a
    /// stacked series on the counter track `name`.
    pub fn counter(&mut self, name: &str, pid: u64, ts: u64, series: &[(&str, f64)]) {
        let args: Vec<(&str, ArgValue<'_>)> =
            series.iter().map(|&(k, v)| (k, ArgValue::Num(v))).collect();
        self.push_event('C', name, pid, 0, ts, None, &args);
    }

    /// An instant (`ph:"i"`) marker on track `(pid, tid)`.
    pub fn instant(&mut self, name: &str, pid: u64, tid: u64, ts: u64) {
        self.push_event('i', name, pid, tid, ts, None, &[]);
    }

    /// Name a process track (`chrome://tracing` group header).
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.push_event(
            'M',
            "process_name",
            pid,
            0,
            0,
            None,
            &[("name", ArgValue::Str(name))],
        );
    }

    /// Name a thread track within a process.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.push_event(
            'M',
            "thread_name",
            pid,
            tid,
            0,
            None,
            &[("name", ArgValue::Str(name))],
        );
    }

    /// Order a thread track within its process (lower sorts first).
    pub fn thread_sort_index(&mut self, pid: u64, tid: u64, index: u64) {
        self.push_event(
            'M',
            "thread_sort_index",
            pid,
            tid,
            0,
            None,
            &[("sort_index", ArgValue::Int(index))],
        );
    }

    /// Serialize to the `{"traceEvents":[...]}` object form.
    pub fn to_json(&self) -> String {
        let mut out =
            String::with_capacity(32 + self.events.iter().map(|e| e.len() + 2).sum::<usize>());
        out.push_str("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(e);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Write the serialized trace to `path`.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

enum ArgValue<'a> {
    Str(&'a str),
    Num(f64),
    Int(u64),
}

impl std::fmt::Debug for ArgValue<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgValue::Str(s) => write!(f, "Str({s:?})"),
            ArgValue::Num(n) => write!(f, "Num({n})"),
            ArgValue::Int(n) => write!(f, "Int({n})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_event_shape() {
        let mut t = ChromeTrace::new();
        t.complete("fetch", 1, 2, 100, 50, &[("uops", 7)]);
        let json = t.to_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains(
            "{\"name\":\"fetch\",\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":100,\"dur\":50,\"args\":{\"uops\":7}}"
        ));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn counter_event_shape() {
        let mut t = ChromeTrace::new();
        t.counter("ipc", 1, 1000, &[("ipc", 2.125)]);
        assert!(t
            .to_json()
            .contains("\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":1000,\"args\":{\"ipc\":2.125}"));
    }

    #[test]
    fn metadata_and_instant_events() {
        let mut t = ChromeTrace::new();
        t.process_name(3, "scheme op");
        t.thread_name(3, 1, "skip");
        t.thread_sort_index(3, 1, 9);
        t.instant("deadlock?", 3, 1, 77);
        let json = t.to_json();
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"args\":{\"name\":\"scheme op\"}"));
        assert!(json.contains("\"args\":{\"sort_index\":9}"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn strings_are_escaped() {
        let mut t = ChromeTrace::new();
        t.process_name(1, "a\"b\\c\nd");
        assert!(t.to_json().contains("a\\\"b\\\\c\\nd"));
    }

    #[test]
    fn floats_are_compact_and_finite() {
        assert_eq!(fmt_f64(2.5), "2.5");
        assert_eq!(fmt_f64(2.0), "2");
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "0");
        assert_eq!(fmt_f64(-0.125), "-0.125");
    }

    #[test]
    fn output_parses_as_json() {
        // Minimal structural validation: balanced braces/brackets and no
        // bare control characters — a cheap stand-in for a JSON parser.
        let mut t = ChromeTrace::new();
        t.process_name(1, "p");
        t.complete("s", 1, 1, 0, 10, &[]);
        t.counter("c", 1, 0, &[("v", 1.0)]);
        let json = t.to_json();
        let mut depth = 0i64;
        let mut in_str = false;
        let mut esc = false;
        for c in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                c if (c as u32) < 0x20 && in_str => panic!("raw control char in string"),
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }
}
