//! The observer trait and ready-made sinks.
//!
//! [`ObsSink`] is generic over the delta payload `D` so this crate never
//! names the simulator's stats type — the simulator instantiates
//! `ObsSink<SimStats>` and stays the only place that knows what a stats
//! delta means. All callbacks have empty default bodies: a sink implements
//! only what it cares about, and the simulator pays nothing for callbacks a
//! sink ignores beyond the virtual call.

use std::sync::{Arc, Mutex};

use crate::metrics::Log2Hist;

/// One sampling interval's worth of telemetry: the delta of the full stats
/// between two interval boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalSample<D> {
    /// 0-based interval index within the run.
    pub index: u64,
    /// First cycle covered by this interval (inclusive).
    pub start_cycle: u64,
    /// Cycle at the interval's end boundary (exclusive; `end_cycle -
    /// start_cycle` is the interval length, shorter than the configured
    /// period only for the final flush).
    pub end_cycle: u64,
    /// Stats delta accumulated over `[start_cycle, end_cycle)`. Summing
    /// the deltas of all intervals reconstructs the run's final stats
    /// exactly — the simulator's tests enforce this field by field.
    pub delta: D,
}

/// One contiguous span of cycles the simulator skipped arithmetically
/// instead of stepping. Spans may cross interval boundaries; the simulator
/// attributes the skipped cycles to each interval in closed form, so a
/// span's `len` can exceed the sampling period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipSpan {
    /// First skipped cycle.
    pub start_cycle: u64,
    /// Number of cycles skipped.
    pub len: u64,
    /// Why the span was provably idle (the simulator's idle classification,
    /// rendered to a static name so this crate stays simulator-agnostic).
    pub label: &'static str,
}

/// Observer interface the simulator drives. `D` is the stats-delta payload.
pub trait ObsSink<D> {
    /// An interval boundary was crossed; `sample.delta` covers exactly the
    /// cycles since the previous boundary (or run start).
    fn on_interval(&mut self, sample: &IntervalSample<D>) {
        let _ = sample;
    }

    /// Point-in-time gauge readings at an interval boundary (queue depths
    /// and other instantaneous state that has no meaningful delta).
    fn on_gauges(&mut self, cycle: u64, gauges: &[(&'static str, f64)]) {
        let _ = (cycle, gauges);
    }

    /// A span of provably idle cycles was skipped arithmetically.
    fn on_skip_span(&mut self, span: &SkipSpan) {
        let _ = span;
    }

    /// The run finished: `total` is the final stats, `cycles` the final
    /// cycle count. Fired after the trailing partial interval (if any).
    fn on_finish(&mut self, total: &D, cycles: u64) {
        let _ = (total, cycles);
    }
}

/// A sink that drops everything. Useful as a placeholder and for measuring
/// pure observer-attachment overhead.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl<D> ObsSink<D> for NullSink {}

/// A sink that records everything in memory, for tests and offline export.
#[derive(Debug, Clone)]
pub struct MemSink<D> {
    /// All interval samples, in emission order.
    pub intervals: Vec<IntervalSample<D>>,
    /// All gauge snapshots, in emission order.
    pub gauges: Vec<(u64, Vec<(&'static str, f64)>)>,
    /// All skip spans, in emission order.
    pub skip_spans: Vec<SkipSpan>,
    /// Histogram of skip-span lengths.
    pub skip_hist: Log2Hist,
    /// Final `(total, cycles)` from [`ObsSink::on_finish`], if fired.
    pub finished: Option<(D, u64)>,
}

impl<D> Default for MemSink<D> {
    fn default() -> Self {
        MemSink {
            intervals: Vec::new(),
            gauges: Vec::new(),
            skip_spans: Vec::new(),
            skip_hist: Log2Hist::new(),
            finished: None,
        }
    }
}

impl<D> MemSink<D> {
    /// New empty sink.
    pub fn new() -> Self {
        MemSink::default()
    }
}

impl<D: Clone> ObsSink<D> for MemSink<D> {
    fn on_interval(&mut self, sample: &IntervalSample<D>) {
        self.intervals.push(sample.clone());
    }

    fn on_gauges(&mut self, cycle: u64, gauges: &[(&'static str, f64)]) {
        self.gauges.push((cycle, gauges.to_vec()));
    }

    fn on_skip_span(&mut self, span: &SkipSpan) {
        self.skip_spans.push(*span);
        self.skip_hist.record(span.len);
    }

    fn on_finish(&mut self, total: &D, cycles: u64) {
        self.finished = Some((total.clone(), cycles));
    }
}

/// Shared handle to a sink: the simulator takes ownership of the observer
/// it is given, so a caller that wants to read the collected telemetry
/// afterwards attaches a `Shared<MemSink<_>>` clone and keeps the other.
#[derive(Debug, Default)]
pub struct Shared<T>(Arc<Mutex<T>>);

impl<T> Shared<T> {
    /// Wrap a sink in a shared handle.
    pub fn new(inner: T) -> Self {
        Shared(Arc::new(Mutex::new(inner)))
    }

    /// Run `f` with the inner sink locked.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.0.lock().expect("obs sink poisoned"))
    }
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared(Arc::clone(&self.0))
    }
}

impl<D, T: ObsSink<D>> ObsSink<D> for Shared<T> {
    fn on_interval(&mut self, sample: &IntervalSample<D>) {
        self.with(|s| s.on_interval(sample));
    }

    fn on_gauges(&mut self, cycle: u64, gauges: &[(&'static str, f64)]) {
        self.with(|s| s.on_gauges(cycle, gauges));
    }

    fn on_skip_span(&mut self, span: &SkipSpan) {
        self.with(|s| s.on_skip_span(span));
    }

    fn on_finish(&mut self, total: &D, cycles: u64) {
        self.with(|s| s.on_finish(total, cycles));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u64) -> IntervalSample<u64> {
        IntervalSample {
            index: i,
            start_cycle: i * 10,
            end_cycle: (i + 1) * 10,
            delta: i + 1,
        }
    }

    #[test]
    fn mem_sink_records_everything() {
        let mut s = MemSink::<u64>::new();
        s.on_interval(&sample(0));
        s.on_interval(&sample(1));
        s.on_gauges(10, &[("ready", 3.0)]);
        s.on_skip_span(&SkipSpan {
            start_cycle: 4,
            len: 6,
            label: "frontend-starved",
        });
        s.on_finish(&3, 20);
        assert_eq!(s.intervals.len(), 2);
        assert_eq!(s.gauges, vec![(10, vec![("ready", 3.0)])]);
        assert_eq!(s.skip_spans.len(), 1);
        assert_eq!(s.skip_hist.count(), 1);
        assert_eq!(s.finished, Some((3, 20)));
    }

    #[test]
    fn shared_delegates_and_is_readable_after() {
        let handle = Shared::new(MemSink::<u64>::new());
        let mut observer = handle.clone();
        observer.on_interval(&sample(0));
        observer.on_finish(&1, 10);
        assert_eq!(handle.with(|s| s.intervals.len()), 1);
        assert_eq!(handle.with(|s| s.finished), Some((1, 10)));
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut s = NullSink;
        ObsSink::<u64>::on_interval(&mut s, &sample(0));
        ObsSink::<u64>::on_finish(&mut s, &0, 0);
    }
}
