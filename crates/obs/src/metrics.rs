//! Counters and log2-bucket histograms.
//!
//! The histogram is the workhorse: job latencies and skip-span lengths both
//! span four-plus orders of magnitude, where fixed-width buckets are either
//! blind at the low end or unbounded at the high end. Power-of-two buckets
//! give ~±50 % resolution everywhere at a fixed 64-slot cost, which is all
//! a p50/p99 readout needs.

/// A monotonically increasing named counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Increment by one.
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.value)
    }
}

/// A monotonically increasing counter usable through a shared reference —
/// the concurrent sibling of [`Counter`] for long-lived services whose
/// reactor, scheduler and worker threads all bump the same figures
/// (jobs accepted, rejected, results streamed). Relaxed ordering: these
/// are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct SharedCounter {
    value: std::sync::atomic::AtomicU64,
}

impl SharedCounter {
    /// New counter at zero.
    pub fn new() -> Self {
        SharedCounter::default()
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl std::fmt::Display for SharedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.get())
    }
}

/// A point-in-time level that can go both ways (jobs in flight, queue
/// depth, connected clients), usable through a shared reference from any
/// thread. Decrements below zero clamp at zero rather than wrapping —
/// a miscounted release shows up as a stuck-low gauge, not as 2^64.
#[derive(Debug, Default)]
pub struct Gauge {
    value: std::sync::atomic::AtomicI64,
}

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Raise the level by one.
    pub fn inc(&self) {
        self.value
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Lower the level by one.
    pub fn dec(&self) {
        self.value
            .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Set the level outright.
    pub fn set(&self, v: i64) {
        self.value.store(v, std::sync::atomic::Ordering::Relaxed);
    }

    /// Current level, clamped at zero.
    pub fn get(&self) -> u64 {
        self.value.load(std::sync::atomic::Ordering::Relaxed).max(0) as u64
    }
}

impl std::fmt::Display for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.get())
    }
}

/// Histogram with power-of-two buckets: bucket `i` holds values `v` with
/// `floor(log2(max(v,1))) == i`, i.e. `[2^i, 2^(i+1))`, with `0` counted in
/// bucket 0. Covers the full `u64` range in 64 buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Hist {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Log2Hist {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Log2Hist {
    /// New empty histogram.
    pub fn new() -> Self {
        Log2Hist::default()
    }

    /// Bucket index for a value.
    fn bucket_of(v: u64) -> usize {
        63 - v.max(1).leading_zeros() as usize
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Log2Hist) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Approximate quantile `q` in [0, 1]: the lower bound of the bucket
    /// containing the `ceil(q * count)`-th observation (so `percentile(1.0)`
    /// lands in the bucket of the maximum). Returns 0 for an empty
    /// histogram. Resolution is the bucket width, i.e. a factor of two.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (1u64 << i, n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn shared_counter_counts_through_shared_refs() {
        let c = SharedCounter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        c.inc();
                    }
                });
            }
        });
        c.add(2);
        assert_eq!(c.get(), 402);
        assert_eq!(c.to_string(), "402");
    }

    #[test]
    fn gauge_tracks_levels_and_clamps_below_zero() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.dec();
        g.dec(); // one release too many
        assert_eq!(g.get(), 0, "underflow clamps at zero");
        g.inc();
        assert_eq!(g.get(), 0, "still recovering the spurious release");
        g.set(7);
        assert_eq!(g.get(), 7);
        assert_eq!(g.to_string(), "7");
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Log2Hist::bucket_of(0), 0);
        assert_eq!(Log2Hist::bucket_of(1), 0);
        assert_eq!(Log2Hist::bucket_of(2), 1);
        assert_eq!(Log2Hist::bucket_of(3), 1);
        assert_eq!(Log2Hist::bucket_of(4), 2);
        assert_eq!(Log2Hist::bucket_of(1023), 9);
        assert_eq!(Log2Hist::bucket_of(1024), 10);
        assert_eq!(Log2Hist::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn record_tracks_summary_stats() {
        let mut h = Log2Hist::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        for v in [3, 9, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1112);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 278.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_is_bucket_lower_bound() {
        let mut h = Log2Hist::new();
        for _ in 0..99 {
            h.record(10); // bucket [8, 16)
        }
        h.record(5000); // bucket [4096, 8192)
        assert_eq!(h.percentile(0.5), 8);
        assert_eq!(h.percentile(0.99), 8);
        assert_eq!(h.percentile(1.0), 4096);
        assert_eq!(Log2Hist::new().percentile(0.5), 0);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Log2Hist::new();
        let mut b = Log2Hist::new();
        let mut both = Log2Hist::new();
        for v in [1u64, 7, 300] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 90000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn nonzero_buckets_are_sorted_lower_bounds() {
        let mut h = Log2Hist::new();
        h.record(1);
        h.record(1);
        h.record(600);
        assert_eq!(h.nonzero_buckets(), vec![(1, 2), (512, 1)]);
    }
}
