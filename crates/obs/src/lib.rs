//! Zero-dependency observability kit for the virtclust simulator.
//!
//! The simulator's end-of-run [`SimStats`-shaped] aggregates hide how
//! strongly behavior varies by program phase — and phase-resolved views are
//! exactly what an adaptive steering controller or an async evaluation
//! service needs. This crate supplies the plumbing without knowing anything
//! about the simulator itself:
//!
//! - [`ObsSink`]: the observer trait, generic over the delta payload so the
//!   simulator can emit full-stats deltas without this crate depending on it.
//! - [`metrics`]: counters and log2-bucket histograms for latency/length
//!   distributions (job latency, skip-span length).
//! - [`chrome`]: a Chrome-trace-event JSON builder whose output loads in
//!   `chrome://tracing` and Perfetto.
//!
//! The crate is `std`-only by design: it sits *below* the simulator in the
//! dependency graph, so anything here is usable from the hot path without
//! cycles or feature gates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod metrics;
pub mod sink;

pub use chrome::ChromeTrace;
pub use metrics::{Counter, Gauge, Log2Hist, SharedCounter};
pub use sink::{IntervalSample, MemSink, NullSink, ObsSink, Shared, SkipSpan};
