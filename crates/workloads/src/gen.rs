//! Static program generation from [`KernelParams`].
//!
//! The generator builds regions the way a compiler's scheduler sees loop
//! bodies: `chains` interleaved dependence chains, each carried by a
//! dedicated value register, with loads/stores attached to per-chain address
//! streams, occasional cross-chain reads, and a loop-closing branch. The
//! result is a [`Program`] whose DDGs have controllable width, length,
//! criticality and tangling — the properties the steering passes consume.
//!
//! Register convention (16 INT + 16 FP architectural registers):
//! * `r0`, `r1` — read-only "constants" (never redefined);
//! * `r2..r9` — integer chain value registers (chain *i* → `r(2+i)`);
//! * `r10..r15` — address-stream registers (chain *i* → `r(10 + i%6)`);
//! * `f0..f7` — FP chain value registers;
//! * `f8` — FP constant.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use virtclust_uarch::{ArchReg, OpClass, Program, Region, StaticInst};

use crate::params::KernelParams;

/// Mixing constant for per-region seeds (splitmix64 increment).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Is chain `i` a floating-point chain under `params`?
pub(crate) fn chain_is_fp(params: &KernelParams, chain: u32) -> bool {
    let n_fp = (params.chains as f64 * params.fp_frac).round() as u32;
    chain < n_fp
}

/// Value register of chain `i`.
pub(crate) fn chain_value_reg(params: &KernelParams, chain: u32) -> ArchReg {
    if chain_is_fp(params, chain) {
        ArchReg::flt(chain as u8)
    } else {
        ArchReg::int(2 + chain as u8)
    }
}

/// Address-stream register of chain `i`.
pub(crate) fn chain_addr_reg(chain: u32) -> ArchReg {
    ArchReg::int(10 + (chain % 6) as u8)
}

fn const_reg(fp: bool) -> ArchReg {
    if fp {
        ArchReg::flt(8)
    } else {
        ArchReg::int(0)
    }
}

fn gen_region(params: &KernelParams, region_idx: u32, seed: u64) -> Region {
    let mut rng = SmallRng::seed_from_u64(seed ^ (u64::from(region_idx)).wrapping_mul(GOLDEN));
    let jitter = (params.region_insts / 4).max(1);
    let n = params.region_insts + rng.gen_range(0..=2 * jitter) - jitter;
    let n = n.max(4);

    let mut region = Region::new(region_idx, format!("region{region_idx}"));
    for _ in 0..n - 1 {
        // Chains carry Zipf-skewed work (chain 0 is the hot one), like real
        // loop bodies where one recurrence dominates. Skewed chains are
        // what forces balance-driven partitioners to cut dependences.
        let chain = {
            let total: f64 = (0..params.chains).map(|c| 1.0 / f64::from(c + 1)).sum();
            let mut roll = rng.gen::<f64>() * total;
            let mut pick = params.chains - 1;
            for c in 0..params.chains {
                roll -= 1.0 / f64::from(c + 1);
                if roll <= 0.0 {
                    pick = c;
                    break;
                }
            }
            pick
        };
        let fp = chain_is_fp(params, chain);
        let value = chain_value_reg(params, chain);
        let addr = chain_addr_reg(chain);
        let roll: f64 = rng.gen();

        let inst = if roll < params.load_frac {
            // Load into the chain's value register. Pointer-chasing loads
            // derive the address from the previous value (serial chain);
            // regular loads read the address stream register.
            let addr_src = if rng.gen_bool(params.pointer_chase) && !fp {
                value
            } else {
                addr
            };
            StaticInst::new(OpClass::Load, &[addr_src], Some(value))
        } else if roll < params.load_frac + params.store_frac {
            StaticInst::new(OpClass::Store, &[addr, value], None)
        } else if roll < params.load_frac + params.store_frac + params.branch_frac {
            StaticInst::new(OpClass::Branch, &[value], None)
        } else if rng.gen_bool(0.15) {
            // Address-stream advance (pointer bump).
            StaticInst::new(OpClass::IntAlu, &[addr, ArchReg::int(1)], Some(addr))
        } else {
            // Chain compute op, occasionally tangled with another chain.
            let partner = if params.chains > 1 && rng.gen_bool(params.cross_links) {
                let mut other = rng.gen_range(0..params.chains - 1);
                if other >= chain {
                    other += 1;
                }
                chain_value_reg(params, other)
            } else {
                const_reg(fp)
            };
            let op_roll: f64 = rng.gen();
            let op = if fp {
                if op_roll < params.div_frac {
                    OpClass::FpDiv
                } else if op_roll < params.div_frac + params.mul_frac {
                    OpClass::FpMul
                } else {
                    OpClass::FpAdd
                }
            } else if op_roll < params.div_frac {
                OpClass::IntDiv
            } else if op_roll < params.div_frac + params.mul_frac {
                OpClass::IntMul
            } else {
                OpClass::IntAlu
            };
            // FP chains tangled with INT chains would mix register classes
            // in one op; keep partners class-consistent.
            let partner = if partner.class != value.class {
                const_reg(fp)
            } else {
                partner
            };
            // Chain breaks start a fresh value (intra-chain parallelism):
            // the op reads only constants, not the chain's previous value.
            // The hot chain (0) is a recurrence — it almost never breaks,
            // so balancing it away *must* pay communication.
            let break_p = if chain == 0 {
                params.chain_break * 0.25
            } else {
                params.chain_break
            };
            let first = if rng.gen_bool(break_p) {
                const_reg(fp)
            } else {
                value
            };
            StaticInst::new(op, &[first, partner], Some(value))
        };
        region.push(inst);
    }
    // Loop-closing branch on chain 0's value.
    region.push(StaticInst::new(
        OpClass::Branch,
        &[chain_value_reg(params, 0)],
        None,
    ));
    region
}

/// Deterministically generate the static program for `params` from `seed`.
pub fn build_program(name: &str, params: &KernelParams, seed: u64) -> Program {
    params.validate();
    let mut program = Program::new(name);
    for r in 0..params.regions {
        program.add_region(gen_region(params, r, seed));
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtclust_uarch::RegClass;

    #[test]
    fn generation_is_deterministic() {
        let p = KernelParams::base_int();
        let a = build_program("a", &p, 42);
        let b = build_program("b", &p, 42);
        assert_eq!(a.regions, b.regions);
        let c = build_program("c", &p, 43);
        assert_ne!(a.regions, c.regions, "different seed, different program");
    }

    #[test]
    fn regions_end_with_loop_branch() {
        let p = KernelParams::base_int();
        let prog = build_program("t", &p, 1);
        for region in &prog.regions {
            let last = region.insts.last().expect("non-empty");
            assert_eq!(last.op, OpClass::Branch);
        }
    }

    #[test]
    fn op_mix_roughly_matches_params() {
        let mut p = KernelParams::base_int();
        p.regions = 20;
        p.region_insts = 100;
        let prog = build_program("mix", &p, 7);
        let total: usize = prog.static_len();
        let loads = prog
            .regions
            .iter()
            .flat_map(|r| &r.insts)
            .filter(|i| i.op == OpClass::Load)
            .count();
        let frac = loads as f64 / total as f64;
        assert!(
            (frac - p.load_frac).abs() < 0.06,
            "load fraction {frac} vs configured {}",
            p.load_frac
        );
    }

    #[test]
    fn fp_kernel_emits_fp_ops_on_fp_registers() {
        let p = KernelParams::base_fp();
        let prog = build_program("fp", &p, 3);
        let mut fp_ops = 0;
        for inst in prog.regions.iter().flat_map(|r| &r.insts) {
            if inst.op.is_fp() {
                fp_ops += 1;
                assert_eq!(inst.dst.expect("fp compute has dst").class, RegClass::Flt);
                for s in inst.srcs.iter() {
                    assert_eq!(s.class, RegClass::Flt, "fp op reads fp regs");
                }
            }
        }
        assert!(fp_ops > 0, "fp kernel must generate fp ops");
    }

    #[test]
    fn chains_use_disjoint_value_registers() {
        let p = KernelParams::base_int();
        let regs: Vec<ArchReg> = (0..p.chains).map(|c| chain_value_reg(&p, c)).collect();
        for (i, a) in regs.iter().enumerate() {
            for b in regs.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn constants_are_never_redefined() {
        let p = KernelParams::base_int();
        let prog = build_program("c", &p, 9);
        for inst in prog.regions.iter().flat_map(|r| &r.insts) {
            if let Some(d) = inst.dst {
                assert_ne!(d, ArchReg::int(0), "r0 is read-only");
                assert_ne!(d, ArchReg::int(1), "r1 is read-only");
                assert_ne!(d, ArchReg::flt(8), "f8 is read-only");
            }
        }
    }

    #[test]
    fn region_count_and_size_follow_params() {
        let mut p = KernelParams::base_int();
        p.regions = 12;
        p.region_insts = 40;
        let prog = build_program("sz", &p, 5);
        assert_eq!(prog.regions.len(), 12);
        for r in &prog.regions {
            assert!(r.len() >= 4 && r.len() <= 60, "len={}", r.len());
        }
    }
}
