//! Workload parameterisation: the structural axes steering quality
//! depends on.

/// Which half of SPEC CPU2000 a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPECint 2000.
    Int,
    /// SPECfp 2000.
    Fp,
}

impl Suite {
    /// Display name ("INT" / "FP").
    pub fn name(self) -> &'static str {
        match self {
            Suite::Int => "INT",
            Suite::Fp => "FP",
        }
    }
}

/// Structural parameters of a synthetic benchmark kernel.
///
/// These are the axes the steering mechanisms of the paper are sensitive
/// to; each SPEC benchmark analogue in [`crate::spec`] is a point in this
/// space chosen to match the real program's published character (pointer
/// chasing for `mcf`, wide independent FP loops for `galgel`, …).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelParams {
    /// Static scheduling regions in the program (loop bodies /
    /// superblocks).
    pub regions: u32,
    /// Approximate static micro-ops per region.
    pub region_insts: u32,
    /// Independent dependence chains interleaved per region — the region's
    /// intrinsic ILP width, the axis that decides how much clustering can
    /// help at all.
    pub chains: u32,
    /// Probability that a compute op additionally reads another chain's
    /// register (cross-chain tangles force communication under any split).
    pub cross_links: f64,
    /// Fraction of chains carrying floating-point values.
    pub fp_frac: f64,
    /// Among compute ops: probability of a multiply (latency 3–5).
    pub mul_frac: f64,
    /// Among compute ops: probability of a divide (latency ~20).
    pub div_frac: f64,
    /// Fraction of ops that are loads.
    pub load_frac: f64,
    /// Fraction of ops that are stores.
    pub store_frac: f64,
    /// Fraction of ops (besides the loop-closing branch) that are branches.
    pub branch_frac: f64,
    /// log2 of the data footprint in bytes (15 → L1-resident, 21 →
    /// L2-resident, 26 → memory-bound).
    pub footprint_log2: u32,
    /// Fraction of loads whose address depends on the previous load of the
    /// same chain (pointer chasing: serial and cache-hostile).
    pub pointer_chase: f64,
    /// Branch outcome entropy: 0 = perfectly predictable loop branches,
    /// 1 = coin flips.
    pub branch_entropy: f64,
    /// Stride in bytes for regular (non-chasing) memory streams.
    pub stride: u64,
    /// Mean loop iterations executed per region visit.
    pub mean_iters: u32,
    /// Probability that a compute op starts a fresh value (reads a constant
    /// instead of the chain's previous value) — intra-chain parallelism.
    /// 0 = each chain fully serial; higher values let issue width matter.
    pub chain_break: f64,
}

impl KernelParams {
    /// A neutral mid-sized integer kernel; named benchmarks override
    /// fields from here.
    pub fn base_int() -> Self {
        KernelParams {
            regions: 8,
            region_insts: 48,
            chains: 4,
            cross_links: 0.16,
            fp_frac: 0.0,
            mul_frac: 0.08,
            div_frac: 0.01,
            load_frac: 0.22,
            store_frac: 0.10,
            branch_frac: 0.10,
            footprint_log2: 19,
            pointer_chase: 0.06,
            branch_entropy: 0.10,
            stride: 8,
            mean_iters: 24,
            chain_break: 0.12,
        }
    }

    /// A neutral mid-sized floating-point kernel.
    pub fn base_fp() -> Self {
        KernelParams {
            regions: 6,
            region_insts: 64,
            chains: 5,
            cross_links: 0.10,
            fp_frac: 0.7,
            mul_frac: 0.35,
            div_frac: 0.02,
            load_frac: 0.24,
            store_frac: 0.12,
            branch_frac: 0.03,
            footprint_log2: 22,
            pointer_chase: 0.02,
            branch_entropy: 0.03,
            stride: 8,
            mean_iters: 48,
            chain_break: 0.20,
        }
    }

    /// Sanity-check ranges; panics on nonsense (used by property tests).
    pub fn validate(&self) {
        assert!(self.regions >= 1 && self.region_insts >= 4);
        assert!(self.chains >= 1 && self.chains <= 8, "chains out of range");
        for (name, v) in [
            ("cross_links", self.cross_links),
            ("fp_frac", self.fp_frac),
            ("mul_frac", self.mul_frac),
            ("div_frac", self.div_frac),
            ("load_frac", self.load_frac),
            ("store_frac", self.store_frac),
            ("branch_frac", self.branch_frac),
            ("pointer_chase", self.pointer_chase),
            ("branch_entropy", self.branch_entropy),
            ("chain_break", self.chain_break),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name}={v} out of [0,1]");
        }
        assert!(self.load_frac + self.store_frac + self.branch_frac < 0.9);
        assert!((12..=28).contains(&self.footprint_log2));
        assert!(self.stride >= 1 && self.mean_iters >= 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_params_validate() {
        KernelParams::base_int().validate();
        KernelParams::base_fp().validate();
    }

    #[test]
    #[should_panic(expected = "chains out of range")]
    fn too_many_chains_rejected() {
        let mut p = KernelParams::base_int();
        p.chains = 9;
        p.validate();
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn bad_fraction_rejected() {
        let mut p = KernelParams::base_int();
        p.load_frac = 1.5;
        p.validate();
    }

    #[test]
    fn suite_names() {
        assert_eq!(Suite::Int.name(), "INT");
        assert_eq!(Suite::Fp.name(), "FP");
    }
}
