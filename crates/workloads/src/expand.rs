//! Trace expansion: from a static [`Program`] to the dynamic micro-op
//! stream the simulator consumes.
//!
//! The expander plays the role of the paper's traced IA-32 binary: it walks
//! regions with loop-like behaviour (hot regions revisited, geometric
//! iteration counts), attaches effective addresses to memory ops (strided
//! streams per static instruction, or uniform-random within the footprint
//! for pointer-chasing loads) and branch outcomes (structured loop
//! behaviour perturbed by the configured entropy).
//!
//! Everything derives from the seed: two expanders with the same program
//! shape, parameters and seed yield byte-identical streams even if the
//! program's *annotations* differ — which is what makes cross-policy
//! comparisons apples-to-apples.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use virtclust_uarch::{BranchInfo, DynUop, InstId, OpClass, Program, TraceSource};

use crate::params::KernelParams;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An endless, deterministic dynamic micro-op stream over a program.
///
/// Implements [`TraceSource`]; bound the simulation with
/// [`virtclust_sim::RunLimits::uops`](https://docs.rs/) (`max_uops`) rather
/// than expecting the stream to end.
pub struct TraceExpander<'p> {
    program: &'p Program,
    params: KernelParams,
    seed: u64,
    rng: SmallRng,
    queue: VecDeque<DynUop>,
    seq: u64,
    /// Per static memory instruction: dynamic access counter (drives the
    /// strided cursor).
    cursors: Vec<Vec<u64>>,
    footprint_mask: u64,
}

impl<'p> TraceExpander<'p> {
    /// Create an expander over `program` with the dynamic behaviour of
    /// `params`, seeded by `seed`.
    pub fn new(program: &'p Program, params: &KernelParams, seed: u64) -> Self {
        params.validate();
        let cursors = program
            .regions
            .iter()
            .map(|r| vec![0u64; r.len()])
            .collect();
        TraceExpander {
            program,
            params: *params,
            seed,
            rng: SmallRng::seed_from_u64(seed),
            queue: VecDeque::with_capacity(4096),
            seq: 0,
            cursors,
            footprint_mask: (1u64 << params.footprint_log2) - 1,
        }
    }

    /// Restart the stream from micro-op 0: afterwards the expander is
    /// indistinguishable from a freshly constructed one over the same
    /// program, parameters and seed (everything derives from the seed, so
    /// re-seeding the RNG and zeroing the cursors is a full reset).
    pub fn reset(&mut self) {
        self.rng = SmallRng::seed_from_u64(self.seed);
        self.queue.clear();
        self.seq = 0;
        for region in &mut self.cursors {
            region.fill(0);
        }
    }

    /// Stable per-static-instruction hash (decides per-site behaviour such
    /// as base address and branch bias).
    fn site_hash(&self, id: InstId) -> u64 {
        splitmix(self.seed ^ ((u64::from(id.region) << 32) | u64::from(id.index)))
    }

    /// Pick the next region to visit: hot-region behaviour via a Zipf-ish
    /// weighting (region r has weight 1/(r+1)).
    fn pick_region(&mut self) -> u32 {
        let n = self.program.regions.len() as u32;
        if n == 1 {
            return 0;
        }
        let total: f64 = (0..n).map(|r| 1.0 / f64::from(r + 1)).sum();
        let mut roll: f64 = self.rng.gen::<f64>() * total;
        for r in 0..n {
            roll -= 1.0 / f64::from(r + 1);
            if roll <= 0.0 {
                return r;
            }
        }
        n - 1
    }

    /// Geometric-ish iteration count with the configured mean.
    fn pick_iters(&mut self) -> u32 {
        let mean = self.params.mean_iters.max(1);
        1 + self.rng.gen_range(0..2 * mean)
    }

    fn expand_one_visit(&mut self) {
        let region_idx = self.pick_region();
        let iters = self.pick_iters();
        let region = &self.program.regions[region_idx as usize];
        let n = region.insts.len();
        for iter in 0..iters {
            let last_iteration = iter + 1 == iters;
            let mut pos = 0usize;
            while pos < n {
                let inst = &region.insts[pos];
                let id = InstId::new(region_idx, pos as u32);
                let mem_addr = if inst.op.is_mem() {
                    Some(self.gen_addr(id, inst.op))
                } else {
                    None
                };
                let is_loop_branch = pos + 1 == n;
                let branch = if inst.op.is_branch() {
                    Some(self.gen_branch(id, is_loop_branch, last_iteration))
                } else {
                    None
                };
                self.queue
                    .push_back(DynUop::from_static(self.seq, id, inst, mem_addr, branch));
                self.seq += 1;

                // Hammock control flow: an inner branch that is NOT taken
                // skips its per-site hammock (the next few instructions).
                // This is the dynamic-work variability that compile-time
                // balance estimates cannot see (Sec. 3.2 of the paper) —
                // the static passes always schedule the whole region.
                if let Some(b) = branch {
                    if !is_loop_branch && !b.taken {
                        let h = self.site_hash(id);
                        let hammock = 2 + ((h >> 12) % 6) as usize; // 2..=7
                        pos += hammock;
                    }
                }
                pos += 1;
            }
        }
    }

    fn gen_addr(&mut self, id: InstId, _op: OpClass) -> u64 {
        let h = self.site_hash(id);
        // Sites are pointer-chasing with probability `pointer_chase`
        // (deterministic per site, like a compiler knows a load walks a
        // list).
        let chasing = (h & 0xffff) as f64 / 65536.0 < self.params.pointer_chase;
        let cursor = &mut self.cursors[id.region as usize][id.index as usize];
        *cursor += 1;
        let addr = if chasing {
            // Irregular: a new pseudo-random cache line every access.
            splitmix(h ^ *cursor) & self.footprint_mask
        } else {
            // Regular: strided stream from a per-site base.
            (h.wrapping_add(*cursor * self.params.stride)) & self.footprint_mask
        };
        addr & !0x7 // 8-byte aligned
    }

    /// Capture hook: pull the next `n` micro-ops and hand each to `sink`.
    ///
    /// This is the expander side of the trace capture pipeline
    /// (`virtclust-trace`): drive it with a sink that writes each micro-op
    /// to a `TraceWriter` and the persisted file replays the exact stream
    /// this expander would have fed the simulator. The sink may fail
    /// (e.g. on I/O errors); capture stops at the first failure and the
    /// error is returned. Returns the number of micro-ops delivered
    /// (always `n` — the expander is endless).
    pub fn capture<E>(
        &mut self,
        n: u64,
        mut sink: impl FnMut(&DynUop) -> Result<(), E>,
    ) -> Result<u64, E> {
        for i in 0..n {
            let Some(uop) = self.next_uop() else {
                return Ok(i);
            };
            sink(&uop)?;
        }
        Ok(n)
    }

    fn gen_branch(&mut self, id: InstId, is_loop_branch: bool, last_iteration: bool) -> BranchInfo {
        let pc = (u64::from(id.region) << 32) | u64::from(id.index);
        let taken = if is_loop_branch {
            // Loop back-edge: taken until the visit's last iteration.
            !last_iteration
        } else {
            let h = self.site_hash(id);
            // `branch_entropy` selects the *fraction of sites* that are
            // data-dependent (hard to predict); the rest follow per-site
            // periodic patterns a local-history predictor learns. Noise is
            // a site property, not a per-instance coin flip — otherwise
            // every site's history gets polluted and nothing is learnable.
            let noisy_site =
                ((h >> 8) & 0xffff) as f64 / 65536.0 < self.params.branch_entropy * 1.5;
            if noisy_site {
                // Biased random: partially predictable, like real
                // data-dependent branches.
                let bias = 0.60 + 0.25 * ((h >> 48 & 0xff) as f64 / 255.0);
                self.rng.gen_bool(bias)
            } else {
                // Per-site periodic if/else rhythm.
                let period = 2 + (h >> 24) % 6; // 2..=7
                let split = 1 + (h >> 40) % (period - 1).max(1); // 1..period
                let cursor = &mut self.cursors[id.region as usize][id.index as usize];
                *cursor += 1;
                (*cursor % period) < split
            }
        };
        BranchInfo { taken, pc }
    }
}

impl TraceSource for TraceExpander<'_> {
    fn next_uop(&mut self) -> Option<DynUop> {
        if self.queue.is_empty() {
            self.expand_one_visit();
        }
        self.queue.pop_front()
    }

    fn region_uops(&self, region: u32) -> usize {
        self.program
            .regions
            .get(region as usize)
            .map_or(64, |r| r.len())
    }

    fn source_kind(&self) -> &'static str {
        "TraceExpander"
    }

    fn rewind(&mut self) -> Result<(), virtclust_uarch::RewindError> {
        self.reset();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::build_program;
    use crate::params::KernelParams;

    fn collect(n: usize, params: &KernelParams, prog_seed: u64, trace_seed: u64) -> Vec<DynUop> {
        let program = build_program("t", params, prog_seed);
        let mut ex = TraceExpander::new(&program, params, trace_seed);
        (0..n).map(|_| ex.next_uop().expect("endless")).collect()
    }

    #[test]
    fn stream_is_endless_and_sequential() {
        let p = KernelParams::base_int();
        let uops = collect(5000, &p, 1, 2);
        assert_eq!(uops.len(), 5000);
        for (i, u) in uops.iter().enumerate() {
            assert_eq!(u.seq, i as u64);
        }
    }

    #[test]
    fn expansion_is_deterministic_and_seed_sensitive() {
        let p = KernelParams::base_int();
        let a = collect(2000, &p, 1, 7);
        let b = collect(2000, &p, 1, 7);
        assert_eq!(a, b);
        let c = collect(2000, &p, 1, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn annotations_do_not_change_the_dynamic_stream() {
        let p = KernelParams::base_int();
        let program = build_program("t", &p, 1);
        let mut annotated = program.clone();
        for region in &mut annotated.regions {
            for inst in &mut region.insts {
                inst.hint = virtclust_uarch::SteerHint::Static { cluster: 1 };
            }
        }
        let mut ex_a = TraceExpander::new(&program, &p, 3);
        let mut ex_b = TraceExpander::new(&annotated, &p, 3);
        for _ in 0..2000 {
            let ua = ex_a.next_uop().unwrap();
            let ub = ex_b.next_uop().unwrap();
            assert_eq!(ua.seq, ub.seq);
            assert_eq!(ua.inst, ub.inst);
            assert_eq!(ua.op, ub.op);
            assert_eq!(ua.mem_addr, ub.mem_addr);
            assert_eq!(ua.branch, ub.branch);
            assert_ne!(ua.hint, ub.hint, "only the hints differ");
        }
    }

    #[test]
    fn capture_delivers_exactly_the_stream() {
        let p = KernelParams::base_int();
        let program = build_program("t", &p, 1);
        let mut captured = Vec::new();
        let mut ex = TraceExpander::new(&program, &p, 5);
        let n = ex
            .capture(1500, |u| {
                captured.push(*u);
                Ok::<(), ()>(())
            })
            .unwrap();
        assert_eq!(n, 1500);
        assert_eq!(captured, collect(1500, &p, 1, 5));

        // A failing sink stops the capture and surfaces the error.
        let mut ex = TraceExpander::new(&program, &p, 5);
        let mut seen = 0u64;
        let err = ex.capture(100, |_| {
            seen += 1;
            if seen == 10 {
                Err("sink full")
            } else {
                Ok(())
            }
        });
        assert_eq!(err, Err("sink full"));
        assert_eq!(seen, 10);
    }

    #[test]
    fn rewind_reproduces_the_exact_stream() {
        let p = KernelParams::base_int();
        let program = build_program("t", &p, 1);
        let mut ex = TraceExpander::new(&program, &p, 11);
        let first: Vec<DynUop> = (0..3000).map(|_| ex.next_uop().unwrap()).collect();
        ex.rewind().unwrap();
        let second: Vec<DynUop> = (0..3000).map(|_| ex.next_uop().unwrap()).collect();
        assert_eq!(first, second, "rewind must reproduce the stream exactly");
        // Rewind mid-visit (queue non-empty) works too.
        let mut ex = TraceExpander::new(&program, &p, 11);
        for _ in 0..7 {
            ex.next_uop();
        }
        ex.reset();
        let third: Vec<DynUop> = (0..3000).map(|_| ex.next_uop().unwrap()).collect();
        assert_eq!(first, third);
    }

    #[test]
    fn memory_ops_have_aligned_addresses_within_footprint() {
        let mut p = KernelParams::base_int();
        p.footprint_log2 = 16;
        let uops = collect(5000, &p, 2, 3);
        for u in uops.iter().filter(|u| u.op.is_mem()) {
            let addr = u.mem_addr.expect("mem op has address");
            assert_eq!(addr % 8, 0);
            assert!(addr < (1 << 16));
        }
    }

    #[test]
    fn loop_branches_are_mostly_taken() {
        let mut p = KernelParams::base_int();
        p.branch_entropy = 0.0;
        let uops = collect(20000, &p, 3, 4);
        let (mut taken, mut total) = (0u64, 0u64);
        for u in &uops {
            if let Some(b) = u.branch {
                total += 1;
                taken += u64::from(b.taken);
            }
        }
        assert!(total > 0);
        let rate = taken as f64 / total as f64;
        assert!(
            rate > 0.5,
            "loop back-edges keep the stream taken-biased: {rate}"
        );
    }

    #[test]
    fn entropy_selects_noisy_sites() {
        // entropy = 1 makes every inner-branch site data-dependent (biased
        // random); entropy = 0 makes them all periodic. The same seeds must
        // then produce different outcome streams.
        let mut noisy = KernelParams::base_int();
        noisy.branch_entropy = 1.0;
        let mut clean = noisy;
        clean.branch_entropy = 0.0;
        let a = collect(20000, &noisy, 3, 4);
        let b = collect(20000, &clean, 3, 4);
        let outcomes = |uops: &[DynUop]| -> Vec<bool> {
            uops.iter()
                .filter_map(|u| u.branch.map(|br| br.taken))
                .collect()
        };
        assert_ne!(
            outcomes(&a),
            outcomes(&b),
            "entropy must change branch behaviour"
        );
        // Noisy sites are taken-biased but not deterministic.
        let rate = outcomes(&a).iter().filter(|&&t| t).count() as f64 / outcomes(&a).len() as f64;
        assert!(
            (0.45..0.95).contains(&rate),
            "biased-random stream: rate {rate}"
        );
    }

    #[test]
    fn hammocks_skip_instructions_on_not_taken_branches() {
        // With branchy regions, some dynamic iterations must be shorter
        // than the static region (skipped hammocks) — so over a long run,
        // per-static-instruction execution counts diverge.
        let mut p = KernelParams::base_int();
        p.branch_frac = 0.15;
        p.branch_entropy = 0.5;
        let program = build_program("t", &p, 1);
        let mut ex = TraceExpander::new(&program, &p, 2);
        let mut counts: std::collections::HashMap<InstId, u64> = Default::default();
        for _ in 0..30000 {
            let u = ex.next_uop().unwrap();
            *counts.entry(u.inst).or_default() += 1;
        }
        // Within region 0, instruction execution counts must not all be
        // equal (hammock members execute less often).
        let region0: Vec<u64> = counts
            .iter()
            .filter(|(id, _)| id.region == 0)
            .map(|(_, &c)| c)
            .collect();
        assert!(region0.len() > 4);
        let min = region0.iter().min().unwrap();
        let max = region0.iter().max().unwrap();
        assert!(max > min, "hammocks create non-uniform execution counts");
    }

    #[test]
    fn region_uops_reports_static_sizes() {
        let p = KernelParams::base_int();
        let program = build_program("t", &p, 1);
        let ex = TraceExpander::new(&program, &p, 2);
        for (i, r) in program.regions.iter().enumerate() {
            assert_eq!(ex.region_uops(i as u32), r.len());
        }
        assert_eq!(ex.region_uops(999), 64, "unknown region falls back");
    }

    #[test]
    fn hot_regions_are_visited_more() {
        let mut p = KernelParams::base_int();
        p.regions = 6;
        let program = build_program("t", &p, 1);
        let mut ex = TraceExpander::new(&program, &p, 9);
        let mut per_region = vec![0u64; 6];
        for _ in 0..50000 {
            let u = ex.next_uop().unwrap();
            per_region[u.inst.region as usize] += 1;
        }
        assert!(
            per_region[0] > per_region[5],
            "region 0 is hotter: {per_region:?}"
        );
    }
}
