//! The 40 SPEC CPU2000 trace points of the paper's Figure 5.
//!
//! The paper selects representative simulation points with PinPoints (10 M
//! instructions each, ≤ 10 phases per benchmark) and reports per-point
//! slowdowns: 26 SPECint points (`gzip-1`…`twolf`) and 14 SPECfp points
//! (`wupwise`…`apsi`). Here each point is a [`TracePoint`]: a benchmark
//! parameter set (chosen to match the real program's published structural
//! character), a per-point seed perturbation, and a PinPoints-style weight.
//!
//! Parameter rationale, per benchmark family (see DESIGN.md §3):
//! * `mcf` — pointer-chasing, memory-bound, almost serial: clustering buys
//!   little, `one-cluster` is nearly free;
//! * `galgel` — wide independent FP loop nests: the paper's best VC case
//!   (up to 20% over software-only schemes);
//! * `gcc` — large static code footprint, branchy, modest ILP;
//! * `swim`/`art`/`lucas` — streaming FP with large footprints;
//! * `crafty`/`eon` — compute-dense, predictable, mid ILP; etc.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use virtclust_uarch::Program;

use crate::expand::TraceExpander;
use crate::gen::build_program;
use crate::params::{KernelParams, Suite};

/// One named simulation point (e.g. `gzip-2`).
#[derive(Debug, Clone)]
pub struct TracePoint {
    /// Point name as it appears in Fig. 5 (e.g. `"gzip-2"`).
    pub name: String,
    /// Benchmark family name (e.g. `"gzip"`).
    pub bench: &'static str,
    /// SPECint or SPECfp.
    pub suite: Suite,
    /// PinPoints weight of this point within its benchmark (the paper
    /// weights reported numbers by the PinPoints weights).
    pub weight: f64,
    /// Structural parameters of the synthetic analogue.
    pub params: KernelParams,
    /// Seed for static program generation.
    pub program_seed: u64,
    /// Seed for trace expansion.
    pub trace_seed: u64,
}

impl TracePoint {
    /// Generate this point's static program.
    pub fn build_program(&self) -> Program {
        build_program(&self.name, &self.params, self.program_seed)
    }

    /// Create the dynamic trace expander over `program` (which must come
    /// from [`TracePoint::build_program`], possibly annotated).
    pub fn expander<'p>(&self, program: &'p Program) -> TraceExpander<'p> {
        TraceExpander::new(program, &self.params, self.trace_seed)
    }
}

struct BenchDef {
    name: &'static str,
    suite: Suite,
    points: u32,
    params: KernelParams,
}

fn int_bench(name: &'static str, points: u32, f: impl FnOnce(&mut KernelParams)) -> BenchDef {
    let mut params = KernelParams::base_int();
    f(&mut params);
    BenchDef {
        name,
        suite: Suite::Int,
        points,
        params,
    }
}

fn fp_bench(name: &'static str, points: u32, f: impl FnOnce(&mut KernelParams)) -> BenchDef {
    let mut params = KernelParams::base_fp();
    f(&mut params);
    BenchDef {
        name,
        suite: Suite::Fp,
        points,
        params,
    }
}

fn suite_definition() -> Vec<BenchDef> {
    vec![
        // ----- SPECint 2000: 26 points ---------------------------------
        int_bench("gzip", 5, |p| {
            p.chains = 4;
            p.chain_break = 0.15;
            p.footprint_log2 = 20;
            p.branch_entropy = 0.12;
            p.pointer_chase = 0.03;
        }),
        int_bench("vpr", 2, |p| {
            p.chains = 3;
            p.pointer_chase = 0.18;
            p.branch_entropy = 0.15;
            p.footprint_log2 = 20;
        }),
        int_bench("gcc", 5, |p| {
            p.regions = 28;
            p.region_insts = 56;
            p.chains = 3;
            p.branch_frac = 0.12;
            p.branch_entropy = 0.18;
            p.footprint_log2 = 21;
            p.pointer_chase = 0.12;
            p.mean_iters = 10;
        }),
        int_bench("mcf", 1, |p| {
            p.chains = 2;
            p.pointer_chase = 0.60;
            p.footprint_log2 = 24;
            p.load_frac = 0.32;
            p.branch_entropy = 0.15;
        }),
        int_bench("crafty", 1, |p| {
            p.chains = 5;
            p.chain_break = 0.18;
            p.footprint_log2 = 18;
            p.branch_entropy = 0.08;
            p.mul_frac = 0.05;
            p.cross_links = 0.20;
        }),
        int_bench("parser", 1, |p| {
            p.chains = 2;
            p.pointer_chase = 0.25;
            p.branch_entropy = 0.18;
            p.footprint_log2 = 21;
        }),
        int_bench("eon", 3, |p| {
            p.chains = 4;
            p.chain_break = 0.16;
            p.fp_frac = 0.30;
            p.branch_entropy = 0.06;
            p.footprint_log2 = 18;
            p.mul_frac = 0.15;
        }),
        int_bench("perlbmk", 1, |p| {
            p.chains = 3;
            p.branch_frac = 0.13;
            p.branch_entropy = 0.16;
            p.pointer_chase = 0.15;
            p.regions = 18;
            p.mean_iters = 12;
        }),
        int_bench("gap", 1, |p| {
            p.chains = 4;
            p.chain_break = 0.15;
            p.footprint_log2 = 21;
            p.branch_entropy = 0.10;
            p.mul_frac = 0.12;
        }),
        int_bench("vortex", 2, |p| {
            p.chains = 3;
            p.load_frac = 0.30;
            p.footprint_log2 = 22;
            p.pointer_chase = 0.15;
            p.branch_entropy = 0.10;
        }),
        int_bench("bzip2", 3, |p| {
            p.chains = 4;
            p.chain_break = 0.15;
            p.footprint_log2 = 21;
            p.branch_entropy = 0.12;
            p.pointer_chase = 0.05;
        }),
        int_bench("twolf", 1, |p| {
            p.chains = 3;
            p.pointer_chase = 0.20;
            p.branch_entropy = 0.15;
            p.footprint_log2 = 20;
        }),
        // ----- SPECfp 2000: 14 points -----------------------------------
        fp_bench("wupwise", 1, |p| {
            p.chains = 4;
            p.chain_break = 0.25;
            p.footprint_log2 = 22;
        }),
        fp_bench("swim", 1, |p| {
            p.chains = 6;
            p.chain_break = 0.30;
            p.footprint_log2 = 24;
            p.stride = 8;
            p.branch_entropy = 0.02;
            p.region_insts = 80;
        }),
        fp_bench("applu", 1, |p| {
            p.chains = 4;
            p.chain_break = 0.25;
            p.footprint_log2 = 24;
            p.region_insts = 72;
        }),
        fp_bench("mesa", 1, |p| {
            p.chains = 3;
            p.fp_frac = 0.45;
            p.footprint_log2 = 20;
            p.branch_entropy = 0.12;
        }),
        fp_bench("galgel", 1, |p| {
            p.chains = 8;
            p.chain_break = 0.35;
            p.fp_frac = 0.8;
            p.footprint_log2 = 19;
            p.branch_entropy = 0.03;
            p.region_insts = 96;
            p.cross_links = 0.04;
        }),
        fp_bench("art", 2, |p| {
            p.chains = 2;
            p.footprint_log2 = 25;
            p.fp_frac = 0.55;
            p.load_frac = 0.30;
        }),
        fp_bench("facerec", 1, |p| {
            p.chains = 4;
            p.chain_break = 0.25;
            p.footprint_log2 = 22;
            p.fp_frac = 0.6;
        }),
        fp_bench("equake", 1, |p| {
            p.chains = 2;
            p.pointer_chase = 0.20;
            p.footprint_log2 = 23;
            p.fp_frac = 0.5;
        }),
        fp_bench("ammp", 1, |p| {
            p.chains = 3;
            p.pointer_chase = 0.25;
            p.footprint_log2 = 23;
            p.fp_frac = 0.55;
        }),
        fp_bench("lucas", 1, |p| {
            p.chains = 4;
            p.chain_break = 0.22;
            p.footprint_log2 = 24;
            p.fp_frac = 0.65;
            p.stride = 64;
        }),
        fp_bench("fma3d", 1, |p| {
            p.chains = 3;
            p.footprint_log2 = 23;
            p.fp_frac = 0.55;
        }),
        fp_bench("sixtrack", 1, |p| {
            p.chains = 5;
            p.chain_break = 0.28;
            p.footprint_log2 = 20;
            p.fp_frac = 0.65;
            p.branch_entropy = 0.04;
        }),
        fp_bench("apsi", 1, |p| {
            p.chains = 4;
            p.chain_break = 0.22;
            p.footprint_log2 = 22;
            p.fp_frac = 0.6;
        }),
    ]
}

/// Base seed mixed into every trace point.
const SUITE_SEED: u64 = 0x05EC_2000;

/// The full 40-point suite of the paper's Fig. 5 (26 SPECint + 14 SPECfp
/// points), with deterministic PinPoints-style weights.
pub fn spec2000_points() -> Vec<TracePoint> {
    let mut points = Vec::with_capacity(40);
    for (bi, bench) in suite_definition().into_iter().enumerate() {
        // Deterministic per-benchmark rng for weights and point jitter.
        let mut rng = SmallRng::seed_from_u64(SUITE_SEED ^ ((bi as u64) << 32));
        let raw_weights: Vec<f64> = (0..bench.points).map(|_| rng.gen_range(0.5..1.5)).collect();
        let total: f64 = raw_weights.iter().sum();
        for pi in 0..bench.points {
            let name = if bench.points == 1 {
                bench.name.to_string()
            } else {
                format!("{}-{}", bench.name, pi + 1)
            };
            // Per-point jitter: different program phases stress slightly
            // different mixes, like real PinPoints slices do.
            let mut params = bench.params;
            params.branch_entropy = (params.branch_entropy * rng.gen_range(0.8..1.25)).min(1.0);
            params.pointer_chase = (params.pointer_chase * rng.gen_range(0.8..1.25)).min(1.0);
            params.mean_iters = (params.mean_iters as f64 * rng.gen_range(0.7..1.4)) as u32 + 1;
            let seed_base = SUITE_SEED ^ ((bi as u64) << 24) ^ ((pi as u64) << 8);
            points.push(TracePoint {
                name,
                bench: bench.name,
                suite: bench.suite,
                weight: raw_weights[pi as usize] / total,
                params,
                program_seed: splitseed(seed_base),
                trace_seed: splitseed(seed_base ^ 0xABCD),
            });
        }
    }
    points
}

fn splitseed(x: u64) -> u64 {
    // splitmix64 finalizer
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_exactly_the_papers_40_points() {
        let points = spec2000_points();
        assert_eq!(points.len(), 40);
        let ints = points.iter().filter(|p| p.suite == Suite::Int).count();
        let fps = points.iter().filter(|p| p.suite == Suite::Fp).count();
        assert_eq!(ints, 26, "Fig. 5(a) lists 26 SPECint points");
        assert_eq!(fps, 14, "Fig. 5(b) lists 14 SPECfp points");
    }

    #[test]
    fn point_names_match_figure5() {
        let points = spec2000_points();
        let names: Vec<&str> = points.iter().map(|p| p.name.as_str()).collect();
        for expected in [
            "gzip-1", "gzip-5", "vpr-2", "gcc-5", "mcf", "crafty", "parser", "eon-3", "perlbmk",
            "gap", "vortex-2", "bzip2-3", "twolf", "wupwise", "swim", "applu", "mesa", "galgel",
            "art-1", "art-2", "facerec", "equake", "ammp", "lucas", "fma3d", "sixtrack", "apsi",
        ] {
            assert!(names.contains(&expected), "missing point {expected}");
        }
    }

    #[test]
    fn weights_sum_to_one_per_benchmark() {
        let points = spec2000_points();
        let mut by_bench: std::collections::HashMap<&str, f64> = Default::default();
        for p in &points {
            *by_bench.entry(p.bench).or_default() += p.weight;
        }
        for (bench, w) in by_bench {
            assert!((w - 1.0).abs() < 1e-9, "{bench} weights sum to {w}");
        }
    }

    #[test]
    fn points_are_deterministic_across_calls() {
        let a = spec2000_points();
        let b = spec2000_points();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.program_seed, y.program_seed);
            assert_eq!(x.trace_seed, y.trace_seed);
            assert_eq!(x.weight, y.weight);
        }
    }

    #[test]
    fn every_point_builds_a_program_and_expands() {
        for point in spec2000_points() {
            point.params.validate();
            let program = point.build_program();
            assert!(program.static_len() > 0, "{} empty", point.name);
            let mut ex = point.expander(&program);
            use virtclust_uarch::TraceSource;
            for _ in 0..200 {
                assert!(ex.next_uop().is_some(), "{} ended early", point.name);
            }
        }
    }

    #[test]
    fn mcf_is_serial_and_memory_bound_galgel_is_wide() {
        let points = spec2000_points();
        let mcf = points.iter().find(|p| p.name == "mcf").unwrap();
        let galgel = points.iter().find(|p| p.name == "galgel").unwrap();
        assert!(mcf.params.chains <= 2, "mcf is nearly serial");
        assert!(mcf.params.pointer_chase > 0.5);
        assert!(mcf.params.footprint_log2 >= 24);
        assert_eq!(galgel.params.chains, 8);
        assert!(galgel.params.fp_frac > 0.5);
    }

    #[test]
    fn fp_points_emit_fp_work() {
        let points = spec2000_points();
        for p in points.iter().filter(|p| p.suite == Suite::Fp) {
            assert!(p.params.fp_frac > 0.3, "{} fp_frac too low", p.name);
        }
    }
}
