//! # virtclust-workloads
//!
//! The workload substrate of the reproduction: a synthetic stand-in for
//! *SPEC CPU2000 compiled by the Intel production compiler and sliced by
//! PinPoints* (Sec. 5.1 of Cai et al., IPDPS 2008).
//!
//! Why synthetic workloads are a sound substitution (see DESIGN.md §3):
//! every steering mechanism in the paper — hardware, software and hybrid —
//! reads only *structural* properties of the instruction stream: the shape
//! of each region's data-dependence graph (how many independent chains, how
//! long, how tangled), the INT/FP mix, memory footprint and access
//! regularity, and branch predictability. [`KernelParams`] parameterises
//! exactly those axes; [`spec`] instantiates 40 named trace points matching
//! the paper's Figure 5 list (26 SPECint points, 14 SPECfp points), each
//! with a PinPoints-style weight.
//!
//! Pipeline: [`build_program`] deterministically generates the static
//! [`virtclust_uarch::Program`] for a point → a compiler pass annotates it →
//! [`TraceExpander`] (a [`virtclust_uarch::TraceSource`]) replays regions
//! with realistic loop behaviour, memory addresses and branch outcomes.
//! Both stages are seeded, so every steering configuration sees the *same*
//! dynamic instruction stream, differing only in annotations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expand;
pub mod gen;
pub mod params;
pub mod spec;

pub use expand::TraceExpander;
pub use gen::build_program;
pub use params::{KernelParams, Suite};
pub use spec::{spec2000_points, TracePoint};
