//! Service-layer integration: determinism across transports and arrival
//! orders, backpressure isolation, cancellation, and socket round-trips
//! held bit-identical to a direct batch-engine run.

use std::collections::HashMap;
use std::time::Duration;

use virtclust_core::{EvalDriver, EvalJob, ResilientOptions};
use virtclust_svc::{
    resolve_spec, stats_digest, BusyReason, Client, JobSpec, Priority, ServerBuilder, ServerMsg,
    Submit, CANCELLED_BEFORE_START,
};
use virtclust_uarch::MachineConfig;

const RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// A small mixed schedule: suite points across Table 3 schemes plus a
/// trace replay from the committed corpus.
fn mixed_specs() -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for point in ["gzip-1", "mcf", "crafty"] {
        for scheme in ["OP", "1C", "VC2"] {
            specs.push(JobSpec::Point {
                name: point.into(),
                scheme: scheme.into(),
                uops: 2_000,
            });
        }
    }
    specs.push(JobSpec::Trace {
        path: trace_path("smoke8.vct"),
        scheme: "OP".into(),
        max_uops: 0,
    });
    specs
}

fn trace_path(name: &str) -> String {
    // Integration tests run with the crate as cwd; the corpus lives at
    // the repo root.
    let p = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/traces")
        .join(name);
    p.to_string_lossy().into_owned()
}

/// Digests of the same specs run directly through the batch engine.
fn direct_digests(specs: &[JobSpec]) -> Vec<u64> {
    let jobs: Vec<EvalJob> = specs.iter().map(|s| resolve_spec(s).unwrap()).collect();
    let machine = MachineConfig::paper_2cluster();
    let (outcomes, _) = EvalDriver::new(&machine).threads(2).run_resilient(
        &jobs,
        &ResilientOptions::new(),
        |_, _| {},
    );
    outcomes
        .iter()
        .map(|o| stats_digest(o.stats.as_ref().expect("direct run cannot fail")))
        .collect()
}

#[test]
fn local_round_trip_is_bit_identical_to_the_driver() {
    let specs = mixed_specs();
    let expected = direct_digests(&specs);
    let server = ServerBuilder::new(&MachineConfig::paper_2cluster())
        .threads(2)
        .start();
    let client = server.local_client();
    for (i, spec) in specs.iter().enumerate() {
        let job = resolve_spec(spec).unwrap();
        client
            .submit(i as u64, job, Priority::Normal, None)
            .unwrap();
    }
    let mut got = HashMap::new();
    while got.len() < specs.len() {
        let r = client.recv_timeout(RECV_TIMEOUT).expect("result in time");
        got.insert(r.ticket, stats_digest(&r.stats.expect("job ok")));
    }
    for (i, want) in expected.iter().enumerate() {
        assert_eq!(got[&(i as u64)], *want, "job {i} differs from direct run");
    }
    server.shutdown();
    server.join().unwrap();
}

#[test]
fn arrival_order_does_not_change_the_result_set() {
    let specs = mixed_specs();
    let mut digests = Vec::new();
    for reversed in [false, true] {
        let server = ServerBuilder::new(&MachineConfig::paper_2cluster())
            .threads(2)
            .start();
        let client = server.local_client();
        let order: Vec<usize> = if reversed {
            (0..specs.len()).rev().collect()
        } else {
            (0..specs.len()).collect()
        };
        for &i in &order {
            let job = resolve_spec(&specs[i]).unwrap();
            client
                .submit(i as u64, job, Priority::Normal, None)
                .unwrap();
        }
        let mut got = HashMap::new();
        while got.len() < specs.len() {
            let r = client.recv_timeout(RECV_TIMEOUT).expect("result in time");
            got.insert(r.ticket, stats_digest(&r.stats.expect("job ok")));
        }
        digests.push(got);
        server.shutdown();
        server.join().unwrap();
    }
    assert_eq!(
        digests[0], digests[1],
        "per-cell results must not depend on arrival order"
    );
}

#[test]
fn over_quota_client_bounces_without_perturbing_others() {
    // One worker and one slow job keep the queue occupied long enough to
    // exercise the quota deterministically.
    let server = ServerBuilder::new(&MachineConfig::paper_2cluster())
        .threads(1)
        .client_quota(2)
        .start();
    let greedy = server.local_client();
    let modest = server.local_client();
    let job = || {
        resolve_spec(&JobSpec::Point {
            name: "gzip-1".into(),
            scheme: "OP".into(),
            uops: 50_000,
        })
        .unwrap()
    };
    // The greedy client fills its quota plus the worker...
    let mut accepted = 0;
    let mut busy = 0;
    for t in 0..8 {
        match greedy.submit(t, job(), Priority::Normal, None) {
            Ok(()) => accepted += 1,
            Err(BusyReason::OverQuota) => busy += 1,
            Err(other) => panic!("unexpected bounce: {other}"),
        }
    }
    assert!(busy > 0, "quota never engaged");
    // ...and the modest client still gets in regardless.
    modest.submit(100, job(), Priority::Normal, None).unwrap();
    let r = modest.recv_timeout(RECV_TIMEOUT).expect("modest result");
    assert_eq!(r.ticket, 100);
    assert!(r.stats.is_ok());
    for _ in 0..accepted {
        assert!(greedy.recv_timeout(RECV_TIMEOUT).is_some());
    }
    let stats = server.stats();
    assert_eq!(stats.rejected, busy);
    assert_eq!(stats.accepted, accepted + 1);
    assert_eq!(stats.completed, accepted + 1);
    server.shutdown();
    server.join().unwrap();
}

#[test]
fn cancel_all_reports_queued_jobs_cancelled() {
    let server = ServerBuilder::new(&MachineConfig::paper_2cluster())
        .threads(1)
        .start();
    let client = server.local_client();
    // A long job pins the single worker; everything behind it stays
    // queued until the cancel.
    for t in 0..4 {
        let job = resolve_spec(&JobSpec::Point {
            name: "mcf".into(),
            scheme: "OP".into(),
            uops: 500_000,
        })
        .unwrap();
        client.submit(t, job, Priority::Normal, None).unwrap();
    }
    client.cancel_all();
    let mut cancelled_before_start = 0;
    let mut stopped = 0;
    for _ in 0..4 {
        let r = client.recv_timeout(RECV_TIMEOUT).expect("all jobs report");
        match r.stats {
            Err(e) if e == CANCELLED_BEFORE_START => cancelled_before_start += 1,
            Err(e) if e.contains("cancelled") => stopped += 1,
            Ok(_) => stopped += 1, // the running job may finish first
            Err(e) => panic!("unexpected outcome: {e}"),
        }
    }
    assert!(
        cancelled_before_start >= 2,
        "queued jobs should cancel before starting (got {cancelled_before_start})"
    );
    assert_eq!(cancelled_before_start + stopped, 4);
    server.shutdown();
    server.join().unwrap();
}

#[test]
fn unix_socket_round_trip_is_bit_identical_and_shuts_down() {
    let specs = mixed_specs();
    let expected = direct_digests(&specs);
    let sock = std::env::temp_dir().join(format!("virtclust-svc-test-{}.sock", std::process::id()));
    let mut server = ServerBuilder::new(&MachineConfig::paper_2cluster())
        .threads(2)
        .start();
    server.serve_unix(&sock).unwrap();

    let mut client = Client::connect_unix(&sock).unwrap();
    for (i, spec) in specs.iter().enumerate() {
        client
            .submit(&Submit {
                ticket: i as u64,
                priority: Priority::Normal,
                deadline_ms: 0,
                spec: spec.clone(),
            })
            .unwrap();
    }
    let mut accepted = 0;
    let mut results = HashMap::new();
    while results.len() < specs.len() {
        match client.recv().unwrap().expect("server alive") {
            ServerMsg::Accepted { .. } => accepted += 1,
            ServerMsg::Result(r) => {
                let stats = r.outcome.expect("job ok");
                results.insert(r.ticket, stats);
            }
            other => panic!("unexpected message: {other:?}"),
        }
    }
    assert_eq!(accepted, specs.len());
    for (i, want) in expected.iter().enumerate() {
        assert_eq!(
            results[&(i as u64)].digest,
            *want,
            "job {i} differs from direct run over the socket"
        );
    }
    // Stats snapshot over the wire.
    client.get_stats().unwrap();
    match client.recv().unwrap().expect("stats frame") {
        ServerMsg::Stats(s) => {
            assert_eq!(s.accepted, specs.len() as u64);
            assert_eq!(s.completed, specs.len() as u64);
            assert_eq!(s.inflight, 0);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    // Wire shutdown stops the daemon; the connection then closes.
    client.shutdown().unwrap();
    assert!(client.recv().unwrap().is_none(), "EOF after shutdown");
    server.join().unwrap();
    assert!(!sock.exists(), "socket file removed on exit");
}
