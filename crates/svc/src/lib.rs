//! # virtclust-svc
//!
//! An always-on evaluation service over the batch engine: jobs arrive
//! through a Unix/TCP socket or an in-process channel *while the worker
//! pool drains*, instead of as one pre-built `Vec` handed to
//! [`EvalDriver::run`](virtclust_core::EvalDriver::run) up front.
//!
//! The pieces, bottom-up:
//!
//! * [`wire`] — the protocol: `b"VCSV"` + version preamble, varint
//!   length-prefixed frames with forward-compatible skipping (the
//!   [`virtclust_trace::frame`] discipline), job specs as names/paths
//!   resolved server-side, and per-cell results summarised as key
//!   figures + an FNV digest of the full statistics for bit-identity
//!   verification;
//! * [`sched`] — the job queue the engine's workers pull from: three
//!   strict priority levels, round-robin across clients within a level,
//!   per-client quotas and a service-wide cap (both bounce `Busy`
//!   instead of buffering), queue-wait histograms per priority, and
//!   per-client cancellation fan-out through a
//!   [`CancelGroup`](virtclust_sim::CancelGroup);
//! * [`reactor`] — a hand-rolled epoll reactor (raw syscall bindings on
//!   Linux, a polling fallback elsewhere) multiplexing the listener,
//!   every connection and a worker-side wakeup pipe on one thread;
//! * [`server`] — glues them together:
//!   [`ServerBuilder`] → [`Server`] →
//!   [`serve_unix`](Server::serve_unix)/[`serve_tcp`](Server::serve_tcp)
//!   and in-process [`LocalClient`]s; results stream back to each
//!   submitter as jobs complete;
//! * [`client`] — the blocking socket [`Client`] (`loadgen`'s side).
//!
//! Determinism carries through end to end: a job's statistics depend
//! only on its spec, so the same job set yields the same per-cell
//! results regardless of arrival order, socket vs. in-process transport,
//! or worker count — the service integration tests and the CI smoke job
//! (`loadgen --verify`) hold the service to bit-identity against a
//! direct [`EvalDriver::run_resilient`](virtclust_core::EvalDriver::run_resilient)
//! of the same jobs.

#![deny(unsafe_code)] // allowed back on, explicitly, only in reactor::sys
#![warn(missing_docs)]

pub mod client;
pub mod reactor;
pub mod sched;
pub mod server;
pub mod wire;

pub use client::{Client, Stream};
pub use sched::{SchedConfig, Scheduler};
pub use server::{LocalClient, LocalResult, Server, ServerBuilder, CANCELLED_BEFORE_START};
pub use wire::{
    parse_scheme, resolve_spec, stats_digest, BusyReason, ClientMsg, JobSpec, Priority, ServerMsg,
    Submit, SvcStats, WireResult, WireStats,
};
