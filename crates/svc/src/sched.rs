//! Priority scheduler with per-client fairness, quotas and bounded-queue
//! backpressure — the service's job queue, pulled directly by the batch
//! engine's workers through [`JobSource`].
//!
//! Three strict priority levels; within a level, clients are served
//! round-robin (one job per turn), so a client that dumps a thousand jobs
//! cannot starve one that submits a single job at the same priority.
//! Admission is bounded twice: a service-wide queue cap and a per-client
//! quota. Either bound full means [`submit`](Scheduler::submit) returns
//! `Err(BusyReason)` and **nothing is buffered** — the backpressure
//! contract the wire's `Busy` frame exposes.
//!
//! Every queued job carries its submit timestamp; the dequeue records the
//! queue wait into a per-priority [`Log2Hist`]. Per-client cancellation
//! fans out through a [`CancelGroup`]: running jobs observe their
//! client's token at the engine's cooperative checks, queued jobs are
//! drained synchronously and handed back so the server can report them
//! cancelled.

use std::borrow::Cow;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use virtclust_core::{EvalJob, JobSource, SourcedJob};
use virtclust_obs::{Gauge, Log2Hist, SharedCounter};
use virtclust_sim::CancelGroup;

use crate::wire::{BusyReason, Priority, SvcStats};

/// Admission bounds.
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// Service-wide cap on queued (not yet running) jobs.
    pub queue_cap: usize,
    /// Per-client cap on queued jobs, across all priorities.
    pub client_quota: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            queue_cap: 4096,
            client_quota: 1024,
        }
    }
}

/// One queued job.
struct Entry {
    /// Scheduler-assigned identifier, echoed as the engine's ticket.
    global: u64,
    job: EvalJob,
    deadline: Option<Duration>,
    submitted: Instant,
    priority: Priority,
}

/// A drained (cancelled-before-start) job handed back to the server.
pub struct Drained {
    /// The scheduler-assigned ticket ([`Scheduler::submit`]'s return).
    pub global: u64,
}

#[derive(Default)]
struct Level {
    /// Per-client FIFO queues at this priority.
    queues: HashMap<u64, VecDeque<Entry>>,
    /// Clients with a non-empty queue, in service order; the front client
    /// yields one job, then rotates to the back.
    ring: VecDeque<u64>,
}

#[derive(Default)]
struct State {
    levels: [Level; 3],
    queued_total: usize,
    per_client: HashMap<u64, usize>,
    shutdown: bool,
}

/// Service counters, shared with the server and snapshot into
/// [`SvcStats`].
#[derive(Debug, Default)]
pub struct SvcCounters {
    /// Jobs admitted to the queue.
    pub accepted: SharedCounter,
    /// Submits bounced (queue cap, quota, or shutdown).
    pub rejected: SharedCounter,
    /// Jobs completed with any outcome.
    pub completed: SharedCounter,
    /// Jobs currently running on a worker.
    pub inflight: Gauge,
    /// Jobs currently queued.
    pub queued: Gauge,
}

/// The scheduler. [`JobSource::pull`] blocks workers on a condvar until
/// a job arrives or shutdown drains the pool.
pub struct Scheduler {
    config: SchedConfig,
    state: Mutex<State>,
    available: Condvar,
    next_global: AtomicU64,
    /// Per-client cancellation fan-out; per-job tokens come from here.
    pub cancel: CancelGroup,
    /// Shared counters (the server also bumps `completed`/`inflight`).
    pub counters: SvcCounters,
    /// Queue-wait histograms (microseconds), indexed like
    /// [`Priority::ALL`].
    wait: Mutex<[Log2Hist; 3]>,
}

impl Scheduler {
    /// A scheduler with the given bounds.
    pub fn new(config: SchedConfig) -> Self {
        Scheduler {
            config,
            state: Mutex::new(State::default()),
            available: Condvar::new(),
            next_global: AtomicU64::new(1),
            cancel: CancelGroup::new(),
            counters: SvcCounters::default(),
            wait: Mutex::new([Log2Hist::new(), Log2Hist::new(), Log2Hist::new()]),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Reserve a global ticket ahead of [`submit`](Scheduler::submit), so
    /// the caller can register result routing *before* any worker can
    /// possibly complete the job.
    pub fn reserve(&self) -> u64 {
        self.next_global.fetch_add(1, Ordering::Relaxed)
    }

    /// Admit one job for `client` under a [`reserve`](Scheduler::reserve)d
    /// ticket, or bounce it. On `Err` nothing was buffered (and the
    /// caller should unregister whatever it keyed on `global`).
    pub fn submit(
        &self,
        client: u64,
        global: u64,
        job: EvalJob,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<(), BusyReason> {
        let mut st = self.lock();
        if st.shutdown {
            self.counters.rejected.inc();
            return Err(BusyReason::ShuttingDown);
        }
        if st.queued_total >= self.config.queue_cap {
            self.counters.rejected.inc();
            return Err(BusyReason::QueueFull);
        }
        let mine = st.per_client.get(&client).copied().unwrap_or(0);
        if mine >= self.config.client_quota {
            self.counters.rejected.inc();
            return Err(BusyReason::OverQuota);
        }
        let level = &mut st.levels[priority as usize];
        let queue = level.queues.entry(client).or_default();
        if queue.is_empty() && !level.ring.contains(&client) {
            level.ring.push_back(client);
        }
        queue.push_back(Entry {
            global,
            job,
            deadline,
            submitted: Instant::now(),
            priority,
        });
        st.queued_total += 1;
        *st.per_client.entry(client).or_insert(0) += 1;
        drop(st);
        self.counters.accepted.inc();
        self.counters.queued.inc();
        self.available.notify_one();
        Ok(())
    }

    /// Pop the next job under strict priority + client round-robin, or
    /// `None` if every level is empty. Caller holds the lock.
    fn pop(st: &mut State) -> Option<(u64, Entry)> {
        for level in &mut st.levels {
            let Some(&client) = level.ring.front() else {
                continue;
            };
            level.ring.pop_front();
            let queue = level.queues.get_mut(&client)?;
            let entry = queue.pop_front()?;
            if queue.is_empty() {
                level.queues.remove(&client);
            } else {
                level.ring.push_back(client);
            }
            st.queued_total -= 1;
            if let Some(n) = st.per_client.get_mut(&client) {
                *n -= 1;
                if *n == 0 {
                    st.per_client.remove(&client);
                }
            }
            return Some((client, entry));
        }
        None
    }

    /// Close intake and wake every blocked worker. Queued jobs are
    /// drained and returned so the server can report them cancelled;
    /// running jobs keep their tokens and finish (or get cancelled by
    /// their client's token separately).
    pub fn shutdown(&self) -> Vec<Drained> {
        let mut st = self.lock();
        st.shutdown = true;
        let mut drained = Vec::with_capacity(st.queued_total);
        while let Some((_, entry)) = Self::pop(&mut st) {
            drained.push(Drained {
                global: entry.global,
            });
            self.counters.queued.dec();
        }
        drop(st);
        self.available.notify_all();
        drained
    }

    /// Whether [`shutdown`](Scheduler::shutdown) has been called.
    pub fn is_shutdown(&self) -> bool {
        self.lock().shutdown
    }

    /// Cancel everything `client` has in the service: the client's token
    /// fires (running jobs stop at the engine's next cooperative check)
    /// and its queued jobs are drained and returned. The token is then
    /// reset, so the client's *next* submit runs normally.
    pub fn cancel_client(&self, client: u64) -> Vec<Drained> {
        // Fire the token first so a job dequeued concurrently still sees
        // the cancellation.
        self.cancel.cancel(client);
        let mut st = self.lock();
        let mut drained = Vec::new();
        for level in &mut st.levels {
            if let Some(queue) = level.queues.remove(&client) {
                for entry in queue {
                    drained.push(Drained {
                        global: entry.global,
                    });
                }
            }
            level.ring.retain(|&c| c != client);
        }
        st.queued_total -= drained.len();
        st.per_client.remove(&client);
        drop(st);
        for _ in &drained {
            self.counters.queued.dec();
        }
        self.cancel.remove(client);
        drained
    }

    /// Statistics snapshot for the wire.
    pub fn stats(&self) -> SvcStats {
        let wait = self.wait.lock().unwrap_or_else(PoisonError::into_inner);
        SvcStats {
            accepted: self.counters.accepted.get(),
            rejected: self.counters.rejected.get(),
            completed: self.counters.completed.get(),
            inflight: self.counters.inflight.get(),
            queued: self.counters.queued.get(),
            queue_wait: [0, 1, 2].map(|i| {
                let h: &Log2Hist = &wait[i];
                (h.count(), h.percentile(0.5), h.percentile(0.99))
            }),
        }
    }

    /// Per-priority queue-wait histograms (microseconds).
    pub fn queue_wait_hists(&self) -> [Log2Hist; 3] {
        self.wait
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

impl JobSource for Scheduler {
    /// Block until a job is available (returning it with the client's
    /// cancellation token and the per-job deadline attached) or the
    /// scheduler shuts down (`None` — the worker exits).
    fn pull(&self) -> Option<SourcedJob<'_>> {
        let mut st = self.lock();
        loop {
            if let Some((client, entry)) = Self::pop(&mut st) {
                drop(st);
                self.counters.queued.dec();
                self.counters.inflight.inc();
                let waited = entry.submitted.elapsed();
                self.wait.lock().unwrap_or_else(PoisonError::into_inner)[entry.priority as usize]
                    .record(waited.as_micros() as u64);
                let mut sourced = SourcedJob::new(entry.global, Cow::Owned(entry.job));
                sourced.token = Some(self.cancel.token(client));
                sourced.deadline = entry.deadline;
                return Some(sourced);
            }
            if st.shutdown {
                return None;
            }
            st = self
                .available
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtclust_core::Configuration;
    use virtclust_workloads::spec2000_points;

    fn job() -> EvalJob {
        EvalJob::Point {
            point: spec2000_points().remove(0),
            config: Configuration::Op,
            uops: 100,
        }
    }

    fn sched(queue_cap: usize, client_quota: usize) -> Scheduler {
        Scheduler::new(SchedConfig {
            queue_cap,
            client_quota,
        })
    }

    /// Reserve + submit in one go, returning the ticket on admission.
    fn put(s: &Scheduler, client: u64, priority: Priority) -> Result<u64, BusyReason> {
        let global = s.reserve();
        s.submit(client, global, job(), priority, None)
            .map(|()| global)
    }

    #[test]
    fn strict_priority_then_client_round_robin() {
        let s = sched(100, 100);
        // Client 1 floods Normal; client 2 adds one Normal job; client 3
        // adds one High job last.
        let mut order = Vec::new();
        for _ in 0..3 {
            order.push((1, put(&s, 1, Priority::Normal).unwrap()));
        }
        let c2 = put(&s, 2, Priority::Normal).unwrap();
        let c3 = put(&s, 3, Priority::High).unwrap();
        // High first despite arriving last.
        assert_eq!(s.pull().unwrap().ticket, c3);
        // Then Normal alternates clients: 1, 2, 1, 1.
        assert_eq!(s.pull().unwrap().ticket, order[0].1);
        assert_eq!(s.pull().unwrap().ticket, c2);
        assert_eq!(s.pull().unwrap().ticket, order[1].1);
        assert_eq!(s.pull().unwrap().ticket, order[2].1);
    }

    #[test]
    fn bounds_bounce_without_buffering() {
        let s = sched(2, 100);
        put(&s, 1, Priority::Normal).unwrap();
        put(&s, 2, Priority::Normal).unwrap();
        assert_eq!(
            put(&s, 3, Priority::Normal).unwrap_err(),
            BusyReason::QueueFull
        );
        let s = sched(100, 1);
        put(&s, 1, Priority::Normal).unwrap();
        assert_eq!(
            put(&s, 1, Priority::Low).unwrap_err(),
            BusyReason::OverQuota
        );
        // The other client is unaffected by 1's quota.
        put(&s, 2, Priority::Normal).unwrap();
        assert_eq!(s.counters.rejected.get(), 1);
        assert_eq!(s.counters.accepted.get(), 2);
    }

    #[test]
    fn cancel_client_drains_only_that_client() {
        let s = sched(100, 100);
        let a = put(&s, 1, Priority::Normal).unwrap();
        put(&s, 2, Priority::Normal).unwrap();
        put(&s, 1, Priority::Low).unwrap();
        let tok = s.cancel.token(1);
        let drained = s.cancel_client(1);
        assert_eq!(drained.len(), 2);
        assert!(drained.iter().any(|d| d.global == a));
        assert!(tok.is_cancelled());
        // Client 2's job is still there and client 1 can start fresh.
        assert!(s.pull().is_some());
        let b = put(&s, 1, Priority::Normal).unwrap();
        let pulled = s.pull().unwrap();
        assert_eq!(pulled.ticket, b);
        assert!(!pulled.token.as_ref().unwrap().is_cancelled());
    }

    #[test]
    fn shutdown_drains_and_unblocks() {
        let s = sched(100, 100);
        put(&s, 1, Priority::Normal).unwrap();
        put(&s, 1, Priority::High).unwrap();
        std::thread::scope(|scope| {
            let puller = scope.spawn(|| {
                // Drain both, then block until shutdown.
                let mut n = 0;
                while s.pull().is_some() {
                    n += 1;
                }
                n
            });
            while s.counters.queued.get() > 0 {
                std::thread::yield_now();
            }
            // Give the puller a moment to block on the condvar, then close.
            std::thread::sleep(Duration::from_millis(10));
            let drained = s.shutdown();
            assert!(drained.is_empty());
            assert_eq!(puller.join().unwrap(), 2);
        });
        assert_eq!(
            put(&s, 1, Priority::Normal).unwrap_err(),
            BusyReason::ShuttingDown
        );
    }

    #[test]
    fn queue_wait_lands_in_the_right_priority_hist() {
        let s = sched(100, 100);
        put(&s, 1, Priority::High).unwrap();
        put(&s, 1, Priority::Low).unwrap();
        s.pull().unwrap();
        s.pull().unwrap();
        let stats = s.stats();
        assert_eq!(stats.queue_wait[0].0, 1);
        assert_eq!(stats.queue_wait[1].0, 0);
        assert_eq!(stats.queue_wait[2].0, 1);
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.queued, 0);
    }
}
