//! The service's wire protocol, built on [`virtclust_trace::frame`]:
//! `b"VCSV"` + version preamble in both directions, then self-delimiting
//! varint-framed messages. The length prefix covers the type byte, so
//! either side skips message types it does not know — the same
//! forward-compat posture as the trace file format.
//!
//! Client → server: [`Submit`](ClientMsg::Submit) (ticket, priority,
//! optional deadline, job spec), [`CancelAll`](ClientMsg::CancelAll),
//! [`GetStats`](ClientMsg::GetStats), [`Shutdown`](ClientMsg::Shutdown).
//! Server → client: [`Accepted`](ServerMsg::Accepted),
//! [`Busy`](ServerMsg::Busy) (backpressure — the queue or the client's
//! quota is full; nothing was buffered), streaming [`Result`](ServerMsg::Result)
//! per job as it completes, and a [`Stats`](ServerMsg::Stats) snapshot.
//!
//! Job specs travel as *names and paths*, not as materialised programs:
//! the server resolves them against its own suite, kernel importer and
//! trace store ([`resolve_spec`]), so a submit frame is tens of bytes
//! regardless of workload size. Full per-cell statistics are summarised
//! on the wire as key figures plus an FNV-1a digest of the complete
//! [`SimStats`] ([`stats_digest`]) — enough for a client to verify
//! bit-identity against a local [`EvalDriver`](virtclust_core::EvalDriver)
//! run without shipping every counter.

use std::io::{Read, Write};

use virtclust_core::{Configuration, EvalJob};
use virtclust_sim::{RunLimits, SimStats};
use virtclust_trace::frame::{
    put_bytes, put_u64, read_preamble, take_string, write_frame, write_preamble,
};
use virtclust_trace::{import_kernel_file, Result as TraceResult, TraceError};
use virtclust_workloads::{spec2000_points, KernelParams};

/// Connection magic, both directions.
pub const MAGIC: &[u8; 4] = b"VCSV";
/// Protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Message type bytes. Client-to-server types live below 0x10,
/// server-to-client at and above it; unknown types are skipped.
pub mod msg {
    /// Client → server: submit one job.
    pub const SUBMIT: u8 = 0x01;
    /// Client → server: cancel everything this client has in the service.
    pub const CANCEL_ALL: u8 = 0x02;
    /// Client → server: stop the daemon (queued jobs cancel, running
    /// jobs finish, then the process exits).
    pub const SHUTDOWN: u8 = 0x03;
    /// Client → server: request a service statistics snapshot.
    pub const GET_STATS: u8 = 0x04;
    /// Server → client: the job was queued.
    pub const ACCEPTED: u8 = 0x11;
    /// Server → client: backpressure — nothing was buffered.
    pub const BUSY: u8 = 0x12;
    /// Server → client: one job's final outcome.
    pub const RESULT: u8 = 0x13;
    /// Server → client: statistics snapshot.
    pub const STATS: u8 = 0x14;
}

/// Job priority: strict across levels, round-robin across clients within
/// a level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Served before everything else.
    High = 0,
    /// The default.
    #[default]
    Normal = 1,
    /// Served only when nothing higher is queued.
    Low = 2,
}

impl Priority {
    /// All levels, highest first (index matches the wire byte).
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    /// Decode a wire byte.
    pub fn from_byte(b: u8) -> Option<Priority> {
        match b {
            0 => Some(Priority::High),
            1 => Some(Priority::Normal),
            2 => Some(Priority::Low),
            _ => None,
        }
    }
}

/// Why a submit bounced. The contract in every case: the service buffered
/// nothing, and resubmitting later (or to a less loaded service) is safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusyReason {
    /// The service-wide bounded queue is full.
    QueueFull = 0,
    /// This client is at its per-client quota (other clients may still
    /// submit — fairness isolation).
    OverQuota = 1,
    /// The service is shutting down and no longer accepts work.
    ShuttingDown = 2,
}

impl BusyReason {
    /// Decode a wire byte.
    pub fn from_byte(b: u8) -> Option<BusyReason> {
        match b {
            0 => Some(BusyReason::QueueFull),
            1 => Some(BusyReason::OverQuota),
            2 => Some(BusyReason::ShuttingDown),
            _ => None,
        }
    }
}

impl std::fmt::Display for BusyReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BusyReason::QueueFull => write!(f, "queue-full"),
            BusyReason::OverQuota => write!(f, "over-quota"),
            BusyReason::ShuttingDown => write!(f, "shutting-down"),
        }
    }
}

/// A job as it travels on the wire: names and paths, resolved server-side.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// A generated suite point by name (e.g. `"mcf"`).
    Point {
        /// Suite point name ([`spec2000_points`]).
        name: String,
        /// Scheme name ([`parse_scheme`]).
        scheme: String,
        /// Micro-op budget.
        uops: u64,
    },
    /// An imported kernel file expanded with the synthetic dynamic model.
    Kernel {
        /// Path of the kernel file (server-side).
        path: String,
        /// Expansion seed.
        seed: u64,
        /// Scheme name.
        scheme: String,
        /// Micro-op budget.
        uops: u64,
    },
    /// Replay of a stored `.vct`/`.vctb` trace file (server-side path).
    Trace {
        /// Path of the trace file.
        path: String,
        /// Scheme name.
        scheme: String,
        /// Micro-op cap (0 = the whole stream).
        max_uops: u64,
    },
}

/// One submit request.
#[derive(Debug, Clone, PartialEq)]
pub struct Submit {
    /// Client-chosen job identifier, echoed in every reply about the job.
    pub ticket: u64,
    /// Priority level.
    pub priority: Priority,
    /// Per-job wall-clock deadline in milliseconds (0 = none).
    pub deadline_ms: u64,
    /// The job.
    pub spec: JobSpec,
}

/// A decoded client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// Submit one job.
    Submit(Submit),
    /// Cancel all of this client's queued and running jobs.
    CancelAll,
    /// Stop the daemon.
    Shutdown,
    /// Request a [`SvcStats`] snapshot.
    GetStats,
}

/// One job's final outcome as reported on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResult {
    /// The client's ticket.
    pub ticket: u64,
    /// Wall-clock time the job spent on its worker, microseconds.
    pub wall_us: u64,
    /// Key figures + digest, or the failure rendered as a string.
    pub outcome: Result<WireStats, String>,
}

/// The deterministic key figures of a completed cell, plus a digest of
/// the full statistics for bit-identity checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Program micro-ops committed.
    pub committed_uops: u64,
    /// Copy micro-ops generated.
    pub copies: u64,
    /// [`stats_digest`] of the full [`SimStats`].
    pub digest: u64,
}

/// A service statistics snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SvcStats {
    /// Jobs accepted (queued) since start.
    pub accepted: u64,
    /// Submits bounced with [`ServerMsg::Busy`].
    pub rejected: u64,
    /// Jobs completed (any outcome).
    pub completed: u64,
    /// Jobs currently on a worker.
    pub inflight: u64,
    /// Jobs currently queued.
    pub queued: u64,
    /// Per-priority queue-wait figures `(count, p50_us, p99_us)`,
    /// indexed like [`Priority::ALL`].
    pub queue_wait: [(u64, u64, u64); 3],
}

/// A decoded server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// The job was queued.
    Accepted {
        /// The client's ticket.
        ticket: u64,
    },
    /// Backpressure: the job was *not* queued.
    Busy {
        /// The client's ticket.
        ticket: u64,
        /// Why.
        reason: BusyReason,
    },
    /// One job finished.
    Result(WireResult),
    /// Statistics snapshot.
    Stats(SvcStats),
}

/// FNV-1a 64-bit digest of the full `Debug` rendering of a [`SimStats`].
/// Every counter the simulator tracks participates, so two runs with the
/// same digest are bit-identical for all practical purposes — this is
/// what `loadgen --verify` compares against a local driver run.
pub fn stats_digest(stats: &SimStats) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{stats:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Parse a wire scheme name into a [`Configuration`]. Case-insensitive;
/// accepts `OP`, `1C`/`one-cluster`, `OB`, `RHOP` and `VCn`.
pub fn parse_scheme(s: &str) -> Option<Configuration> {
    let up = s.to_ascii_uppercase();
    match up.as_str() {
        "OP" => Some(Configuration::Op),
        "1C" | "ONE-CLUSTER" => Some(Configuration::OneCluster),
        "OB" => Some(Configuration::Ob),
        "RHOP" => Some(Configuration::Rhop),
        _ => up
            .strip_prefix("VC")
            .and_then(|n| n.parse::<u32>().ok())
            .filter(|&n| (1..=64).contains(&n))
            .map(|num_vcs| Configuration::Vc { num_vcs }),
    }
}

/// Resolve a wire [`JobSpec`] into a runnable [`EvalJob`] against this
/// server's suite, kernel importer and filesystem. Errors are returned as
/// the string the client will see in its [`WireResult`].
pub fn resolve_spec(spec: &JobSpec) -> Result<EvalJob, String> {
    match spec {
        JobSpec::Point { name, scheme, uops } => {
            let config =
                parse_scheme(scheme).ok_or_else(|| format!("unknown scheme '{scheme}'"))?;
            let point = spec2000_points()
                .into_iter()
                .find(|p| p.name == *name)
                .ok_or_else(|| format!("unknown suite point '{name}'"))?;
            Ok(EvalJob::Point {
                point,
                config,
                uops: *uops,
            })
        }
        JobSpec::Kernel {
            path,
            seed,
            scheme,
            uops,
        } => {
            let config =
                parse_scheme(scheme).ok_or_else(|| format!("unknown scheme '{scheme}'"))?;
            let program = import_kernel_file(path).map_err(|e| format!("kernel '{path}': {e}"))?;
            Ok(EvalJob::Kernel {
                program,
                params: KernelParams::base_int(),
                seed: *seed,
                config,
                uops: *uops,
            })
        }
        JobSpec::Trace {
            path,
            scheme,
            max_uops,
        } => {
            let config =
                parse_scheme(scheme).ok_or_else(|| format!("unknown scheme '{scheme}'"))?;
            Ok(EvalJob::Trace {
                path: path.into(),
                config,
                limits: if *max_uops == 0 {
                    RunLimits::unlimited()
                } else {
                    RunLimits::uops(*max_uops)
                },
            })
        }
    }
}

/// Write this side's preamble.
pub fn send_preamble<W: Write>(w: &mut W) -> TraceResult<()> {
    write_preamble(w, MAGIC, VERSION)
}

/// Read and verify the peer's preamble; returns its version.
pub fn recv_preamble<R: Read>(r: &mut R) -> TraceResult<u8> {
    read_preamble(r, MAGIC, VERSION)
}

fn take_u64(r: &mut &[u8]) -> TraceResult<u64> {
    virtclust_trace::binary::read_varint(r)
}

fn take_byte(r: &mut &[u8]) -> TraceResult<u8> {
    let mut b = [0u8];
    r.read_exact(&mut b)
        .map_err(|_| TraceError::Corrupt("frame body ends early".into()))?;
    Ok(b[0])
}

/// Encode a client-to-server message as one frame.
pub fn encode_client<W: Write>(w: &mut W, m: &ClientMsg) -> TraceResult<()> {
    match m {
        ClientMsg::Submit(s) => {
            let mut body = Vec::with_capacity(48);
            put_u64(&mut body, s.ticket);
            body.push(s.priority as u8);
            put_u64(&mut body, s.deadline_ms);
            match &s.spec {
                JobSpec::Point { name, scheme, uops } => {
                    body.push(0);
                    put_bytes(&mut body, name.as_bytes());
                    put_bytes(&mut body, scheme.as_bytes());
                    put_u64(&mut body, *uops);
                }
                JobSpec::Kernel {
                    path,
                    seed,
                    scheme,
                    uops,
                } => {
                    body.push(1);
                    put_bytes(&mut body, path.as_bytes());
                    put_u64(&mut body, *seed);
                    put_bytes(&mut body, scheme.as_bytes());
                    put_u64(&mut body, *uops);
                }
                JobSpec::Trace {
                    path,
                    scheme,
                    max_uops,
                } => {
                    body.push(2);
                    put_bytes(&mut body, path.as_bytes());
                    put_bytes(&mut body, scheme.as_bytes());
                    put_u64(&mut body, *max_uops);
                }
            }
            write_frame(w, msg::SUBMIT, &body)
        }
        ClientMsg::CancelAll => write_frame(w, msg::CANCEL_ALL, &[]),
        ClientMsg::Shutdown => write_frame(w, msg::SHUTDOWN, &[]),
        ClientMsg::GetStats => write_frame(w, msg::GET_STATS, &[]),
    }
}

/// Decode a client-to-server frame. `Ok(None)` for message types this
/// build does not know (forward compat: the frame is already consumed).
pub fn decode_client(msg_type: u8, body: &[u8]) -> TraceResult<Option<ClientMsg>> {
    let mut r = body;
    Ok(match msg_type {
        msg::SUBMIT => {
            let ticket = take_u64(&mut r)?;
            let priority = Priority::from_byte(take_byte(&mut r)?)
                .ok_or_else(|| TraceError::Corrupt("bad priority byte".into()))?;
            let deadline_ms = take_u64(&mut r)?;
            let spec = match take_byte(&mut r)? {
                0 => JobSpec::Point {
                    name: take_string(&mut r)?,
                    scheme: take_string(&mut r)?,
                    uops: take_u64(&mut r)?,
                },
                1 => JobSpec::Kernel {
                    path: take_string(&mut r)?,
                    seed: take_u64(&mut r)?,
                    scheme: take_string(&mut r)?,
                    uops: take_u64(&mut r)?,
                },
                2 => JobSpec::Trace {
                    path: take_string(&mut r)?,
                    scheme: take_string(&mut r)?,
                    max_uops: take_u64(&mut r)?,
                },
                t => {
                    return Err(TraceError::Corrupt(format!("unknown job spec tag {t}")));
                }
            };
            Some(ClientMsg::Submit(Submit {
                ticket,
                priority,
                deadline_ms,
                spec,
            }))
        }
        msg::CANCEL_ALL => Some(ClientMsg::CancelAll),
        msg::SHUTDOWN => Some(ClientMsg::Shutdown),
        msg::GET_STATS => Some(ClientMsg::GetStats),
        _ => None,
    })
}

/// Encode a server-to-client message as one frame.
pub fn encode_server<W: Write>(w: &mut W, m: &ServerMsg) -> TraceResult<()> {
    match m {
        ServerMsg::Accepted { ticket } => {
            let mut body = Vec::with_capacity(10);
            put_u64(&mut body, *ticket);
            write_frame(w, msg::ACCEPTED, &body)
        }
        ServerMsg::Busy { ticket, reason } => {
            let mut body = Vec::with_capacity(11);
            put_u64(&mut body, *ticket);
            body.push(*reason as u8);
            write_frame(w, msg::BUSY, &body)
        }
        ServerMsg::Result(res) => {
            let mut body = Vec::with_capacity(64);
            put_u64(&mut body, res.ticket);
            put_u64(&mut body, res.wall_us);
            match &res.outcome {
                Ok(s) => {
                    body.push(0);
                    put_u64(&mut body, s.cycles);
                    put_u64(&mut body, s.committed_uops);
                    put_u64(&mut body, s.copies);
                    body.extend_from_slice(&s.digest.to_le_bytes());
                }
                Err(e) => {
                    body.push(1);
                    put_bytes(&mut body, e.as_bytes());
                }
            }
            write_frame(w, msg::RESULT, &body)
        }
        ServerMsg::Stats(s) => {
            let mut body = Vec::with_capacity(48);
            for v in [s.accepted, s.rejected, s.completed, s.inflight, s.queued] {
                put_u64(&mut body, v);
            }
            for (count, p50, p99) in s.queue_wait {
                put_u64(&mut body, count);
                put_u64(&mut body, p50);
                put_u64(&mut body, p99);
            }
            write_frame(w, msg::STATS, &body)
        }
    }
}

/// Decode a server-to-client frame. `Ok(None)` for unknown types.
pub fn decode_server(msg_type: u8, body: &[u8]) -> TraceResult<Option<ServerMsg>> {
    let mut r = body;
    Ok(match msg_type {
        msg::ACCEPTED => Some(ServerMsg::Accepted {
            ticket: take_u64(&mut r)?,
        }),
        msg::BUSY => {
            let ticket = take_u64(&mut r)?;
            let reason = BusyReason::from_byte(take_byte(&mut r)?)
                .ok_or_else(|| TraceError::Corrupt("bad busy reason".into()))?;
            Some(ServerMsg::Busy { ticket, reason })
        }
        msg::RESULT => {
            let ticket = take_u64(&mut r)?;
            let wall_us = take_u64(&mut r)?;
            let outcome = match take_byte(&mut r)? {
                0 => {
                    let cycles = take_u64(&mut r)?;
                    let committed_uops = take_u64(&mut r)?;
                    let copies = take_u64(&mut r)?;
                    let mut digest = [0u8; 8];
                    r.read_exact(&mut digest)
                        .map_err(|_| TraceError::Corrupt("truncated digest".into()))?;
                    Ok(WireStats {
                        cycles,
                        committed_uops,
                        copies,
                        digest: u64::from_le_bytes(digest),
                    })
                }
                _ => Err(take_string(&mut r)?),
            };
            Some(ServerMsg::Result(WireResult {
                ticket,
                wall_us,
                outcome,
            }))
        }
        msg::STATS => {
            let mut s = SvcStats {
                accepted: take_u64(&mut r)?,
                rejected: take_u64(&mut r)?,
                completed: take_u64(&mut r)?,
                inflight: take_u64(&mut r)?,
                queued: take_u64(&mut r)?,
                ..SvcStats::default()
            };
            for slot in &mut s.queue_wait {
                *slot = (take_u64(&mut r)?, take_u64(&mut r)?, take_u64(&mut r)?);
            }
            Some(ServerMsg::Stats(s))
        }
        _ => None,
    })
}

/// Try to split one frame off the front of a read buffer (the reactor's
/// incremental decoder). Returns `Ok(Some((msg_type, body, consumed)))`
/// when a whole frame is buffered, `Ok(None)` when more bytes are needed,
/// and [`TraceError::Corrupt`] on a garbled length prefix. Never consumes
/// a partial frame.
pub fn split_frame(buf: &[u8]) -> TraceResult<Option<(u8, Vec<u8>, usize)>> {
    let Some((len, hdr)) = peek_varint(buf)? else {
        return Ok(None);
    };
    if len == 0 {
        return Err(TraceError::Corrupt(
            "zero-length frame (no type byte)".into(),
        ));
    }
    if len > virtclust_trace::frame::MAX_FRAME_LEN {
        return Err(TraceError::Corrupt(format!(
            "frame length {len} exceeds MAX_FRAME_LEN"
        )));
    }
    let total = hdr + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let msg_type = buf[hdr];
    let body = buf[hdr + 1..total].to_vec();
    Ok(Some((msg_type, body, total)))
}

/// Decode a varint from the front of `buf` without consuming: returns the
/// value and encoded length, or `None` if the buffer ends mid-varint.
fn peek_varint(buf: &[u8]) -> TraceResult<Option<(u64, usize)>> {
    let mut value = 0u64;
    for (i, &b) in buf.iter().enumerate() {
        if i == 10 || (i == 9 && b > 1) {
            return Err(TraceError::Corrupt("varint overflows u64".into()));
        }
        value |= u64::from(b & 0x7f) << (7 * i);
        if b & 0x80 == 0 {
            return Ok(Some((value, i + 1)));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_client(m: ClientMsg) {
        let mut buf = Vec::new();
        encode_client(&mut buf, &m).unwrap();
        let (t, body, used) = split_frame(&buf).unwrap().unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(decode_client(t, &body).unwrap(), Some(m));
    }

    fn roundtrip_server(m: ServerMsg) {
        let mut buf = Vec::new();
        encode_server(&mut buf, &m).unwrap();
        let (t, body, used) = split_frame(&buf).unwrap().unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(decode_server(t, &body).unwrap(), Some(m));
    }

    #[test]
    fn client_messages_roundtrip() {
        roundtrip_client(ClientMsg::Submit(Submit {
            ticket: 300,
            priority: Priority::High,
            deadline_ms: 2500,
            spec: JobSpec::Point {
                name: "mcf".into(),
                scheme: "VC2".into(),
                uops: 20_000,
            },
        }));
        roundtrip_client(ClientMsg::Submit(Submit {
            ticket: 1,
            priority: Priority::Low,
            deadline_ms: 0,
            spec: JobSpec::Kernel {
                path: "results/traces/dotprod.kernel".into(),
                seed: 7,
                scheme: "OB".into(),
                uops: 4096,
            },
        }));
        roundtrip_client(ClientMsg::Submit(Submit {
            ticket: u64::MAX,
            priority: Priority::Normal,
            deadline_ms: 1,
            spec: JobSpec::Trace {
                path: "results/traces/smoke8.vct".into(),
                scheme: "RHOP".into(),
                max_uops: 0,
            },
        }));
        roundtrip_client(ClientMsg::CancelAll);
        roundtrip_client(ClientMsg::Shutdown);
        roundtrip_client(ClientMsg::GetStats);
    }

    #[test]
    fn server_messages_roundtrip() {
        roundtrip_server(ServerMsg::Accepted { ticket: 9 });
        roundtrip_server(ServerMsg::Busy {
            ticket: 10,
            reason: BusyReason::OverQuota,
        });
        roundtrip_server(ServerMsg::Result(WireResult {
            ticket: 11,
            wall_us: 123_456,
            outcome: Ok(WireStats {
                cycles: 999,
                committed_uops: 20_000,
                copies: 1408,
                digest: 0xdead_beef_cafe_f00d,
            }),
        }));
        roundtrip_server(ServerMsg::Result(WireResult {
            ticket: 12,
            wall_us: 5,
            outcome: Err("job panicked: boom".into()),
        }));
        roundtrip_server(ServerMsg::Stats(SvcStats {
            accepted: 100,
            rejected: 3,
            completed: 97,
            inflight: 2,
            queued: 1,
            queue_wait: [(50, 128, 1024), (40, 256, 2048), (7, 512, 4096)],
        }));
    }

    #[test]
    fn split_frame_waits_for_whole_frames() {
        let mut buf = Vec::new();
        encode_client(&mut buf, &ClientMsg::GetStats).unwrap();
        encode_client(&mut buf, &ClientMsg::CancelAll).unwrap();
        for cut in 0..buf.len() {
            // A prefix that ends inside the *first* frame parses to None.
            if cut < 2 {
                assert_eq!(split_frame(&buf[..cut]).unwrap(), None);
            }
        }
        let (t1, _, used1) = split_frame(&buf).unwrap().unwrap();
        assert_eq!(t1, msg::GET_STATS);
        let (t2, _, used2) = split_frame(&buf[used1..]).unwrap().unwrap();
        assert_eq!(t2, msg::CANCEL_ALL);
        assert_eq!(used1 + used2, buf.len());
    }

    #[test]
    fn unknown_message_types_decode_to_none() {
        assert_eq!(decode_client(0x7f, &[]).unwrap(), None);
        assert_eq!(decode_server(0x7f, &[]).unwrap(), None);
    }

    #[test]
    fn scheme_names_parse() {
        assert_eq!(parse_scheme("OP"), Some(Configuration::Op));
        assert_eq!(parse_scheme("op"), Some(Configuration::Op));
        assert_eq!(parse_scheme("1C"), Some(Configuration::OneCluster));
        assert_eq!(parse_scheme("one-cluster"), Some(Configuration::OneCluster));
        assert_eq!(parse_scheme("OB"), Some(Configuration::Ob));
        assert_eq!(parse_scheme("RHOP"), Some(Configuration::Rhop));
        assert_eq!(parse_scheme("VC2"), Some(Configuration::Vc { num_vcs: 2 }));
        assert_eq!(parse_scheme("vc4"), Some(Configuration::Vc { num_vcs: 4 }));
        assert_eq!(parse_scheme("VC0"), None);
        assert_eq!(parse_scheme("nope"), None);
    }

    #[test]
    fn specs_resolve_against_the_suite() {
        let job = resolve_spec(&JobSpec::Point {
            name: "mcf".into(),
            scheme: "OP".into(),
            uops: 1000,
        })
        .unwrap();
        assert!(matches!(job, EvalJob::Point { uops: 1000, .. }));
        assert!(resolve_spec(&JobSpec::Point {
            name: "not-a-point".into(),
            scheme: "OP".into(),
            uops: 1,
        })
        .unwrap_err()
        .contains("unknown suite point"));
        assert!(resolve_spec(&JobSpec::Trace {
            path: "x.vct".into(),
            scheme: "bogus".into(),
            max_uops: 0,
        })
        .unwrap_err()
        .contains("unknown scheme"));
    }

    #[test]
    fn digest_separates_different_stats() {
        let a = SimStats::default();
        let b = SimStats {
            committed_uops: 1,
            ..SimStats::default()
        };
        assert_eq!(stats_digest(&a), stats_digest(&a));
        assert_ne!(stats_digest(&a), stats_digest(&b));
    }
}
