//! A hand-rolled readiness reactor: one thread multiplexes the listener,
//! a wakeup pipe and every client connection over non-blocking I/O —
//! mio-style, with no dependencies.
//!
//! On Linux the poller is the real `epoll(7)`, declared directly against
//! the C library (the only `unsafe` in the workspace, confined to
//! [`sys`] with the raw-fd plumbing). Elsewhere a portable fallback
//! reports every registered fd as ready on a short tick and lets the
//! non-blocking reads/writes sort out who actually was — functionally
//! identical, just busier.
//!
//! The poller is deliberately edge-free (level-triggered): the reactor
//! re-arms write interest only while a connection has queued output, so
//! a ready socket with nothing to say costs nothing.

/// What a file descriptor is watched for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when readable (or the peer hung up).
    pub readable: bool,
    /// Wake when writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event: the registered token plus what fired. `hangup`
/// folds `EPOLLHUP`/`EPOLLERR`/`EPOLLRDHUP` — the connection is done.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (or hung up — a read will observe the EOF/error).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Peer closed or the fd errored.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    //! Raw `epoll(7)` bindings, declared against the platform C library.
    //! This is the workspace's one unsafe island; everything is a thin
    //! checked wrapper over four syscalls, and the fd is closed on drop.
    #![allow(unsafe_code)]

    use std::io;
    use std::os::fd::RawFd;

    use super::{Event, Interest};

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    // x86/x86_64 declare `struct epoll_event` packed; other Linux
    // targets use natural alignment.
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn check(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    /// An `epoll` instance.
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// A fresh epoll instance (close-on-exec).
        pub fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 takes a flags int and returns an fd
            // or -1; no pointers involved.
            let epfd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, ev: Option<&mut EpollEvent>) -> io::Result<()> {
            // SAFETY: the event pointer is either null (DEL) or a live
            // &mut to a stack EpollEvent for the duration of the call.
            check(unsafe {
                epoll_ctl(
                    self.epfd,
                    op,
                    fd,
                    ev.map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent),
                )
            })
            .map(|_| ())
        }

        /// Watch `fd` under `token`.
        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            self.ctl(EPOLL_CTL_ADD, fd, Some(&mut ev))
        }

        /// Change what `fd` is watched for.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            self.ctl(EPOLL_CTL_MOD, fd, Some(&mut ev))
        }

        /// Stop watching `fd`.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        /// Block up to `timeout_ms` (−1 = forever) and return what fired.
        pub fn wait(&self, timeout_ms: i32) -> io::Result<Vec<Event>> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; 64];
            // SAFETY: buf is a live, properly sized array for the whole
            // call; the kernel writes at most `maxevents` entries.
            let n = match check(unsafe {
                epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
            }) {
                Ok(n) => n as usize,
                // A signal is a spurious wakeup, not an error.
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            Ok(buf[..n]
                .iter()
                .map(|e| {
                    // Copy out of the (possibly packed) struct first.
                    let (events, data) = (e.events, e.data);
                    Event {
                        token: data,
                        readable: events & EPOLLIN != 0,
                        writable: events & EPOLLOUT != 0,
                        hangup: events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                    }
                })
                .collect())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: epfd came from epoll_create1 and is closed once.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    //! Portable fallback: no kernel readiness queue, so every registered
    //! fd is reported ready on a short tick and the reactor's
    //! non-blocking I/O discovers the truth. Correct, merely busier.

    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;

    use super::{Event, Interest};

    /// Registration table standing in for an epoll instance.
    pub struct Poller {
        fds: Mutex<Vec<(RawFd, u64, Interest)>>,
    }

    impl Poller {
        /// An empty poller.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                fds: Mutex::new(Vec::new()),
            })
        }

        /// Watch `fd` under `token`.
        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.fds.lock().unwrap().push((fd, token, interest));
            Ok(())
        }

        /// Change what `fd` is watched for.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut fds = self.fds.lock().unwrap();
            for slot in fds.iter_mut() {
                if slot.0 == fd {
                    *slot = (fd, token, interest);
                }
            }
            Ok(())
        }

        /// Stop watching `fd`.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.fds.lock().unwrap().retain(|&(f, _, _)| f != fd);
            Ok(())
        }

        /// Tick: report everything registered as ready.
        pub fn wait(&self, timeout_ms: i32) -> io::Result<Vec<Event>> {
            let tick = if timeout_ms < 0 { 5 } else { timeout_ms.min(5) };
            std::thread::sleep(std::time::Duration::from_millis(tick as u64));
            Ok(self
                .fds
                .lock()
                .unwrap()
                .iter()
                .map(|&(_, token, interest)| Event {
                    token,
                    readable: interest.readable,
                    writable: interest.writable,
                    hangup: false,
                })
                .collect())
        }
    }
}

pub use sys::Poller;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn poller_reports_readable_when_bytes_arrive() {
        let poller = Poller::new().unwrap();
        let (mut a, mut b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.add(b.as_raw_fd(), 7, Interest::READ).unwrap();
        // Nothing to read yet: a zero-timeout wait stays quiet (epoll) or
        // reports a readable that immediately WouldBlocks (fallback).
        for ev in poller.wait(0).unwrap() {
            assert_eq!(ev.token, 7);
            let mut buf = [0u8; 8];
            assert!(b.read(&mut buf).is_err(), "spurious readiness had data");
        }
        a.write_all(b"ping").unwrap();
        let events = poller.wait(1000).unwrap();
        let ev = events.iter().find(|e| e.token == 7).unwrap();
        assert!(ev.readable);
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 4);
        poller.delete(b.as_raw_fd()).unwrap();
    }

    #[test]
    fn poller_reports_hangup_or_eof_on_peer_close() {
        let poller = Poller::new().unwrap();
        let (a, mut b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.add(b.as_raw_fd(), 3, Interest::READ).unwrap();
        drop(a);
        let events = poller.wait(1000).unwrap();
        let ev = events.iter().find(|e| e.token == 3).unwrap();
        // epoll flags the hangup; either way a read observes EOF.
        assert!(ev.hangup || ev.readable);
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 0, "read sees EOF");
    }

    #[test]
    fn write_interest_is_modifiable() {
        let poller = Poller::new().unwrap();
        let (_a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.add(b.as_raw_fd(), 1, Interest::READ).unwrap();
        poller
            .modify(b.as_raw_fd(), 1, Interest::READ_WRITE)
            .unwrap();
        let events = poller.wait(1000).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));
        poller.modify(b.as_raw_fd(), 1, Interest::READ).unwrap();
        assert!(!poller
            .wait(0)
            .unwrap()
            .iter()
            .any(|e| e.token == 1 && e.writable));
    }
}
