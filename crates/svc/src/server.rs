//! The evaluation server: a [`Scheduler`] fed by socket connections
//! and/or in-process [`LocalClient`]s, drained by the batch engine's
//! worker pool ([`EvalDriver::drain_source`]), with per-cell results
//! streamed back to whoever submitted each job.
//!
//! Three kinds of threads cooperate:
//!
//! * **workers** — `drain_source` pulls jobs from the scheduler and
//!   invokes the completion sink from whichever worker finished;
//! * **the reactor** — one thread multiplexing the listener and every
//!   connection over the [`reactor`](crate::reactor) poller; worker
//!   completions reach it through a mailbox plus a wakeup pipe;
//! * **clients' own threads** — [`LocalClient`] submits straight into
//!   the scheduler and blocks on its private inbox, no sockets involved.
//!
//! Result routing is by ticket: the scheduler's global ticket is
//! [`reserve`](Scheduler::reserve)d and mapped to the submitting client
//! *before* the job is admitted, so a worker completing the job
//! instantly can never race the registration.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::os::fd::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use virtclust_core::{EvalDriver, EvalJob, JobDone, ResilientOptions};
use virtclust_sim::SimStats;
use virtclust_uarch::MachineConfig;

use crate::client::Stream;
use crate::reactor::{Interest, Poller};
use crate::sched::{Drained, SchedConfig, Scheduler};
use crate::wire::{
    decode_client, encode_server, recv_preamble, resolve_spec, send_preamble, split_frame,
    stats_digest, BusyReason, ClientMsg, Priority, ServerMsg, Submit, SvcStats, WireResult,
    WireStats,
};

/// What a cancelled-before-start job reports as its error.
pub const CANCELLED_BEFORE_START: &str = "cancelled before start";

const TOK_LISTENER: u64 = 0;
const TOK_WAKER: u64 = 1;
/// Client ids (= connection tokens) start here; 0..16 are reserved.
const FIRST_CLIENT: u64 = 16;

/// One job's outcome as delivered to a [`LocalClient`]: the full
/// statistics, not the wire summary.
#[derive(Debug)]
pub struct LocalResult {
    /// The ticket the client submitted under.
    pub ticket: u64,
    /// Wall-clock time on the worker.
    pub wall: Duration,
    /// Full statistics, or the failure rendered as a string (the same
    /// string a socket client would see).
    pub stats: Result<SimStats, String>,
}

/// A local client's result inbox.
#[derive(Default)]
struct LocalInbox {
    queue: Mutex<VecDeque<LocalResult>>,
    ready: Condvar,
}

impl LocalInbox {
    fn push(&self, r: LocalResult) {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(r);
        self.ready.notify_all();
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<LocalResult> {
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(r) = q.pop_front() {
                return Some(r);
            }
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(q, left)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
    }
}

/// Where a completed job's result goes.
enum Dest {
    /// A socket connection, by token.
    Conn(u64),
    /// An in-process client's inbox.
    Local(Arc<LocalInbox>),
}

struct Route {
    dest: Dest,
    /// The client's own ticket for the job.
    ticket: u64,
}

/// Shared server state.
struct SvcInner {
    sched: Scheduler,
    routes: Mutex<HashMap<u64, Route>>,
    /// Serialized server→client frames awaiting the reactor, keyed by
    /// connection token. Tokens without a live connection are dropped at
    /// drain time (the client went away; its jobs were cancelled).
    mailbox: Mutex<Vec<(u64, Vec<u8>)>>,
    /// Write end of the reactor's wakeup pipe (None until a listener is
    /// served).
    waker: Mutex<Option<UnixStream>>,
    workers_done: AtomicBool,
}

impl SvcInner {
    fn lock_routes(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Route>> {
        self.routes.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Poke the reactor (no-op when no listener is being served). The
    /// pipe is non-blocking: a full pipe already guarantees a pending
    /// wakeup, so a `WouldBlock` is success.
    fn wake(&self) {
        let guard = self.waker.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(w) = guard.as_ref() {
            let _ = (&*w).write(&[1]);
        }
    }

    /// Queue one server→client frame for the reactor.
    fn post(&self, conn: u64, msg: &ServerMsg) {
        let mut frame = Vec::with_capacity(64);
        // Serializing to a Vec only fails on a >16 MiB frame, which no
        // ServerMsg can produce.
        if encode_server(&mut frame, msg).is_ok() {
            self.mailbox
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push((conn, frame));
        }
    }

    /// The completion sink handed to `drain_source` — must not panic.
    fn complete(&self, done: JobDone) {
        self.sched.counters.inflight.dec();
        self.sched.counters.completed.inc();
        let Some(route) = self.lock_routes().remove(&done.ticket) else {
            return;
        };
        let wall = done.outcome.wall;
        match route.dest {
            Dest::Local(inbox) => inbox.push(LocalResult {
                ticket: route.ticket,
                wall,
                stats: done.outcome.stats.map_err(|e| e.to_string()),
            }),
            Dest::Conn(conn) => {
                let outcome = match done.outcome.stats {
                    Ok(s) => Ok(WireStats {
                        cycles: s.cycles,
                        committed_uops: s.committed_uops,
                        copies: s.copies_generated,
                        digest: stats_digest(&s),
                    }),
                    Err(e) => Err(e.to_string()),
                };
                self.post(
                    conn,
                    &ServerMsg::Result(WireResult {
                        ticket: route.ticket,
                        wall_us: wall.as_micros() as u64,
                        outcome,
                    }),
                );
                self.wake();
            }
        }
    }

    /// Report jobs that were cancelled before they started (queue drains
    /// from `CancelAll`, client disconnect, or shutdown).
    fn report_drained(&self, drained: Vec<Drained>) {
        if drained.is_empty() {
            return;
        }
        let mut routes = self.lock_routes();
        let mut woke = false;
        for d in drained {
            self.sched.counters.completed.inc();
            let Some(route) = routes.remove(&d.global) else {
                continue;
            };
            match route.dest {
                Dest::Local(inbox) => inbox.push(LocalResult {
                    ticket: route.ticket,
                    wall: Duration::ZERO,
                    stats: Err(CANCELLED_BEFORE_START.into()),
                }),
                Dest::Conn(conn) => {
                    self.post(
                        conn,
                        &ServerMsg::Result(WireResult {
                            ticket: route.ticket,
                            wall_us: 0,
                            outcome: Err(CANCELLED_BEFORE_START.into()),
                        }),
                    );
                    woke = true;
                }
            }
        }
        drop(routes);
        if woke {
            self.wake();
        }
    }

    /// Route-registering submit shared by sockets and local clients.
    fn submit_routed(
        &self,
        client: u64,
        dest: Dest,
        ticket: u64,
        job: EvalJob,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<(), BusyReason> {
        let global = self.sched.reserve();
        self.lock_routes().insert(global, Route { dest, ticket });
        match self.sched.submit(client, global, job, priority, deadline) {
            Ok(()) => Ok(()),
            Err(reason) => {
                self.lock_routes().remove(&global);
                Err(reason)
            }
        }
    }
}

/// Configures and starts a [`Server`].
pub struct ServerBuilder {
    machine: MachineConfig,
    threads: usize,
    sched: SchedConfig,
    opts: ResilientOptions,
}

impl ServerBuilder {
    /// A server simulating on `machine` with default bounds.
    pub fn new(machine: &MachineConfig) -> Self {
        ServerBuilder {
            machine: machine.clone(),
            threads: 0,
            sched: SchedConfig::default(),
            opts: ResilientOptions::new(),
        }
    }

    /// Worker threads (0 = one per available CPU).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Service-wide queued-job cap.
    #[must_use]
    pub fn queue_cap(mut self, n: usize) -> Self {
        self.sched.queue_cap = n;
        self
    }

    /// Per-client queued-job quota.
    #[must_use]
    pub fn client_quota(mut self, n: usize) -> Self {
        self.sched.client_quota = n;
        self
    }

    /// Batch-engine options every job runs under (retries, batch-level
    /// deadline; a per-job token/deadline from the wire still composes).
    #[must_use]
    pub fn options(mut self, opts: ResilientOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Start the worker pool and return the running server.
    pub fn start(self) -> Server {
        let inner = Arc::new(SvcInner {
            sched: Scheduler::new(self.sched),
            routes: Mutex::new(HashMap::new()),
            mailbox: Mutex::new(Vec::new()),
            waker: Mutex::new(None),
            workers_done: AtomicBool::new(false),
        });
        let driver = EvalDriver::new(&self.machine).threads(self.threads);
        let drain = {
            let inner = Arc::clone(&inner);
            let opts = self.opts;
            std::thread::spawn(move || {
                driver.drain_source(&inner.sched, &opts, &|done| inner.complete(done));
                inner.workers_done.store(true, Ordering::SeqCst);
                inner.wake();
            })
        };
        Server {
            inner,
            next_local: std::sync::atomic::AtomicU64::new(1_000_000_000),
            drain: Some(drain),
            reactor: None,
        }
    }
}

/// A running evaluation service.
pub struct Server {
    inner: Arc<SvcInner>,
    next_local: std::sync::atomic::AtomicU64,
    drain: Option<std::thread::JoinHandle<()>>,
    reactor: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl Server {
    /// An in-process client: submits bypass the wire and results arrive
    /// as full [`LocalResult`]s on a private inbox.
    pub fn local_client(&self) -> LocalClient {
        LocalClient {
            inner: Arc::clone(&self.inner),
            client_id: self.next_local.fetch_add(1, Ordering::Relaxed),
            inbox: Arc::new(LocalInbox::default()),
        }
    }

    /// Serve connections on a Unix domain socket at `path` (an existing
    /// socket file is replaced). One listener per server.
    pub fn serve_unix(&mut self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        self.spawn_reactor(Listener::Unix(listener), Some(path))
    }

    /// Serve connections on a TCP address (e.g. `"127.0.0.1:0"`);
    /// returns the bound address. One listener per server.
    pub fn serve_tcp(&mut self, addr: &str) -> io::Result<std::net::SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        self.spawn_reactor(Listener::Tcp(listener), None)?;
        Ok(bound)
    }

    fn spawn_reactor(&mut self, listener: Listener, unlink: Option<PathBuf>) -> io::Result<()> {
        if self.reactor.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "server already has a listener",
            ));
        }
        let inner = Arc::clone(&self.inner);
        self.reactor = Some(std::thread::spawn(move || {
            let r = run_reactor(&inner, listener);
            if let Some(path) = unlink {
                let _ = std::fs::remove_file(path);
            }
            r
        }));
        Ok(())
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> SvcStats {
        self.inner.sched.stats()
    }

    /// Per-priority queue-wait histograms (microseconds).
    pub fn queue_wait_hists(&self) -> [virtclust_obs::Log2Hist; 3] {
        self.inner.sched.queue_wait_hists()
    }

    /// Close intake, cancel queued jobs (reported cancelled to their
    /// owners), let running jobs finish, stop workers and the reactor.
    pub fn shutdown(&self) {
        let drained = self.inner.sched.shutdown();
        self.inner.report_drained(drained);
        self.inner.wake();
    }

    /// Wait for the service to stop (a [`shutdown`](Server::shutdown)
    /// call or a wire `Shutdown` frame). Surfaces a reactor I/O error;
    /// on success returns the final statistics snapshot (taken after the
    /// pool drained, so `completed` is the last word).
    pub fn join(mut self) -> io::Result<SvcStats> {
        let mut result = Ok(());
        if let Some(d) = self.drain.take() {
            if d.join().is_err() {
                result = Err(io::Error::other("worker pool panicked"));
            }
        }
        if let Some(r) = self.reactor.take() {
            match r.join() {
                Ok(r) => result = result.and(r),
                Err(_) => result = Err(io::Error::other("reactor panicked")),
            }
        }
        result.map(|()| self.inner.sched.stats())
    }
}

/// An in-process service client (no sockets, same scheduler, same
/// fairness/quota/backpressure rules).
pub struct LocalClient {
    inner: Arc<SvcInner>,
    client_id: u64,
    inbox: Arc<LocalInbox>,
}

impl LocalClient {
    /// Submit a resolved job under a client-chosen ticket.
    pub fn submit(
        &self,
        ticket: u64,
        job: EvalJob,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<(), BusyReason> {
        self.inner.submit_routed(
            self.client_id,
            Dest::Local(Arc::clone(&self.inbox)),
            ticket,
            job,
            priority,
            deadline,
        )
    }

    /// Block up to `timeout` for the next completed job.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<LocalResult> {
        self.inbox.recv_timeout(timeout)
    }

    /// Cancel everything this client has queued or running.
    pub fn cancel_all(&self) {
        let drained = self.inner.sched.cancel_client(self.client_id);
        self.inner.report_drained(drained);
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(true),
            Listener::Tcp(l) => l.set_nonblocking(true),
        }
    }

    fn raw_fd(&self) -> std::os::fd::RawFd {
        match self {
            Listener::Unix(l) => l.as_raw_fd(),
            Listener::Tcp(l) => l.as_raw_fd(),
        }
    }

    /// Accept one connection, already non-blocking.
    fn accept(&self) -> io::Result<Stream> {
        let stream = match self {
            Listener::Unix(l) => Stream::Unix(l.accept()?.0),
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Stream::Tcp(s)
            }
        };
        stream.set_nonblocking(true)?;
        Ok(stream)
    }
}

/// One live connection's reactor-side state.
struct Conn {
    stream: Stream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    preambled: bool,
    /// Current poller interest (write side), to avoid redundant syscalls.
    write_armed: bool,
    dead: bool,
}

impl Conn {
    fn queue(&mut self, frame: &[u8]) {
        self.wbuf.extend_from_slice(frame);
    }

    fn queue_msg(&mut self, msg: &ServerMsg) {
        let mut frame = Vec::with_capacity(64);
        if encode_server(&mut frame, msg).is_ok() {
            self.queue(&frame);
        }
    }

    /// Flush as much queued output as the socket takes.
    fn flush(&mut self) {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
    }

    fn has_pending_output(&self) -> bool {
        self.wpos < self.wbuf.len()
    }
}

/// The reactor loop: multiplex the listener, the wakeup pipe and every
/// connection; dispatch frames into the scheduler; stream results out.
fn run_reactor(inner: &Arc<SvcInner>, listener: Listener) -> io::Result<()> {
    let poller = Poller::new()?;
    listener.set_nonblocking()?;
    poller.add(listener.raw_fd(), TOK_LISTENER, Interest::READ)?;
    let (wake_read, wake_write) = UnixStream::pair()?;
    wake_read.set_nonblocking(true)?;
    wake_write.set_nonblocking(true)?;
    poller.add(wake_read.as_raw_fd(), TOK_WAKER, Interest::READ)?;
    *inner.waker.lock().unwrap_or_else(PoisonError::into_inner) = Some(wake_write);

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CLIENT;
    loop {
        // Bounded timeout: the exit condition (shutdown + workers done +
        // everything flushed) must be re-checked even if no event fires.
        let events = poller.wait(500)?;
        for ev in &events {
            match ev.token {
                TOK_LISTENER => loop {
                    match listener.accept() {
                        Ok(stream) => {
                            let token = next_token;
                            next_token += 1;
                            let fd = stream.as_raw_fd();
                            let mut conn = Conn {
                                stream,
                                rbuf: Vec::new(),
                                wbuf: Vec::new(),
                                wpos: 0,
                                preambled: false,
                                write_armed: true,
                                dead: false,
                            };
                            // Greet first: the preamble goes out as soon
                            // as the socket is writable.
                            let mut hello = Vec::with_capacity(5);
                            let _ = send_preamble(&mut hello);
                            conn.queue(&hello);
                            poller.add(fd, token, Interest::READ_WRITE)?;
                            conns.insert(token, conn);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(e),
                    }
                },
                TOK_WAKER => {
                    let mut sink = [0u8; 64];
                    while matches!((&wake_read).read(&mut sink), Ok(n) if n > 0) {}
                }
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    if ev.readable || ev.hangup {
                        read_and_dispatch(inner, token, conn);
                    }
                    if ev.writable {
                        conn.flush();
                    }
                }
            }
        }

        // Worker completions → per-connection write buffers.
        let mail =
            std::mem::take(&mut *inner.mailbox.lock().unwrap_or_else(PoisonError::into_inner));
        for (token, frame) in mail {
            if let Some(conn) = conns.get_mut(&token) {
                conn.queue(&frame);
            }
        }

        // Flush, re-arm write interest only where needed, reap the dead.
        let mut dead = Vec::new();
        for (&token, conn) in conns.iter_mut() {
            if !conn.dead && conn.has_pending_output() {
                conn.flush();
            }
            if conn.dead {
                dead.push(token);
                continue;
            }
            let want_write = conn.has_pending_output();
            if want_write != conn.write_armed {
                let interest = if want_write {
                    Interest::READ_WRITE
                } else {
                    Interest::READ
                };
                poller.modify(conn.stream.as_raw_fd(), token, interest)?;
                conn.write_armed = want_write;
            }
        }
        for token in dead {
            if let Some(conn) = conns.remove(&token) {
                let _ = poller.delete(conn.stream.as_raw_fd());
            }
            // A vanished client implicitly cancels its outstanding work.
            let drained = inner.sched.cancel_client(token);
            inner.report_drained(drained);
        }

        if inner.sched.is_shutdown() && inner.workers_done.load(Ordering::SeqCst) {
            // Final drain: deliver any last results, then leave.
            let mail =
                std::mem::take(&mut *inner.mailbox.lock().unwrap_or_else(PoisonError::into_inner));
            for (token, frame) in mail {
                if let Some(conn) = conns.get_mut(&token) {
                    conn.queue(&frame);
                }
            }
            let everything_flushed = conns.values().all(|c| !c.has_pending_output());
            for conn in conns.values_mut() {
                conn.flush();
            }
            if everything_flushed {
                return Ok(());
            }
        }
    }
}

/// Pull bytes off a connection, parse complete frames, dispatch them.
fn read_and_dispatch(inner: &Arc<SvcInner>, token: u64, conn: &mut Conn) {
    let mut buf = [0u8; 4096];
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => conn.rbuf.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    loop {
        if !conn.preambled {
            if conn.rbuf.len() < 5 {
                break;
            }
            let mut r = &conn.rbuf[..5];
            if recv_preamble(&mut r).is_err() {
                conn.dead = true;
                return;
            }
            conn.rbuf.drain(..5);
            conn.preambled = true;
        }
        match split_frame(&conn.rbuf) {
            Ok(Some((msg_type, body, used))) => {
                conn.rbuf.drain(..used);
                match decode_client(msg_type, &body) {
                    // Unknown type: consumed and skipped (forward compat).
                    Ok(None) => {}
                    Ok(Some(msg)) => dispatch(inner, token, conn, msg),
                    Err(_) => {
                        conn.dead = true;
                        return;
                    }
                }
            }
            Ok(None) => break,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Handle one decoded client message.
fn dispatch(inner: &Arc<SvcInner>, token: u64, conn: &mut Conn, msg: ClientMsg) {
    match msg {
        ClientMsg::Submit(Submit {
            ticket,
            priority,
            deadline_ms,
            spec,
        }) => {
            let job = match resolve_spec(&spec) {
                Ok(job) => job,
                Err(e) => {
                    // Resolution failures are immediate Result frames —
                    // the job never existed service-side.
                    conn.queue_msg(&ServerMsg::Result(WireResult {
                        ticket,
                        wall_us: 0,
                        outcome: Err(e),
                    }));
                    return;
                }
            };
            let deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
            match inner.submit_routed(token, Dest::Conn(token), ticket, job, priority, deadline) {
                Ok(()) => conn.queue_msg(&ServerMsg::Accepted { ticket }),
                Err(reason) => conn.queue_msg(&ServerMsg::Busy { ticket, reason }),
            }
        }
        ClientMsg::CancelAll => {
            let drained = inner.sched.cancel_client(token);
            inner.report_drained(drained);
        }
        ClientMsg::GetStats => {
            conn.queue_msg(&ServerMsg::Stats(inner.sched.stats()));
        }
        ClientMsg::Shutdown => {
            let drained = inner.sched.shutdown();
            inner.report_drained(drained);
        }
    }
}
