//! Blocking socket client for the evaluation service.
//!
//! [`Client::connect_unix`]/[`Client::connect_tcp`] perform the preamble
//! handshake; [`Client::submit`] sends jobs and [`Client::recv`] streams
//! replies back ([`ServerMsg::Accepted`]/[`Busy`](ServerMsg::Busy)
//! immediately, a [`ServerMsg::Result`] per job as it completes). For
//! open-loop load generation [`Client::split`] clones the stream into an
//! independently owned sender and receiver so submission never waits on
//! result draining.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

use virtclust_trace::frame::read_frame;
use virtclust_trace::{Result as TraceResult, TraceError};

use crate::wire::{
    decode_server, encode_client, recv_preamble, send_preamble, ClientMsg, ServerMsg, Submit,
};

/// A connected byte stream, Unix or TCP.
#[derive(Debug)]
pub enum Stream {
    /// A Unix domain socket.
    Unix(UnixStream),
    /// A TCP socket (Nagle disabled — frames are latency-sensitive).
    Tcp(TcpStream),
}

impl Stream {
    /// Clone the underlying socket (both halves share the fd).
    pub fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    /// Switch blocking mode.
    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_nonblocking(nb),
            Stream::Tcp(s) => s.set_nonblocking(nb),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

#[cfg(unix)]
impl std::os::fd::AsRawFd for Stream {
    fn as_raw_fd(&self) -> std::os::fd::RawFd {
        match self {
            Stream::Unix(s) => s.as_raw_fd(),
            Stream::Tcp(s) => s.as_raw_fd(),
        }
    }
}

/// A blocking service client.
pub struct Client {
    stream: Stream,
}

impl Client {
    fn handshake(mut stream: Stream) -> TraceResult<Client> {
        send_preamble(&mut stream)?;
        stream.flush()?;
        recv_preamble(&mut stream)?;
        Ok(Client { stream })
    }

    /// Connect over a Unix domain socket.
    pub fn connect_unix(path: impl AsRef<Path>) -> TraceResult<Client> {
        Client::handshake(Stream::Unix(UnixStream::connect(path)?))
    }

    /// Connect over TCP.
    pub fn connect_tcp(addr: &str) -> TraceResult<Client> {
        let s = TcpStream::connect(addr)?;
        s.set_nodelay(true)?;
        Client::handshake(Stream::Tcp(s))
    }

    /// Submit one job. The server replies with `Accepted` or `Busy`
    /// (read it with [`recv`](Client::recv)).
    pub fn submit(&mut self, submit: &Submit) -> TraceResult<()> {
        encode_client(&mut self.stream, &ClientMsg::Submit(submit.clone()))?;
        self.stream.flush()?;
        Ok(())
    }

    /// Cancel everything this client has in the service.
    pub fn cancel_all(&mut self) -> TraceResult<()> {
        encode_client(&mut self.stream, &ClientMsg::CancelAll)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Ask the daemon to stop (queued jobs cancel, running jobs finish).
    pub fn shutdown(&mut self) -> TraceResult<()> {
        encode_client(&mut self.stream, &ClientMsg::Shutdown)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Request a statistics snapshot (arrives as [`ServerMsg::Stats`]).
    pub fn get_stats(&mut self) -> TraceResult<()> {
        encode_client(&mut self.stream, &ClientMsg::GetStats)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Block for the next server message; `Ok(None)` when the server
    /// closed the connection. Unknown message types are skipped (forward
    /// compat).
    pub fn recv(&mut self) -> TraceResult<Option<ServerMsg>> {
        loop {
            let Some((msg_type, body)) = read_frame(&mut self.stream)? else {
                return Ok(None);
            };
            if let Some(m) = decode_server(msg_type, &body)? {
                return Ok(Some(m));
            }
        }
    }

    /// Split into an independently owned sender and receiver over the
    /// same connection, so results can drain while jobs keep flowing.
    pub fn split(self) -> TraceResult<(Client, Client)> {
        let reader = Client {
            stream: self.stream.try_clone().map_err(TraceError::from)?,
        };
        Ok((self, reader))
    }

    /// Convenience: block until the next [`ServerMsg::Result`] frame,
    /// passing intermediate messages to `on_other`. `Ok(None)` on EOF.
    pub fn recv_result(
        &mut self,
        mut on_other: impl FnMut(ServerMsg),
    ) -> TraceResult<Option<crate::wire::WireResult>> {
        loop {
            match self.recv()? {
                None => return Ok(None),
                Some(ServerMsg::Result(r)) => return Ok(Some(r)),
                Some(other) => on_other(other),
            }
        }
    }
}
