//! Integration tests driving the machine into each structural-stall path
//! with deliberately shrunken resources, verifying both that the stall is
//! detected (the accounting the paper's balance metric builds on) and that
//! the machine still completes the program exactly.
#![allow(clippy::field_reassign_with_default)] // configs are tweaked per test

use virtclust_sim::{
    simulate, RunLimits, SimStats, StallReason, SteerDecision, SteerView, SteeringPolicy,
};
use virtclust_uarch::{
    ArchReg, DynUop, MachineConfig, OpClass, Region, RegionBuilder, StaticInst, VecTrace,
};

struct ToZero;
impl SteeringPolicy for ToZero {
    fn name(&self) -> String {
        "to-zero".into()
    }
    fn steer(&mut self, _u: &DynUop, _v: &SteerView<'_>) -> SteerDecision {
        SteerDecision::Cluster(0)
    }
}

struct RoundRobin(u8);
impl SteeringPolicy for RoundRobin {
    fn name(&self) -> String {
        "rr".into()
    }
    fn steer(&mut self, _u: &DynUop, view: &SteerView<'_>) -> SteerDecision {
        let c = self.0;
        self.0 = (self.0 + 1) % view.num_clusters() as u8;
        SteerDecision::Cluster(c)
    }
    fn reset(&mut self) {
        self.0 = 0;
    }
}

fn r(i: u8) -> ArchReg {
    ArchReg::int(i)
}

fn expand(region: &Region, iters: usize) -> Vec<DynUop> {
    let mut uops = Vec::new();
    let mut seq = 0;
    for _ in 0..iters {
        seq = virtclust_uarch::trace::expand_region(
            region,
            seq,
            &mut uops,
            |s, _| 0x100000 + (s * 8192) % (1 << 24), // miss-heavy stream
            |_, _| true,
        );
    }
    uops
}

fn run(cfg: &MachineConfig, uops: &[DynUop], policy: &mut dyn SteeringPolicy) -> SimStats {
    let mut trace = VecTrace::new(uops.to_vec());
    simulate(cfg, &mut trace, policy, &RunLimits::unlimited())
}

#[test]
fn iq_full_stalls_are_detected_and_program_completes() {
    // Long-latency loads feeding dependents, 4-entry INT queue: the queue
    // fills with waiting consumers.
    let mut cfg = MachineConfig::default();
    cfg.iq_int_entries = 4;
    let region = RegionBuilder::new(0, "iq")
        .load(r(2), r(1))
        .alu(r(3), &[r(2)])
        .alu(r(4), &[r(2)])
        .alu(r(5), &[r(2)])
        .build();
    let uops = expand(&region, 60);
    let stats = run(&cfg, &uops, &mut ToZero);
    assert_eq!(stats.committed_uops, uops.len() as u64);
    assert!(
        stats.dispatch_stalls[StallReason::IqFull.index()] > 0,
        "tiny IQ must fill: {:?}",
        stats.dispatch_stalls
    );
}

#[test]
fn lsq_full_stalls_are_detected() {
    let mut cfg = MachineConfig::default();
    cfg.lsq_entries = 4;
    let mut b = RegionBuilder::new(0, "lsq");
    for i in 2..8u8 {
        b = b.load(r(i), r(1));
    }
    let uops = expand(&b.build(), 60);
    let stats = run(&cfg, &uops, &mut ToZero);
    assert_eq!(stats.committed_uops, uops.len() as u64);
    assert!(stats.dispatch_stalls[StallReason::LsqFull.index()] > 0);
}

#[test]
fn rob_full_stalls_are_detected() {
    let mut cfg = MachineConfig::default();
    cfg.rob_entries = 8;
    let region = RegionBuilder::new(0, "rob")
        .load(r(2), r(1)) // long-latency head blocks commit
        .alu(r(3), &[r(3)])
        .alu(r(4), &[r(4)])
        .alu(r(5), &[r(5)])
        .build();
    let uops = expand(&region, 40);
    let stats = run(&cfg, &uops, &mut ToZero);
    assert_eq!(stats.committed_uops, uops.len() as u64);
    assert!(stats.dispatch_stalls[StallReason::RobFull.index()] > 0);
}

#[test]
fn copy_queue_full_stalls_are_detected() {
    // Round-robin over a serial chain: every uop needs a copy; a 1-entry
    // copy queue backs dispatch up.
    let mut cfg = MachineConfig::default();
    cfg.copy_queue_entries = 1;
    let mut b = RegionBuilder::new(0, "copyq");
    for _ in 0..6 {
        b = b.alu(r(1), &[r(1)]);
    }
    let uops = expand(&b.build(), 80);
    let stats = run(&cfg, &uops, &mut RoundRobin(0));
    assert_eq!(stats.committed_uops, uops.len() as u64);
    assert!(stats.copies_generated > 0);
    assert!(stats.dispatch_stalls[StallReason::CopyQueueFull.index()] > 0);
    assert_eq!(stats.copies_generated, stats.copies_delivered);
}

#[test]
fn rf_full_stalls_are_detected() {
    // Shrink the INT register file to just above the architected count;
    // a burst of long-lived defs exhausts it.
    let mut cfg = MachineConfig::default();
    cfg.int_regs_per_cluster = 40;
    let region = RegionBuilder::new(0, "rf")
        .load(r(2), r(1))
        .alu(r(3), &[r(2)])
        .alu(r(4), &[r(3)])
        .alu(r(5), &[r(4)])
        .alu(r(6), &[r(5)])
        .alu(r(7), &[r(6)])
        .build();
    let uops = expand(&region, 80);
    let stats = run(&cfg, &uops, &mut ToZero);
    assert_eq!(stats.committed_uops, uops.len() as u64);
    assert!(
        stats.dispatch_stalls[StallReason::RfFull.index()] > 0,
        "tiny RF must bind: {:?}",
        stats.dispatch_stalls
    );
}

#[test]
fn nops_flow_through_the_pipeline() {
    let mut region = Region::new(0, "nops");
    for _ in 0..10 {
        region.push(StaticInst::new(OpClass::Nop, &[], None));
    }
    let uops = expand(&region, 5);
    let stats = run(&MachineConfig::default(), &uops, &mut ToZero);
    assert_eq!(stats.committed_uops, 50);
    assert_eq!(stats.copies_generated, 0);
}

#[test]
fn stats_are_internally_consistent_under_pressure() {
    let mut cfg = MachineConfig::default();
    cfg.iq_int_entries = 6;
    cfg.lsq_entries = 8;
    let region = RegionBuilder::new(0, "mix")
        .load(r(2), r(1))
        .alu(r(3), &[r(2)])
        .store(r(1), r(3))
        .branch(r(3))
        .build();
    let uops = expand(&region, 100);
    let stats = run(&cfg, &uops, &mut RoundRobin(0));
    assert_eq!(stats.committed_uops, uops.len() as u64);
    let dispatched: u64 = stats.clusters.iter().map(|c| c.dispatched).sum();
    assert_eq!(dispatched, stats.committed_uops);
    assert_eq!(stats.copies_generated, stats.copies_delivered);
    assert_eq!(stats.branches, 100);
}
