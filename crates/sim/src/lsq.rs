//! The unified load/store queue.
//!
//! Per the paper (Sec. 2): *"The Load/Store Queue (LSQ) and the data cache
//! are unified and accessed by clusters through dedicated buses. At dispatch
//! time, loads and stores reserve a slot in LSQ and they are steered to the
//! corresponding cluster, where the effective address is computed. Memory
//! operations are stored in the LSQ, and remain there until they access the
//! data cache."*
//!
//! The model: entries are allocated in program order at dispatch (dispatch
//! stalls when the 256 entries are exhausted), addresses arrive when the
//! cluster computes them, store data readiness is tracked, and loads may
//! forward from the youngest older store with a matching address and ready
//! data. Loads free their entry at commit; stores free it when their
//! post-commit cache write drains.
//!
//! ## The address index
//!
//! [`Lsq::check_load`] used to walk every older entry (up to the full
//! 256-entry queue) per load, per retry cycle — the dominant cost of the
//! simulator's memory stage (ROADMAP "hot-path cost"). Stores with a known
//! address are now also kept in a small **address index**: a fixed array of
//! buckets keyed by the cache-line number of the address (line-granular so
//! aliasing traffic lands in one bucket), each bucket an age-ordered list
//! of `(seq, addr, data_ready)` triples. A load check touches only the
//! stores of its own line's bucket instead of the whole queue. Only stores
//! with a computed address are indexed — exactly the set the linear scan
//! could match (unknown-address stores are optimistically non-conflicting,
//! dead entries are unlinked at [`Lsq::free`]/[`Lsq::squash_from`]).
//!
//! The pre-index linear search survives as [`Lsq::check_load_scan`], the
//! reference implementation: debug builds run both on every check and
//! assert they agree, and the workspace differential property tests
//! (`tests/properties.rs`) drive random same-line/aliasing op sequences
//! through both in any build profile.

use std::collections::VecDeque;

/// Cache-line granularity of the address index (64-byte lines, matching
/// `MachineConfig::line_bytes`' fixed default). The index is correct for
/// any granularity — matches are still exact-address — this only decides
/// which stores share a bucket.
const LINE_SHIFT: u32 = 6;

/// Number of index buckets (power of two; line numbers are masked into
/// this range, so distinct lines may share a bucket — the per-entry `addr`
/// keeps matching exact).
const INDEX_BUCKETS: usize = 64;

#[inline]
fn bucket_of(addr: u64) -> usize {
    ((addr >> LINE_SHIFT) as usize) & (INDEX_BUCKETS - 1)
}

/// One LSQ entry.
#[derive(Debug, Clone, Copy)]
struct LsqEntry {
    seq: u64,
    is_store: bool,
    addr: Option<u64>,
    data_ready: bool,
    alive: bool,
}

/// One indexed store: an alive store whose address is known.
#[derive(Debug, Clone, Copy)]
struct StoreRef {
    seq: u64,
    addr: u64,
    data_ready: bool,
}

/// Outcome of a load's LSQ search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadCheck {
    /// No older store matches: go to the cache.
    GoToCache,
    /// The youngest older matching store has its data: forward.
    Forward,
    /// The youngest older matching store's data is not ready yet: retry.
    WaitOnStore,
}

/// The unified load/store queue.
#[derive(Debug, Clone)]
pub struct Lsq {
    entries: VecDeque<LsqEntry>,
    live: usize,
    capacity: usize,
    /// Address index: `index[bucket_of(addr)]` holds every alive store with
    /// a known address on that line set, ascending by `seq` (age order).
    index: Vec<Vec<StoreRef>>,
    /// Entries compacted off the queue front since the last reset. An
    /// entry's **slot handle** (returned by [`Lsq::alloc`]) is its absolute
    /// allocation position; `handle - popped` is its current queue index,
    /// which makes every handle-based accessor O(1) where the seq-based
    /// ones binary-search.
    popped: u64,
}

impl Lsq {
    /// Create an LSQ with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        let mut lsq = Lsq {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            live: 0,
            capacity: 1,
            index: vec![Vec::new(); INDEX_BUCKETS],
            popped: 0,
        };
        lsq.reset(capacity);
        lsq
    }

    /// Clear in place and retarget to `capacity`, keeping the entry and
    /// bucket allocations (session reuse; equivalent to [`Lsq::new`] — in
    /// particular no bucket retains a stale store).
    pub fn reset(&mut self, capacity: usize) {
        assert!(capacity >= 1);
        self.entries.clear();
        self.live = 0;
        self.capacity = capacity;
        for bucket in self.index.iter_mut() {
            bucket.clear();
        }
        self.popped = 0;
    }

    /// Entries currently allocated.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no entries are allocated — the quiescence predicate the
    /// session's drain check asserts (a drained pipeline must have freed
    /// every LSQ entry at commit or store drain).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// True if a new memory op can be allocated. Dispatch consults this
    /// before steering, which also makes it part of the idle-span
    /// predicate: an LSQ-full stall cycle is skippable precisely because
    /// this answer cannot change while commit and store drain are inert.
    #[inline]
    pub fn has_space(&self) -> bool {
        self.live < self.capacity
    }

    /// Stores currently present in the address index (alive, address
    /// known). Diagnostics for the index-consistency tests.
    pub fn indexed_stores(&self) -> usize {
        self.index.iter().map(Vec::len).sum()
    }

    /// Allocate an entry for the memory op `seq` (must be called in
    /// ascending `seq` order — program order, as dispatch does). Returns the
    /// entry's **slot handle** for the O(1) `_at` accessors; the seq-based
    /// accessors remain valid for the same entry.
    ///
    /// # Panics
    /// Panics if full or out of order.
    pub fn alloc(&mut self, seq: u64, is_store: bool) -> u32 {
        assert!(self.has_space(), "LSQ overflow");
        if let Some(back) = self.entries.back() {
            assert!(back.seq < seq, "LSQ allocations must be in program order");
        }
        let handle = self.popped + self.entries.len() as u64;
        debug_assert!(u32::try_from(handle).is_ok(), "LSQ slot handle overflow");
        self.entries.push_back(LsqEntry {
            seq,
            is_store,
            addr: None,
            data_ready: !is_store,
            alive: true,
        });
        self.live += 1;
        handle as u32
    }

    fn position(&self, seq: u64) -> Option<usize> {
        self.entries.binary_search_by_key(&seq, |e| e.seq).ok()
    }

    /// Current queue index of slot `handle` — O(1), no search. The handle
    /// must refer to an entry that has not been compacted away yet.
    #[inline]
    fn idx_of(&self, handle: u32) -> usize {
        debug_assert!(u64::from(handle) >= self.popped, "stale LSQ slot handle");
        (u64::from(handle) - self.popped) as usize
    }

    /// Record the computed effective address of `seq`. Stores enter the
    /// address index here; loads never do (only stores can be matched).
    pub fn set_addr(&mut self, seq: u64, addr: u64) {
        let i = self.position(seq).expect("set_addr on unknown LSQ entry");
        self.set_addr_idx(i, addr);
    }

    /// O(1) variant of [`Lsq::set_addr`] addressing the entry by its slot
    /// handle instead of searching for its sequence number.
    pub fn set_addr_at(&mut self, handle: u32, addr: u64) {
        let i = self.idx_of(handle);
        self.set_addr_idx(i, addr);
    }

    fn set_addr_idx(&mut self, i: usize, addr: u64) {
        let seq = self.entries[i].seq;
        debug_assert!(
            self.entries[i].addr.is_none(),
            "address of LSQ entry {seq} set twice"
        );
        self.entries[i].addr = Some(addr);
        if self.entries[i].is_store {
            let data_ready = self.entries[i].data_ready;
            let bucket = &mut self.index[bucket_of(addr)];
            let at = bucket.partition_point(|s| s.seq < seq);
            bucket.insert(
                at,
                StoreRef {
                    seq,
                    addr,
                    data_ready,
                },
            );
        }
    }

    /// Mark the store `seq`'s data as ready to forward.
    pub fn set_data_ready(&mut self, seq: u64) {
        let i = self
            .position(seq)
            .expect("set_data_ready on unknown LSQ entry");
        self.set_data_ready_idx(i);
    }

    /// O(1) variant of [`Lsq::set_data_ready`] addressing the entry by its
    /// slot handle.
    pub fn set_data_ready_at(&mut self, handle: u32) {
        let i = self.idx_of(handle);
        self.set_data_ready_idx(i);
    }

    fn set_data_ready_idx(&mut self, i: usize) {
        let seq = self.entries[i].seq;
        debug_assert!(self.entries[i].is_store);
        self.entries[i].data_ready = true;
        if let Some(addr) = self.entries[i].addr {
            let bucket = &mut self.index[bucket_of(addr)];
            let at = bucket.partition_point(|s| s.seq < seq);
            debug_assert!(bucket.get(at).is_some_and(|s| s.seq == seq));
            bucket[at].data_ready = true;
        }
    }

    /// Resolve the load `seq` at address `addr` against strictly older
    /// (`seq' < seq`) stores.
    ///
    /// Older stores with *unknown* addresses are optimistically assumed not
    /// to conflict (no replay machinery is modelled; see DESIGN.md).
    ///
    /// Cost: a scan of the address-line bucket only — no queue lookup at
    /// all. Debug builds assert the result against
    /// [`Lsq::check_load_scan`] on every call.
    pub fn check_load(&self, seq: u64, addr: u64) -> LoadCheck {
        let bucket = &self.index[bucket_of(addr)];
        // The bucket is age-sorted, so start at the youngest strictly-older
        // store instead of skipping younger ones entry by entry.
        let end = bucket.partition_point(|s| s.seq < seq);
        let mut result = LoadCheck::GoToCache;
        for s in bucket[..end].iter().rev() {
            if s.addr == addr {
                result = if s.data_ready {
                    LoadCheck::Forward
                } else {
                    LoadCheck::WaitOnStore
                };
                break;
            }
        }
        debug_assert_eq!(
            result,
            self.check_load_scan(seq, addr),
            "address index diverged from the linear scan (load {seq} @ {addr:#x})"
        );
        result
    }

    /// Reference implementation of [`Lsq::check_load`]: the pre-index
    /// linear walk over every older entry. Kept callable in every build
    /// profile so differential tests can cross-check the index; debug
    /// builds additionally run it inside every `check_load`.
    pub fn check_load_scan(&self, seq: u64, addr: u64) -> LoadCheck {
        let end = self.entries.partition_point(|e| e.seq < seq);
        for e in self.entries.iter().take(end).rev() {
            if !e.alive || !e.is_store {
                continue;
            }
            if e.addr == Some(addr) {
                return if e.data_ready {
                    LoadCheck::Forward
                } else {
                    LoadCheck::WaitOnStore
                };
            }
        }
        LoadCheck::GoToCache
    }

    /// Unlink `seq` from its address-index bucket, if indexed.
    fn unindex(&mut self, i: usize) {
        let e = self.entries[i];
        if !e.is_store {
            return;
        }
        if let Some(addr) = e.addr {
            let bucket = &mut self.index[bucket_of(addr)];
            let at = bucket.partition_point(|s| s.seq < e.seq);
            debug_assert!(bucket.get(at).is_some_and(|s| s.seq == e.seq));
            bucket.remove(at);
        }
    }

    /// Free the entry of `seq` (load commit or store drain completion).
    pub fn free(&mut self, seq: u64) {
        let i = self.position(seq).expect("free of unknown LSQ entry");
        self.free_idx(i);
    }

    /// O(1) variant of [`Lsq::free`] addressing the entry by its slot
    /// handle.
    pub fn free_at(&mut self, handle: u32) {
        let i = self.idx_of(handle);
        self.free_idx(i);
    }

    fn free_idx(&mut self, i: usize) {
        debug_assert!(self.entries[i].alive, "double free of LSQ entry");
        self.unindex(i);
        self.entries[i].alive = false;
        self.live -= 1;
        while matches!(self.entries.front(), Some(e) if !e.alive) {
            self.entries.pop_front();
            self.popped += 1;
        }
    }

    /// Squash every entry with sequence number `>= first`, unlinking any
    /// indexed store so no bucket retains a squashed entry. Returns how
    /// many live entries were removed.
    ///
    /// The current pipeline never squashes dispatched work (mispredicts
    /// only halt fetch), so nothing in the simulator calls this yet; like
    /// `ValueTracker::unlink_waiter` it is the forward-looking half of the
    /// contract a future wrong-path/flush model needs, unit-tested here so
    /// that model inherits a working primitive.
    pub fn squash_from(&mut self, first: u64) -> usize {
        let mut squashed = 0;
        while matches!(self.entries.back(), Some(e) if e.seq >= first) {
            let i = self.entries.len() - 1;
            if self.entries[i].alive {
                self.unindex(i);
                self.live -= 1;
                squashed += 1;
            }
            self.entries.pop_back();
        }
        squashed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_capacity() {
        let mut q = Lsq::new(2);
        assert!(q.has_space());
        q.alloc(1, false);
        q.alloc(2, true);
        assert!(!q.has_space());
        assert_eq!(q.len(), 2);
        q.free(1);
        assert!(q.has_space());
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "LSQ overflow")]
    fn overflow_panics() {
        let mut q = Lsq::new(1);
        q.alloc(1, false);
        q.alloc(2, false);
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn out_of_order_alloc_panics() {
        let mut q = Lsq::new(4);
        q.alloc(5, false);
        q.alloc(3, false);
    }

    #[test]
    fn forwarding_from_youngest_older_store() {
        let mut q = Lsq::new(8);
        q.alloc(1, true);
        q.alloc(2, true);
        q.alloc(3, false);
        q.set_addr(1, 0x100);
        q.set_data_ready(1);
        q.set_addr(2, 0x100);
        // store 2 is younger-older and matching, but data not ready
        assert_eq!(q.check_load(3, 0x100), LoadCheck::WaitOnStore);
        q.set_data_ready(2);
        assert_eq!(q.check_load(3, 0x100), LoadCheck::Forward);
        assert_eq!(q.check_load(3, 0x200), LoadCheck::GoToCache);
    }

    #[test]
    fn younger_stores_do_not_forward() {
        let mut q = Lsq::new(8);
        q.alloc(1, false);
        q.alloc(2, true);
        q.set_addr(2, 0x40);
        q.set_data_ready(2);
        assert_eq!(q.check_load(1, 0x40), LoadCheck::GoToCache);
    }

    #[test]
    fn dead_stores_are_ignored() {
        let mut q = Lsq::new(8);
        q.alloc(1, true);
        q.alloc(2, false);
        q.set_addr(1, 0x80);
        q.set_data_ready(1);
        assert_eq!(q.check_load(2, 0x80), LoadCheck::Forward);
        q.free(1);
        assert_eq!(q.check_load(2, 0x80), LoadCheck::GoToCache);
        assert_eq!(q.indexed_stores(), 0, "freed store must leave the index");
    }

    #[test]
    fn unknown_address_stores_are_optimistic() {
        let mut q = Lsq::new(8);
        q.alloc(1, true); // address never computed yet
        q.alloc(2, false);
        assert_eq!(q.check_load(2, 0x123), LoadCheck::GoToCache);
        assert_eq!(q.indexed_stores(), 0, "unknown-address store not indexed");
    }

    #[test]
    fn free_compacts_front() {
        let mut q = Lsq::new(3);
        q.alloc(1, false);
        q.alloc(2, false);
        q.alloc(3, false);
        q.free(2);
        q.free(1);
        // Front compaction must leave room for two new entries.
        assert_eq!(q.len(), 1);
        q.alloc(4, true);
        q.alloc(5, false);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn same_line_aliasing_stores_share_a_bucket_but_match_exactly() {
        // Three stores on one 64-byte line at different offsets: the load
        // must forward only from the exact-address match, not from the
        // line-mates that share its bucket.
        let mut q = Lsq::new(8);
        q.alloc(1, true);
        q.alloc(2, true);
        q.alloc(3, true);
        q.alloc(4, false);
        q.set_addr(1, 0x1000);
        q.set_addr(2, 0x1008);
        q.set_addr(3, 0x1030);
        for s in 1..=3 {
            q.set_data_ready(s);
        }
        assert_eq!(q.indexed_stores(), 3);
        assert_eq!(q.check_load(4, 0x1008), LoadCheck::Forward);
        assert_eq!(q.check_load(4, 0x1010), LoadCheck::GoToCache);
        assert_eq!(q.check_load(4, 0x1008), q.check_load_scan(4, 0x1008));
        assert_eq!(q.check_load(4, 0x1010), q.check_load_scan(4, 0x1010));
    }

    #[test]
    fn partial_overlap_on_one_line_is_not_a_forwarding_match() {
        // The model is exact-address (word) matching: a store at 0x1000 and
        // a load at 0x1004 overlap the same line but are distinct words, so
        // the load goes to the cache — and the scan agrees. (A byte-granular
        // model would conflict here; DESIGN.md documents the simplification.)
        let mut q = Lsq::new(8);
        q.alloc(1, true);
        q.alloc(2, false);
        q.set_addr(1, 0x1000);
        q.set_data_ready(1);
        assert_eq!(q.check_load(2, 0x1004), LoadCheck::GoToCache);
        assert_eq!(q.check_load_scan(2, 0x1004), LoadCheck::GoToCache);
        assert_eq!(q.check_load(2, 0x1000), LoadCheck::Forward);
    }

    #[test]
    fn squash_from_unlinks_indexed_stores() {
        let mut q = Lsq::new(8);
        q.alloc(1, true);
        q.alloc(2, false);
        q.alloc(3, true);
        q.alloc(4, true); // address never computed
        q.set_addr(1, 0x200);
        q.set_data_ready(1);
        q.set_addr(3, 0x200);
        q.set_data_ready(3);
        q.alloc(5, false);
        assert_eq!(q.check_load(5, 0x200), LoadCheck::Forward, "store 3 wins");

        // Squash the tail from seq 3: store 3 must vanish from the bucket,
        // store 1 must keep forwarding.
        assert_eq!(q.squash_from(3), 3);
        assert_eq!(q.len(), 2);
        assert_eq!(q.indexed_stores(), 1);
        q.alloc(5, false);
        assert_eq!(q.check_load(5, 0x200), LoadCheck::Forward);
        assert_eq!(q.check_load_scan(5, 0x200), LoadCheck::Forward);
        q.free(1);
        assert_eq!(q.check_load(5, 0x200), LoadCheck::GoToCache);
    }

    #[test]
    fn squash_from_skips_already_freed_entries() {
        let mut q = Lsq::new(8);
        q.alloc(1, false);
        q.alloc(2, true);
        q.alloc(3, false);
        q.set_addr(2, 0x40);
        q.free(2); // dead, not yet compacted (not at front)
        assert_eq!(q.squash_from(2), 1, "only the live load counts");
        assert_eq!(q.len(), 1);
        assert_eq!(q.indexed_stores(), 0);
    }

    #[test]
    fn reset_reuse_leaves_no_stale_buckets() {
        let mut q = Lsq::new(8);
        q.alloc(1, true);
        q.alloc(2, true);
        q.set_addr(1, 0x500);
        q.set_data_ready(1);
        q.set_addr(2, 0x540);
        assert_eq!(q.indexed_stores(), 2);

        q.reset(8);
        assert_eq!(q.indexed_stores(), 0);
        assert!(q.is_empty());

        // The same sequence numbers and addresses after reset must behave
        // like a fresh queue: no forwarding from the pre-reset store.
        q.alloc(1, false);
        assert_eq!(q.check_load(1, 0x500), LoadCheck::GoToCache);
        q.alloc(2, true);
        q.set_addr(2, 0x500);
        q.set_data_ready(2);
        q.alloc(3, false);
        assert_eq!(q.check_load(3, 0x500), LoadCheck::Forward);
    }

    #[test]
    fn distinct_lines_sharing_a_bucket_do_not_match() {
        // Two addresses whose line numbers collide modulo the bucket count
        // (lines 0 and 64 both mask to bucket 0): exact-address matching
        // must keep them apart even inside one bucket.
        let a = 0x0u64;
        let b = (INDEX_BUCKETS as u64) << LINE_SHIFT;
        assert_eq!(bucket_of(a), bucket_of(b), "test premise: same bucket");
        let mut q = Lsq::new(8);
        q.alloc(1, true);
        q.alloc(2, false);
        q.set_addr(1, a);
        q.set_data_ready(1);
        assert_eq!(q.check_load(2, b), LoadCheck::GoToCache);
        assert_eq!(q.check_load(2, a), LoadCheck::Forward);
    }

    #[test]
    fn late_address_keeps_bucket_age_ordered() {
        // Store 1 computes its address *after* store 3 (out-of-order AGU):
        // the bucket must still be age-ordered so the youngest-older match
        // wins.
        let mut q = Lsq::new(8);
        q.alloc(1, true);
        q.alloc(3, true);
        q.alloc(5, false);
        q.set_addr(3, 0x80);
        q.set_addr(1, 0x80); // late arrival, older store
        q.set_data_ready(1);
        // Youngest older matching store is 3, whose data is not ready.
        assert_eq!(q.check_load(5, 0x80), LoadCheck::WaitOnStore);
        q.set_data_ready(3);
        assert_eq!(q.check_load(5, 0x80), LoadCheck::Forward);
    }
}
