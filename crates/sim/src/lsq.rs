//! The unified load/store queue.
//!
//! Per the paper (Sec. 2): *"The Load/Store Queue (LSQ) and the data cache
//! are unified and accessed by clusters through dedicated buses. At dispatch
//! time, loads and stores reserve a slot in LSQ and they are steered to the
//! corresponding cluster, where the effective address is computed. Memory
//! operations are stored in the LSQ, and remain there until they access the
//! data cache."*
//!
//! The model: entries are allocated in program order at dispatch (dispatch
//! stalls when the 256 entries are exhausted), addresses arrive when the
//! cluster computes them, store data readiness is tracked, and loads may
//! forward from the youngest older store with a matching address and ready
//! data. Loads free their entry at commit; stores free it when their
//! post-commit cache write drains.

use std::collections::VecDeque;

/// One LSQ entry.
#[derive(Debug, Clone, Copy)]
struct LsqEntry {
    seq: u64,
    is_store: bool,
    addr: Option<u64>,
    data_ready: bool,
    alive: bool,
}

/// Outcome of a load's LSQ search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadCheck {
    /// No older store matches: go to the cache.
    GoToCache,
    /// The youngest older matching store has its data: forward.
    Forward,
    /// The youngest older matching store's data is not ready yet: retry.
    WaitOnStore,
}

/// The unified load/store queue.
#[derive(Debug, Clone)]
pub struct Lsq {
    entries: VecDeque<LsqEntry>,
    live: usize,
    capacity: usize,
}

impl Lsq {
    /// Create an LSQ with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        let mut lsq = Lsq {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            live: 0,
            capacity: 1,
        };
        lsq.reset(capacity);
        lsq
    }

    /// Clear in place and retarget to `capacity`, keeping the entry
    /// allocation (session reuse; equivalent to [`Lsq::new`]).
    pub fn reset(&mut self, capacity: usize) {
        assert!(capacity >= 1);
        self.entries.clear();
        self.live = 0;
        self.capacity = capacity;
    }

    /// Entries currently allocated.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no entries are allocated.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// True if a new memory op can be allocated.
    pub fn has_space(&self) -> bool {
        self.live < self.capacity
    }

    /// Allocate an entry for the memory op `seq` (must be called in
    /// ascending `seq` order — program order, as dispatch does).
    ///
    /// # Panics
    /// Panics if full or out of order.
    pub fn alloc(&mut self, seq: u64, is_store: bool) {
        assert!(self.has_space(), "LSQ overflow");
        if let Some(back) = self.entries.back() {
            assert!(back.seq < seq, "LSQ allocations must be in program order");
        }
        self.entries.push_back(LsqEntry {
            seq,
            is_store,
            addr: None,
            data_ready: !is_store,
            alive: true,
        });
        self.live += 1;
    }

    fn position(&self, seq: u64) -> Option<usize> {
        self.entries.binary_search_by_key(&seq, |e| e.seq).ok()
    }

    /// Record the computed effective address of `seq`.
    pub fn set_addr(&mut self, seq: u64, addr: u64) {
        let i = self.position(seq).expect("set_addr on unknown LSQ entry");
        self.entries[i].addr = Some(addr);
    }

    /// Mark the store `seq`'s data as ready to forward.
    pub fn set_data_ready(&mut self, seq: u64) {
        let i = self
            .position(seq)
            .expect("set_data_ready on unknown LSQ entry");
        debug_assert!(self.entries[i].is_store);
        self.entries[i].data_ready = true;
    }

    /// Resolve the load `seq` at address `addr` against older stores.
    ///
    /// Older stores with *unknown* addresses are optimistically assumed not
    /// to conflict (no replay machinery is modelled; see DESIGN.md).
    pub fn check_load(&self, seq: u64, addr: u64) -> LoadCheck {
        let end = match self.position(seq) {
            Some(i) => i,
            None => self.entries.len(),
        };
        for e in self.entries.iter().take(end).rev() {
            if !e.alive || !e.is_store {
                continue;
            }
            if e.addr == Some(addr) {
                return if e.data_ready {
                    LoadCheck::Forward
                } else {
                    LoadCheck::WaitOnStore
                };
            }
        }
        LoadCheck::GoToCache
    }

    /// Free the entry of `seq` (load commit or store drain completion).
    pub fn free(&mut self, seq: u64) {
        let i = self.position(seq).expect("free of unknown LSQ entry");
        debug_assert!(self.entries[i].alive, "double free of LSQ entry");
        self.entries[i].alive = false;
        self.live -= 1;
        while matches!(self.entries.front(), Some(e) if !e.alive) {
            self.entries.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_capacity() {
        let mut q = Lsq::new(2);
        assert!(q.has_space());
        q.alloc(1, false);
        q.alloc(2, true);
        assert!(!q.has_space());
        assert_eq!(q.len(), 2);
        q.free(1);
        assert!(q.has_space());
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "LSQ overflow")]
    fn overflow_panics() {
        let mut q = Lsq::new(1);
        q.alloc(1, false);
        q.alloc(2, false);
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn out_of_order_alloc_panics() {
        let mut q = Lsq::new(4);
        q.alloc(5, false);
        q.alloc(3, false);
    }

    #[test]
    fn forwarding_from_youngest_older_store() {
        let mut q = Lsq::new(8);
        q.alloc(1, true);
        q.alloc(2, true);
        q.alloc(3, false);
        q.set_addr(1, 0x100);
        q.set_data_ready(1);
        q.set_addr(2, 0x100);
        // store 2 is younger-older and matching, but data not ready
        assert_eq!(q.check_load(3, 0x100), LoadCheck::WaitOnStore);
        q.set_data_ready(2);
        assert_eq!(q.check_load(3, 0x100), LoadCheck::Forward);
        assert_eq!(q.check_load(3, 0x200), LoadCheck::GoToCache);
    }

    #[test]
    fn younger_stores_do_not_forward() {
        let mut q = Lsq::new(8);
        q.alloc(1, false);
        q.alloc(2, true);
        q.set_addr(2, 0x40);
        q.set_data_ready(2);
        assert_eq!(q.check_load(1, 0x40), LoadCheck::GoToCache);
    }

    #[test]
    fn dead_stores_are_ignored() {
        let mut q = Lsq::new(8);
        q.alloc(1, true);
        q.alloc(2, false);
        q.set_addr(1, 0x80);
        q.set_data_ready(1);
        assert_eq!(q.check_load(2, 0x80), LoadCheck::Forward);
        q.free(1);
        assert_eq!(q.check_load(2, 0x80), LoadCheck::GoToCache);
    }

    #[test]
    fn unknown_address_stores_are_optimistic() {
        let mut q = Lsq::new(8);
        q.alloc(1, true); // address never computed yet
        q.alloc(2, false);
        assert_eq!(q.check_load(2, 0x123), LoadCheck::GoToCache);
    }

    #[test]
    fn free_compacts_front() {
        let mut q = Lsq::new(3);
        q.alloc(1, false);
        q.alloc(2, false);
        q.alloc(3, false);
        q.free(2);
        q.free(1);
        // Front compaction must leave room for two new entries.
        assert_eq!(q.len(), 1);
        q.alloc(4, true);
        q.alloc(5, false);
        assert_eq!(q.len(), 3);
    }
}
